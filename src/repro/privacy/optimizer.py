"""Optimization problem (3): the strongest DP under an accuracy constraint.

Paper Section III-B.  Given a consumer target ``(α, δ)`` and samples already
collected at rate ``p`` over ``k`` nodes and ``n`` records, the broker picks
an intermediate accuracy ``(α', δ')`` and a Laplace budget ``ε`` so the
noisy answer is still an ``(α, δ)``-range counting, minimizing the
*amplified* budget ``ε' = ln(1 + p(e^ε − 1))``:

    min   ε' = ln(1 + p·(e^ε − 1))
    s.t.  (√(2k)/(α'n)) · (2/√(1 − δ'))  ≤  p          (sample supports α', δ')
          α' ≤ α,   δ ≤ δ'
          Pr[|Lap(ε)| ≤ (α − α')·n]  ≥  δ/δ'           (noise leaves room)
          ε ≥ 0

For a fixed ``α'``, ``δ'`` is pinned by the existing sample
(``δ' = 1 − 8k/(α'np)²``, the inverse of Theorem 3.3) and the minimal ε has
the closed form ``ε = (Δγ̂/((α − α')n)) · ln(δ'/(δ' − δ))``.  The optimizer
discretizes ``α'`` over its feasible open interval and returns the grid
minimizer of ε′ (the paper: "we can approximate it to a discrete domain
with arbitrarily small intervals").

Note on the constraint direction: the paper's prose once states
``Pr[|Lap(ε)| ≤ (α−α')n] ≤ δ/δ'`` but its derived closed form corresponds
to ``≥ δ/δ'`` -- the noise must be *small* with sufficient probability.  We
implement the ``≥`` direction, which matches the closed form (DESIGN.md
item 3.2).

Sensitivity: the paper argues the worst case ``Δγ̂ = n_i`` destroys utility
and adopts the expectation ``Δγ̂ = 1/p``; both are available via
:class:`SensitivityPolicy`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import InfeasiblePlanError
from repro.estimators.calibration import (
    achieved_delta,
    min_feasible_alpha,
    validate_accuracy,
)
from repro.privacy.amplification import amplified_epsilon
from repro.privacy.laplace import epsilon_for_tail

__all__ = ["SensitivityPolicy", "PrivacyPlan", "optimize_privacy_plan"]


class SensitivityPolicy(enum.Enum):
    """How the broker bounds the sensitivity ``Δγ̂`` of the sampled estimate.

    ``EXPECTED`` uses the paper's fair choice ``1/p`` (removing one record
    shifts the estimate by ``1/p`` in expectation); ``WORST_CASE`` uses the
    largest per-node size ``max_i n_i``, which the paper notes "will totally
    destroy the aggregation utility" but is offered for ablation A3.
    """

    EXPECTED = "expected"
    WORST_CASE = "worst_case"


@dataclass(frozen=True)
class PrivacyPlan:
    """The optimizer's output: everything needed to release one answer.

    Attributes
    ----------
    alpha, delta:
        The consumer's accuracy target.
    alpha_prime, delta_prime:
        The intermediate accuracy of the sampling phase.
    epsilon:
        Laplace budget of the perturbation phase.
    epsilon_prime:
        Final amplified privacy guarantee (Lemma 3.4) -- the objective.
    sensitivity:
        The Δγ̂ used to scale the noise.
    noise_scale:
        Laplace scale ``b = sensitivity / epsilon``.
    p, k, n:
        Sample rate, node count, total record count the plan was built for.
    """

    alpha: float
    delta: float
    alpha_prime: float
    delta_prime: float
    epsilon: float
    epsilon_prime: float
    sensitivity: float
    noise_scale: float
    p: float
    k: int
    n: int

    @property
    def noise_tolerance(self) -> float:
        """The absolute error head-room reserved for noise: ``(α − α')·n``."""
        return (self.alpha - self.alpha_prime) * self.n

    @property
    def noise_variance(self) -> float:
        """Variance of the Laplace noise this plan injects: ``2b²``."""
        return 2.0 * self.noise_scale * self.noise_scale


def _resolve_sensitivity(
    policy: SensitivityPolicy,
    p: float,
    max_node_size: Optional[int],
) -> float:
    if policy is SensitivityPolicy.EXPECTED:
        return 1.0 / p
    if max_node_size is None:
        raise ValueError("WORST_CASE sensitivity requires max_node_size")
    if max_node_size <= 0:
        raise ValueError("max_node_size must be positive")
    return float(max_node_size)


def optimize_privacy_plan(
    alpha: float,
    delta: float,
    p: float,
    k: int,
    n: int,
    grid_points: int = 512,
    sensitivity_policy: SensitivityPolicy = SensitivityPolicy.EXPECTED,
    max_node_size: Optional[int] = None,
) -> PrivacyPlan:
    """Solve optimization problem (3) by grid search over ``α'``.

    Parameters
    ----------
    alpha, delta:
        Consumer accuracy target, ``0 < α ≤ 1``, ``0 ≤ δ < 1``.
    p:
        Sampling rate of the already-collected sample.
    k, n:
        Node count and total record count.
    grid_points:
        Resolution of the ``α'`` discretization.
    sensitivity_policy, max_node_size:
        How to bound ``Δγ̂`` (see :class:`SensitivityPolicy`).

    Returns
    -------
    PrivacyPlan
        The grid point minimizing the amplified budget ε′.

    Raises
    ------
    InfeasiblePlanError
        If no ``α'`` in the open feasible interval yields ``δ' > δ`` -- the
        sample is too sparse for the target and must be topped up first.
    """
    validate_accuracy(alpha, delta)
    if delta <= 0.0:
        # δ = 0 makes the tail constraint vacuous (any noise qualifies), so
        # the infimum ε → 0 is not attained; planning needs a real target.
        raise ValueError("delta must be positive to plan a private release")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"sampling probability must be in (0, 1], got {p}")
    if k <= 0 or n <= 0:
        raise ValueError("k and n must be positive")
    if grid_points < 2:
        raise ValueError("grid_points must be at least 2")

    sensitivity = _resolve_sensitivity(sensitivity_policy, p, max_node_size)

    # Feasible α' interval: the sample must certify δ'(α') > δ, which needs
    # α' > α_min(δ); noise head-room needs α' < α strictly.
    alpha_floor = min_feasible_alpha(p, k, n, delta)
    if alpha_floor >= alpha:
        raise InfeasiblePlanError(
            f"sample at rate p={p:.6g} cannot support any intermediate "
            f"accuracy below alpha={alpha:.6g} with delta'={delta:.6g} "
            f"headroom (needs alpha' > {alpha_floor:.6g}); top up samples"
        )

    best: Optional[PrivacyPlan] = None
    span = alpha - alpha_floor
    for j in range(1, grid_points):
        alpha_prime = alpha_floor + span * j / grid_points
        delta_prime = achieved_delta(p, alpha_prime, k, n)
        if delta_prime <= delta:
            continue
        tolerance = (alpha - alpha_prime) * n
        if tolerance <= 0:
            continue
        # Pr[|Lap| <= tolerance] >= delta/delta'  =>  closed-form minimal ε.
        epsilon = epsilon_for_tail(sensitivity, tolerance, delta / delta_prime)
        epsilon_prime = amplified_epsilon(epsilon, p)
        if best is None or epsilon_prime < best.epsilon_prime:
            best = PrivacyPlan(
                alpha=alpha,
                delta=delta,
                alpha_prime=alpha_prime,
                delta_prime=delta_prime,
                epsilon=epsilon,
                epsilon_prime=epsilon_prime,
                sensitivity=sensitivity,
                noise_scale=sensitivity / epsilon,
                p=p,
                k=k,
                n=n,
            )
    if best is None:
        raise InfeasiblePlanError(
            f"no grid point in ({alpha_floor:.6g}, {alpha:.6g}) achieves "
            f"delta' > {delta:.6g} at p={p:.6g}; top up samples"
        )
    return best
