"""The Laplace mechanism, implemented from scratch (paper Section II-C).

For a query with L1 sensitivity ``Δγ`` and privacy budget ``ε``, the
mechanism releases ``γ(D) + Lap(Δγ/ε)`` where ``Lap(b)`` has density
``(1/2b)·exp(−|x|/b)``.  Besides sampling, the module provides the exact
tail algebra the paper's optimizer needs:

* ``Pr[|Lap(b)| ≤ t] = 1 − exp(−t/b)`` (:func:`laplace_tail_within`), and
* its inversion for the minimal ε meeting a tail target
  (:func:`epsilon_for_tail`), which yields the closed form
  ``ε = (Δγ̂ / t) · ln(δ'/(δ' − δ))`` used in optimization problem (3).

Noise is drawn by inverse-CDF transform from a ``numpy`` Generator so every
experiment is reproducible from its seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np
import numpy.typing as npt

__all__ = [
    "LaplaceMechanism",
    "laplace_scale",
    "laplace_tail_within",
    "epsilon_for_tail",
    "sample_laplace",
    "sample_laplace_many",
]


def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """Noise scale ``b = Δγ / ε`` of the Laplace mechanism."""
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return sensitivity / epsilon


def laplace_tail_within(scale: float, tolerance: float) -> float:
    """``Pr[|Lap(scale)| ≤ tolerance] = 1 − exp(−tolerance/scale)``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    return 1.0 - math.exp(-tolerance / scale)


def epsilon_for_tail(sensitivity: float, tolerance: float, probability: float) -> float:
    """Minimal ε so that ``Pr[|Lap(Δγ/ε)| ≤ tolerance] ≥ probability``.

    Solving ``1 − exp(−tolerance·ε/Δγ) = probability`` gives
    ``ε = (Δγ / tolerance) · ln(1 / (1 − probability))``.  This is the
    closed form behind the paper's
    ``ε = (Δγ̂/((α − α')n)) · ln(δ'/(δ' − δ))`` with
    ``probability = δ/δ'`` and ``tolerance = (α − α')n``.
    """
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    return (sensitivity / tolerance) * math.log(1.0 / (1.0 - probability))


def sample_laplace(
    scale: float,
    rng: np.random.Generator,
    size: Optional[int] = None,
) -> "Union[float, npt.NDArray[np.float64]]":
    """Draw Laplace(0, scale) noise by inverse-CDF transform.

    ``U ~ Uniform(−1/2, 1/2)``; ``X = −scale · sign(U) · ln(1 − 2|U|)``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    u = rng.random(size) - 0.5
    draws = np.asarray(
        -scale * np.sign(u) * np.log1p(-2.0 * np.abs(u)), dtype=np.float64
    )
    if size is None:
        return float(draws)
    return draws


def sample_laplace_many(
    scales: "Union[Sequence[float], npt.NDArray[np.float64]]",
    rng: np.random.Generator,
) -> "npt.NDArray[np.float64]":
    """Draw one Laplace(0, scale_i) variate per entry of ``scales``.

    The batched counterpart of :func:`sample_laplace` for the broker's
    vectorized trading path.  Uniform doubles consume the generator's
    bitstream in order, so ``sample_laplace_many(scales, rng)`` returns
    bit-for-bit the same draws as ``[sample_laplace(s, rng) for s in
    scales]`` would from the same generator state -- batching never
    changes an experiment's noise.
    """
    scale_arr = np.asarray(scales, dtype=np.float64)
    if scale_arr.ndim != 1:
        raise ValueError("scales must be one-dimensional")
    if scale_arr.size == 0:
        return np.zeros(0, dtype=np.float64)
    if np.any(scale_arr <= 0) or not np.all(np.isfinite(scale_arr)):
        raise ValueError("every noise scale must be positive and finite")
    u = rng.random(scale_arr.size) - 0.5
    return np.asarray(
        -scale_arr * np.sign(u) * np.log1p(-2.0 * np.abs(u)), dtype=np.float64
    )


@dataclass
class LaplaceMechanism:
    """ε-differentially-private release of a numeric query.

    Parameters
    ----------
    sensitivity:
        L1 sensitivity ``Δγ`` of the query being released.
    epsilon:
        Privacy budget ε; noise scale is ``sensitivity / epsilon``.
    """

    sensitivity: float
    epsilon: float

    def __post_init__(self) -> None:
        # Validates both fields and caches the scale.
        self._scale = laplace_scale(self.sensitivity, self.epsilon)

    @property
    def scale(self) -> float:
        """The Laplace noise scale ``b``."""
        return self._scale

    @property
    def noise_variance(self) -> float:
        """Variance of the released noise: ``2b²``."""
        return 2.0 * self._scale * self._scale

    def probability_within(self, tolerance: float) -> float:
        """``Pr[|noise| ≤ tolerance]`` for this mechanism's scale."""
        return laplace_tail_within(self._scale, tolerance)

    def sample_noise(self, rng: np.random.Generator) -> float:
        """Draw one noise value."""
        return float(sample_laplace(self._scale, rng))

    def release(self, true_value: float, rng: np.random.Generator) -> float:
        """Release ``true_value + Lap(Δγ/ε)``."""
        return float(true_value) + self.sample_noise(rng)
