"""Privacy amplification by subsampling (paper Lemma 3.4).

If a mechanism ``φ`` is ε-differentially private and ``S(·)`` draws
independent Bernoulli(p) samples, then the composition ``φ(S(·))`` is
ε′-differentially private with

    ε′ = ln(1 − p + p·e^ε).

The amplified ε′ is strictly smaller than ε for ``p < 1`` -- sampling itself
hides individuals.  The paper's two-phase pipeline reports ε′ as its final
privacy guarantee; the optimizer minimizes it.
"""

from __future__ import annotations

import math

__all__ = ["amplified_epsilon", "required_base_epsilon", "amplification_gain"]


def amplified_epsilon(epsilon: float, p: float) -> float:
    """Lemma 3.4: effective budget ``ε' = ln(1 − p + p·e^ε)``.

    ``p = 1`` returns ε unchanged; ``p = 0`` returns 0 (nothing about the
    data is used, perfect privacy).
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"sampling probability must be in [0, 1], got {p}")
    if p == 0.0:
        return 0.0
    if p == 1.0:
        # Exactly ε: the log1p/expm1 round trip below can round 1 ULP up,
        # which would report ε′ > ε on an unsampled release.
        return epsilon
    if epsilon > 30.0:
        # e^ε would overflow / dominate: ln(1 − p + p·e^ε) = ε + ln(p + (1 − p)e^{−ε}).
        return epsilon + math.log(p + (1.0 - p) * math.exp(-epsilon))
    # log1p(p·(e^ε − 1)) is numerically stable for small p and ε.
    return math.log1p(p * math.expm1(epsilon))


def required_base_epsilon(target_epsilon_prime: float, p: float) -> float:
    """Invert Lemma 3.4: the base ε whose amplification equals the target.

    ``ε = ln(1 + (e^{ε′} − 1)/p)``.  Raises if ``p == 0`` and the target is
    positive, since no base budget can then produce a nonzero ε′.
    """
    if target_epsilon_prime < 0:
        raise ValueError("target epsilon' must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"sampling probability must be in [0, 1], got {p}")
    if target_epsilon_prime == 0.0:
        return 0.0
    if p == 0.0:
        raise ValueError("p = 0 amplifies every base epsilon to 0")
    if p == 1.0:
        # Mirror amplified_epsilon's exact p = 1 fast path.
        return target_epsilon_prime
    return math.log1p(math.expm1(target_epsilon_prime) / p)


def amplification_gain(epsilon: float, p: float) -> float:
    """Multiplicative privacy gain ``ε / ε′`` from sampling at rate ``p``.

    Returns ``inf`` when the amplified budget is 0 (p or ε is 0) while the
    convention ``0/0 = 1`` covers the degenerate ε = 0, p = 0 corner.
    """
    eps_prime = amplified_epsilon(epsilon, p)
    if eps_prime == 0.0:
        return 1.0 if epsilon == 0.0 else math.inf
    return epsilon / eps_prime
