"""Privacy-budget accounting for the data broker.

The IoT network "entrusts the protection of data privacy to the data
broker" (Section II-A).  A broker that answers unlimited queries leaks
unbounded information, so production deployments cap the cumulative budget
per dataset.  :class:`BudgetAccountant` tracks, per dataset key, the ε′
spent by every released answer under sequential composition and refuses
releases that would overspend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import PrivacyBudgetExceededError
from repro.privacy.composition import sequential_composition

__all__ = ["BudgetAccountant", "BudgetEntry"]


@dataclass(frozen=True)
class BudgetEntry:
    """One recorded expenditure: the query label and the ε′ it consumed."""

    label: str
    epsilon: float


@dataclass
class BudgetAccountant:
    """Per-dataset sequential-composition ε ledger.

    Parameters
    ----------
    capacity:
        Maximum cumulative ε′ allowed per dataset key.  ``float('inf')``
        (the default) disables enforcement but still records spending, which
        is how the experiment harness audits total leakage.
    """

    capacity: float = float("inf")
    _spent: Dict[str, List[BudgetEntry]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")

    def spent(self, dataset: str) -> float:
        """Total ε′ spent so far against ``dataset``."""
        entries = self._spent.get(dataset, [])
        if not entries:
            return 0.0
        return sequential_composition([e.epsilon for e in entries])

    def remaining(self, dataset: str) -> float:
        """Budget headroom left for ``dataset``."""
        return self.capacity - self.spent(dataset)

    def can_afford(self, dataset: str, epsilon: float) -> bool:
        """Whether charging ``epsilon`` against ``dataset`` would fit."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        return self.spent(dataset) + epsilon <= self.capacity + 1e-12

    def charge(self, dataset: str, epsilon: float, label: str = "query") -> float:
        """Record an expenditure; returns the new cumulative total.

        Raises
        ------
        PrivacyBudgetExceededError
            If the charge would push the dataset past :attr:`capacity`.
        """
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not self.can_afford(dataset, epsilon):
            raise PrivacyBudgetExceededError(
                f"dataset {dataset!r}: charging ε={epsilon:.6g} would exceed "
                f"capacity {self.capacity:.6g} (already spent "
                f"{self.spent(dataset):.6g})"
            )
        self._spent.setdefault(dataset, []).append(BudgetEntry(label, epsilon))
        return self.spent(dataset)

    def charge_many(
        self,
        dataset: str,
        epsilons: "List[float]",
        labels: "List[str]",
    ) -> float:
        """Record several expenditures at once; returns the new total.

        Affordability is checked once against the *sum* (sequential
        composition is additive), and the entries land in ``history`` in
        order, exactly as repeated :meth:`charge` calls would -- but
        without recomputing the running total per entry, which is what
        makes the broker's batched trading path cheap.

        Raises
        ------
        PrivacyBudgetExceededError
            If the combined charge would push the dataset past
            :attr:`capacity`; nothing is recorded in that case.
        """
        if len(epsilons) != len(labels):
            raise ValueError("epsilons and labels must be parallel lists")
        if any(epsilon < 0 for epsilon in epsilons):
            raise ValueError("epsilon must be non-negative")
        total = float(sum(epsilons))
        if not self.can_afford(dataset, total):
            raise PrivacyBudgetExceededError(
                f"dataset {dataset!r}: charging ε={total:.6g} in bulk would "
                f"exceed capacity {self.capacity:.6g} (already spent "
                f"{self.spent(dataset):.6g})"
            )
        self._spent.setdefault(dataset, []).extend(
            BudgetEntry(label, epsilon)
            for label, epsilon in zip(labels, epsilons)
        )
        return self.spent(dataset)

    def history(self, dataset: str) -> Tuple[BudgetEntry, ...]:
        """Immutable view of the expenditures recorded for ``dataset``."""
        return tuple(self._spent.get(dataset, ()))

    def datasets(self) -> Tuple[str, ...]:
        """Dataset keys with at least one recorded expenditure."""
        return tuple(self._spent)

    def reset(self, dataset: str) -> None:
        """Forget all spending for ``dataset`` (e.g. after data rotation)."""
        self._spent.pop(dataset, None)
