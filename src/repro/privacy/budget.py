"""Privacy-budget accounting for the data broker.

The IoT network "entrusts the protection of data privacy to the data
broker" (Section II-A).  A broker that answers unlimited queries leaks
unbounded information, so production deployments cap the cumulative budget
per dataset.  :class:`BudgetAccountant` tracks, per dataset key, the ε′
spent by every released answer under sequential composition and refuses
releases that would overspend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Protocol, Tuple

from repro.errors import LedgerError, PrivacyBudgetExceededError
from repro.privacy.composition import sequential_composition

__all__ = ["BudgetAccountant", "BudgetEntry", "SpendRecord"]


class SpendRecord(Protocol):
    """Structural view of a journaled trade's privacy spend.

    Declared locally so the strictly-typed privacy layer never imports the
    durability package: any object exposing these attributes — in practice
    :class:`repro.durability.journal.JournalEntry` — can be replayed.
    """

    @property
    def answer_id(self) -> int: ...

    @property
    def kind(self) -> str: ...

    @property
    def dataset(self) -> str: ...

    @property
    def epsilon_prime(self) -> float: ...

    @property
    def label(self) -> str: ...


@dataclass(frozen=True)
class BudgetEntry:
    """One recorded expenditure: the query label and the ε′ it consumed."""

    label: str
    epsilon: float


@dataclass
class BudgetAccountant:
    """Per-dataset sequential-composition ε ledger.

    Parameters
    ----------
    capacity:
        Maximum cumulative ε′ allowed per dataset key.  ``float('inf')``
        (the default) disables enforcement but still records spending, which
        is how the experiment harness audits total leakage.
    """

    capacity: float = float("inf")
    _spent: Dict[str, List[BudgetEntry]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")
        # Highest journal answer_id already folded into this accountant;
        # the idempotency floor for replay_journal (0 = nothing replayed).
        self._journal_high_water: int = 0

    def spent(self, dataset: str) -> float:
        """Total ε′ spent so far against ``dataset``."""
        entries = self._spent.get(dataset, [])
        if not entries:
            return 0.0
        return sequential_composition([e.epsilon for e in entries])

    def remaining(self, dataset: str) -> float:
        """Budget headroom left for ``dataset``."""
        return self.capacity - self.spent(dataset)

    def can_afford(self, dataset: str, epsilon: float) -> bool:
        """Whether charging ``epsilon`` against ``dataset`` would fit."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        return self.spent(dataset) + epsilon <= self.capacity + 1e-12

    def charge(self, dataset: str, epsilon: float, label: str = "query") -> float:
        """Record an expenditure; returns the new cumulative total.

        Raises
        ------
        PrivacyBudgetExceededError
            If the charge would push the dataset past :attr:`capacity`.
        """
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not self.can_afford(dataset, epsilon):
            raise PrivacyBudgetExceededError(
                f"dataset {dataset!r}: charging ε={epsilon:.6g} would exceed "
                f"capacity {self.capacity:.6g} (already spent "
                f"{self.spent(dataset):.6g})"
            )
        self._spent.setdefault(dataset, []).append(BudgetEntry(label, epsilon))
        return self.spent(dataset)

    def charge_many(
        self,
        dataset: str,
        epsilons: "List[float]",
        labels: "List[str]",
    ) -> float:
        """Record several expenditures at once; returns the new total.

        Affordability is checked once against the *sum* (sequential
        composition is additive), and the entries land in ``history`` in
        order, exactly as repeated :meth:`charge` calls would -- but
        without recomputing the running total per entry, which is what
        makes the broker's batched trading path cheap.

        Raises
        ------
        PrivacyBudgetExceededError
            If the combined charge would push the dataset past
            :attr:`capacity`; nothing is recorded in that case.
        """
        if len(epsilons) != len(labels):
            raise ValueError("epsilons and labels must be parallel lists")
        if any(epsilon < 0 for epsilon in epsilons):
            raise ValueError("epsilon must be non-negative")
        total = float(sum(epsilons))
        if not self.can_afford(dataset, total):
            raise PrivacyBudgetExceededError(
                f"dataset {dataset!r}: charging ε={total:.6g} in bulk would "
                f"exceed capacity {self.capacity:.6g} (already spent "
                f"{self.spent(dataset):.6g})"
            )
        self._spent.setdefault(dataset, []).extend(
            BudgetEntry(label, epsilon)
            for label, epsilon in zip(labels, epsilons)
        )
        return self.spent(dataset)

    def history(self, dataset: str) -> Tuple[BudgetEntry, ...]:
        """Immutable view of the expenditures recorded for ``dataset``."""
        return tuple(self._spent.get(dataset, ()))

    def datasets(self) -> Tuple[str, ...]:
        """Dataset keys with at least one recorded expenditure."""
        return tuple(self._spent)

    def reset(self, dataset: str) -> None:
        """Forget all spending for ``dataset`` (e.g. after data rotation)."""
        self._spent.pop(dataset, None)

    # ------------------------------------------------------------------ #
    # Durability: snapshot / restore / journal replay                    #
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """Serializable copy of the full accounting state."""
        return {
            "capacity": self.capacity,
            "spent": {
                dataset: [[entry.label, entry.epsilon] for entry in entries]
                for dataset, entries in self._spent.items()
            },
            "journal_high_water": self._journal_high_water,
        }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Replace this accountant's state with a :meth:`snapshot` copy."""
        spent: Mapping[str, Iterable[Tuple[str, float]]] = snapshot["spent"]
        self.capacity = float(snapshot["capacity"])
        self._spent = {
            dataset: [
                BudgetEntry(str(label), float(epsilon))
                for label, epsilon in entries
            ]
            for dataset, entries in spent.items()
        }
        self._journal_high_water = int(snapshot["journal_high_water"])

    def replay_journal(self, entries: "Iterable[SpendRecord]") -> int:
        """Re-apply journaled privacy spends not yet folded in.

        Entries at or below the journal high-water mark are skipped
        (idempotent), replay entries carry ε′ = 0 and record nothing, and
        — crucially — **capacity is not enforced**: the releases already
        happened, so recovery must record every journaled spend even if
        the dataset ends up over budget.  Under-counting ε after a crash
        would be a silent privacy leak; an over-budget ledger is loud and
        auditable.  Returns the number of entries applied as spends.
        """
        applied = 0
        previous = 0
        for entry in entries:
            if entry.answer_id <= previous:
                raise LedgerError(
                    f"journal replay out of order: answer_id "
                    f"{entry.answer_id} after {previous}"
                )
            previous = entry.answer_id
            if entry.answer_id <= self._journal_high_water:
                continue
            self._journal_high_water = entry.answer_id
            if entry.kind != "release":
                # Replays are post-processing: billed, but never charged
                # to the accountant, exactly as in live operation.
                continue
            self._spent.setdefault(entry.dataset, []).append(
                BudgetEntry(entry.label, entry.epsilon_prime)
            )
            applied += 1
        return applied
