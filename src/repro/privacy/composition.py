"""Composition rules for differential-privacy budgets.

The broker answers many queries against the same sample, so its accountant
needs composition algebra:

* **sequential** -- budgets over the same data add up;
* **parallel** -- budgets over disjoint data partitions take the maximum;
* **advanced** -- the Dwork–Rothblum–Vadhan bound trades a small failure
  probability ``δ_slack`` for a ``O(√q)`` total instead of ``O(q)``
  (extension beyond the paper, used by the budget accountant when enabled).
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "sequential_composition",
    "parallel_composition",
    "advanced_composition",
]


def _validate(epsilons: Sequence[float]) -> None:
    if len(epsilons) == 0:
        raise ValueError("need at least one epsilon")
    for eps in epsilons:
        if eps < 0:
            raise ValueError(f"epsilons must be non-negative, got {eps}")


def sequential_composition(epsilons: Sequence[float]) -> float:
    """Total budget of sequential releases on the same data: ``Σ ε_i``."""
    _validate(epsilons)
    return float(sum(epsilons))


def parallel_composition(epsilons: Sequence[float]) -> float:
    """Total budget of releases on disjoint partitions: ``max ε_i``."""
    _validate(epsilons)
    return float(max(epsilons))


def advanced_composition(epsilon: float, count: int, delta_slack: float) -> float:
    """Advanced composition of ``count`` ε-DP releases.

    Returns the total ε of the ``(ε_total, δ_slack)``-DP guarantee:

        ε_total = √(2·count·ln(1/δ_slack))·ε + count·ε·(e^ε − 1)

    Valid for ``δ_slack ∈ (0, 1)``; tighter than sequential composition
    when ``count`` is large and ε small.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if count <= 0:
        raise ValueError("count must be a positive integer")
    if not 0.0 < delta_slack < 1.0:
        raise ValueError(f"delta_slack must be in (0, 1), got {delta_slack}")
    return (
        math.sqrt(2.0 * count * math.log(1.0 / delta_slack)) * epsilon
        + count * epsilon * math.expm1(epsilon)
    )
