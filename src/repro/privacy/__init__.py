"""Differential-privacy layer (paper Sections II-C, III-B).

* :class:`LaplaceMechanism` / :class:`GeometricMechanism` -- from-scratch
  noise mechanisms with exact tail algebra.
* :func:`amplified_epsilon` -- Lemma 3.4 privacy amplification by sampling.
* :func:`optimize_privacy_plan` -- optimization problem (3): the smallest
  amplified budget ε′ subject to the consumer's ``(α, δ)`` target.
* :class:`BudgetAccountant` -- per-dataset ε ledger with composition rules.
"""

from repro.privacy.amplification import (
    amplification_gain,
    amplified_epsilon,
    required_base_epsilon,
)
from repro.privacy.budget import BudgetAccountant, BudgetEntry
from repro.privacy.composition import (
    advanced_composition,
    parallel_composition,
    sequential_composition,
)
from repro.privacy.geometric import GeometricMechanism, geometric_tail_within
from repro.privacy.laplace import (
    LaplaceMechanism,
    epsilon_for_tail,
    laplace_scale,
    laplace_tail_within,
    sample_laplace,
    sample_laplace_many,
)
from repro.privacy.optimizer import (
    PrivacyPlan,
    SensitivityPolicy,
    optimize_privacy_plan,
)

__all__ = [
    "amplified_epsilon",
    "required_base_epsilon",
    "amplification_gain",
    "BudgetAccountant",
    "BudgetEntry",
    "sequential_composition",
    "parallel_composition",
    "advanced_composition",
    "GeometricMechanism",
    "geometric_tail_within",
    "LaplaceMechanism",
    "laplace_scale",
    "laplace_tail_within",
    "epsilon_for_tail",
    "sample_laplace",
    "sample_laplace_many",
    "PrivacyPlan",
    "SensitivityPolicy",
    "optimize_privacy_plan",
]
