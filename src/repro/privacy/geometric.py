"""The (two-sided) geometric mechanism -- integer-valued DP extension.

Range counts are integers, so a natural extension of the paper's Laplace
release is the discrete analogue: ``γ(D) + Z`` where
``Pr[Z = z] ∝ exp(−|z|·ε/Δγ)``.  The two-sided geometric mechanism is
ε-differentially private for integer sensitivity ``Δγ`` and is provided as
an optional release backend for the broker (ablation A3 territory: the
paper's expected sensitivity ``1/p`` is fractional, in which case Laplace
remains the default).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["GeometricMechanism", "geometric_tail_within"]


def geometric_tail_within(ratio: float, tolerance: int) -> float:
    """``Pr[|Z| ≤ tolerance]`` for the two-sided geometric with ``ratio``.

    With ``ratio = exp(−ε/Δγ)``, the two-sided geometric has
    ``Pr[Z = z] = ((1 − r)/(1 + r)) · r^{|z|}``, hence
    ``Pr[|Z| ≤ t] = 1 − 2·r^{t+1}/(1 + r)``.
    """
    if not 0.0 < ratio < 1.0:
        raise ValueError(f"ratio must be in (0, 1), got {ratio}")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    return 1.0 - 2.0 * ratio ** (tolerance + 1) / (1.0 + ratio)


@dataclass
class GeometricMechanism:
    """ε-DP integer release via two-sided geometric noise.

    Parameters
    ----------
    sensitivity:
        Integer-valued L1 sensitivity of the query.
    epsilon:
        Privacy budget ε.
    """

    sensitivity: float
    epsilon: float

    def __post_init__(self) -> None:
        if self.sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {self.sensitivity}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        self._ratio = math.exp(-self.epsilon / self.sensitivity)

    @property
    def ratio(self) -> float:
        """The geometric decay ratio ``r = exp(−ε/Δγ)``."""
        return self._ratio

    @property
    def noise_variance(self) -> float:
        """Variance of two-sided geometric noise: ``2r / (1 − r)²``."""
        r = self._ratio
        return 2.0 * r / ((1.0 - r) ** 2)

    def probability_within(self, tolerance: int) -> float:
        """``Pr[|noise| ≤ tolerance]`` for this mechanism."""
        return geometric_tail_within(self._ratio, tolerance)

    def sample_noise(self, rng: np.random.Generator) -> int:
        """Draw one two-sided geometric noise value.

        Sampled as the difference of two independent Geometric(1 − r)
        variables, a standard construction for the two-sided law.
        """
        success = 1.0 - self._ratio
        a = rng.geometric(success) - 1
        b = rng.geometric(success) - 1
        return int(a - b)

    def release(self, true_value: int, rng: np.random.Generator) -> int:
        """Release ``round(true_value) + Z``."""
        return int(round(true_value)) + self.sample_noise(rng)
