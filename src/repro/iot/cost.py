"""Communication-cost metering for the simulated IoT network.

Every delivered message is charged to a :class:`CommunicationMeter`:
message count, payload bytes, total wire bytes, transmitted sample pairs,
and hop-weighted byte cost (a message relayed over ``h`` tree hops costs
``h`` times its wire size in radio energy).  The estimator-comparison
ablation (A1) and the Figure-4 bench read their numbers from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.iot.messages import AggregatedReport, Heartbeat, Message, SampleReport

__all__ = ["LinkStats", "CommunicationMeter"]


@dataclass
class LinkStats:
    """Aggregated traffic over one directed (sender, receiver) link."""

    messages: int = 0
    wire_bytes: int = 0
    hop_bytes: int = 0
    sample_pairs: int = 0

    def add(self, message: Message, hops: int) -> None:
        """Charge one delivered message crossing ``hops`` links."""
        size = message.size_bytes()
        self.messages += 1
        self.wire_bytes += size
        self.hop_bytes += size * hops
        if isinstance(message, (SampleReport, Heartbeat, AggregatedReport)):
            self.sample_pairs += message.sample_count


@dataclass
class CommunicationMeter:
    """Network-wide traffic accounting keyed by directed link."""

    _links: Dict[Tuple[int, int], LinkStats] = field(default_factory=dict)

    def charge(self, message: Message, hops: int = 1) -> None:
        """Record a delivered message; ``hops`` weights multi-hop routes."""
        if hops <= 0:
            raise ValueError("hops must be positive")
        key = (message.sender, message.receiver)
        self._links.setdefault(key, LinkStats()).add(message, hops)

    def link(self, sender: int, receiver: int) -> LinkStats:
        """Stats of one directed link (zeros if never used)."""
        return self._links.get((sender, receiver), LinkStats())

    @property
    def total_messages(self) -> int:
        """Total delivered message count."""
        return sum(s.messages for s in self._links.values())

    @property
    def total_wire_bytes(self) -> int:
        """Total bytes put on the air (unweighted by hops)."""
        return sum(s.wire_bytes for s in self._links.values())

    @property
    def total_hop_bytes(self) -> int:
        """Total hop-weighted bytes (the radio-energy proxy)."""
        return sum(s.hop_bytes for s in self._links.values())

    @property
    def total_sample_pairs(self) -> int:
        """Total transmitted ``(value, rank)`` sample pairs.

        This is the quantity the paper's √(8k)/α overhead bound speaks
        about.
        """
        return sum(s.sample_pairs for s in self._links.values())

    def snapshot(self) -> Dict[str, int]:
        """Aggregate totals as a plain dict for reports."""
        return {
            "messages": self.total_messages,
            "wire_bytes": self.total_wire_bytes,
            "hop_bytes": self.total_hop_bytes,
            "sample_pairs": self.total_sample_pairs,
        }

    def reset(self) -> None:
        """Zero every counter (e.g. between experiment phases)."""
        self._links.clear()
