"""The base station: sample store, collection rounds, top-up protocol.

Section II-A: devices send samples of their local data to the base station,
which stores the global sample ``S`` and "opens the data access API to data
brokers".  :class:`BaseStation` drives the collection protocol over the
simulated network, merges incremental shipments, and serves the stored
per-node samples to the broker layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DeliveryError, InsufficientSamplesError
from repro.estimators.base import NodeSample
from repro.iot.device import SmartDevice
from repro.iot.messages import Heartbeat, SampleReport, SampleRequest, TopUpRequest
from repro.iot.network import Network
from repro.iot.topology import BASE_STATION_ID

if TYPE_CHECKING:  # pragma: no cover - types only, avoids an import cycle
    from repro.iot.heartbeat import HeartbeatService

__all__ = ["BaseStation"]

ShipmentMessage = Union[SampleReport, Heartbeat]


@dataclass
class BaseStation:
    """Coordinates sampling over the network and stores the global sample.

    Parameters
    ----------
    network:
        Transport used for requests and shipments (costs are metered there).
    devices:
        The fleet, keyed by device id.  In a physical deployment these are
        remote; here the station holds direct references but all protocol
        traffic still crosses the simulated network.
    """

    network: Network
    devices: Dict[int, SmartDevice] = field(default_factory=dict)
    liveness: "Optional[HeartbeatService]" = None

    def __post_init__(self) -> None:
        self._store: Dict[int, NodeSample] = {}
        self._rate: float = 0.0
        self._last_round_skipped: Tuple[int, ...] = ()
        # Cached node-id-ordered view of the store, plus a version counter
        # so broker-side caches can detect staleness.  Invalidated whenever
        # a collection round commits (see :meth:`_commit`).
        self._samples_cache: "Optional[tuple[NodeSample, ...]]" = None
        self._store_version: int = 0
        self._commit_listeners: "List[Callable[[int], None]]" = []

    # ------------------------------------------------------------------
    # fleet management
    # ------------------------------------------------------------------
    def register(self, device: SmartDevice) -> None:
        """Add a device to the fleet."""
        if device.node_id in self.devices:
            raise ValueError(f"device {device.node_id} already registered")
        if not self.network.topology.contains(device.node_id):
            raise ValueError(
                f"device {device.node_id} is not part of the network topology"
            )
        self.devices[device.node_id] = device

    @property
    def k(self) -> int:
        """Number of registered devices (the paper's ``k``)."""
        return len(self.devices)

    @property
    def n(self) -> int:
        """Total records across the fleet (the paper's ``n``)."""
        return sum(d.size for d in self.devices.values())

    @property
    def sampling_rate(self) -> float:
        """The rate ``p`` of the currently stored global sample."""
        return self._rate

    @property
    def store_version(self) -> int:
        """Monotone counter bumped every time the stored sample changes.

        Consumers that cache anything derived from :meth:`samples` (the
        broker's batch planner, for example) key their caches on this
        value instead of re-reading the store.
        """
        return self._store_version

    def subscribe_commits(self, callback: "Callable[[int], None]") -> None:
        """Call ``callback(new_store_version)`` after every committed round.

        This is the push side of the ``store_version`` invalidation
        contract: derived caches (the serving layer's answer cache, for
        one) register here to purge stale state the moment the stored
        sample changes, instead of discovering it lazily on lookup.
        """
        self._commit_listeners.append(callback)

    def _commit(self, staged: Dict[int, NodeSample], rate: float) -> None:
        """Atomically install a completed round and invalidate caches."""
        self._store = staged
        self._rate = rate
        self._samples_cache = None
        self._store_version += 1
        for callback in self._commit_listeners:
            callback(self._store_version)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    def _receive(
        self,
        store: Dict[int, NodeSample],
        shipment: ShipmentMessage,
        merge: bool = False,
    ) -> None:
        """Write a shipment into ``store``; ``merge`` = top-up increment."""
        node_id = shipment.sender
        incoming_values = np.asarray(shipment.values, dtype=np.float64)
        incoming_ranks = np.asarray(shipment.ranks, dtype=np.int64)
        existing = store.get(node_id)
        if merge and existing is not None:
            merged_ranks = np.concatenate([existing.ranks, incoming_ranks])
            merged_values = np.concatenate([existing.values, incoming_values])
            order = np.argsort(merged_ranks, kind="stable")
            merged_ranks = merged_ranks[order]
            merged_values = merged_values[order]
        else:
            merged_values, merged_ranks = incoming_values, incoming_ranks
        store[node_id] = NodeSample(
            node_id=node_id,
            values=merged_values,
            ranks=merged_ranks,
            node_size=shipment.node_size,
            p=shipment.p,
        )

    def _device_live(self, node_id: int) -> bool:
        """Whether the liveness service (if any) considers a device alive.

        With no bound :class:`~repro.iot.heartbeat.HeartbeatService`, or
        for devices it does not track, every device is presumed alive
        (the pre-liveness behaviour).
        """
        if self.liveness is None or not self.liveness.is_tracked(node_id):
            return True
        return self.liveness.is_alive(node_id)

    def _probe_skipped(self, node_id: int, p: float) -> None:
        """Send one metered retry probe to a device skipped as dead.

        The probe is a real :class:`SampleRequest` on the air (the radio
        pays for it either way); a delivery failure just confirms the
        liveness verdict and the round moves on instead of stalling.
        """
        request = SampleRequest(sender=BASE_STATION_ID, receiver=node_id, p=p)
        try:
            self.network.send(request)
        except DeliveryError:
            pass

    @property
    def last_round_skipped(self) -> Tuple[int, ...]:
        """Device ids skipped as dead during the most recent round."""
        return self._last_round_skipped

    def collect(self, p: float) -> None:
        """Run a fresh collection round at rate ``p`` across the fleet.

        The round is transactional: the stored sample and rate change only
        when *every* device's shipment arrives, so a mid-round
        :class:`~repro.errors.DeliveryError` never leaves a partial store
        masquerading as a complete one.

        When a :class:`~repro.iot.heartbeat.HeartbeatService` is bound via
        ``liveness``, devices it reports dead are skipped (after one
        metered retry probe) so a failed device degrades coverage instead
        of stalling the round.  Skipped ids land in
        :attr:`last_round_skipped`.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1], got {p}")
        if not self.devices:
            raise ValueError("no devices registered")
        staged: Dict[int, NodeSample] = {}
        skipped: List[int] = []
        for node_id, device in sorted(self.devices.items()):
            if not self._device_live(node_id):
                self._probe_skipped(node_id, p)
                skipped.append(node_id)
                continue
            request = SampleRequest(
                sender=BASE_STATION_ID, receiver=node_id, p=p
            )
            self.network.send(request)
            shipment = device.handle(request)
            self.network.send(shipment)
            self._receive(staged, shipment)
        if not staged:
            raise InsufficientSamplesError(
                "every registered device failed its liveness check; "
                "no samples collected"
            )
        self._last_round_skipped = tuple(skipped)
        self._commit(staged, p)

    def top_up(self, new_p: float) -> None:
        """Raise the stored sample's rate to ``new_p`` incrementally.

        Transactional like :meth:`collect`: increments are staged against a
        copy and committed only after the whole round succeeds.
        """
        if not self._store:
            self.collect(new_p)
            return
        if new_p < self._rate:
            raise ValueError(
                f"cannot reduce the sampling rate from {self._rate} to {new_p}"
            )
        if abs(new_p - self._rate) < 1e-15:
            return
        staged = dict(self._store)
        skipped: List[int] = []
        for node_id, device in sorted(self.devices.items()):
            if not self._device_live(node_id):
                # A skipped node keeps its stale (lower-rate) sample; the
                # per-node ``p`` on the NodeSample keeps estimation honest.
                self._probe_skipped(node_id, new_p)
                skipped.append(node_id)
                continue
            request = TopUpRequest(
                sender=BASE_STATION_ID,
                receiver=node_id,
                old_p=self._rate,
                new_p=new_p,
            )
            self.network.send(request)
            shipment = device.handle(request)
            self.network.send(shipment)
            self._receive(staged, shipment, merge=True)
        self._last_round_skipped = tuple(skipped)
        self._commit(staged, new_p)

    def ensure_rate(self, p: float) -> None:
        """Make sure the stored sample is at least as dense as ``p``.

        A no-op when the current rate suffices; otherwise a top-up (or an
        initial collection) runs.  This is the paper's accuracy-driven
        re-collection loop.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1], got {p}")
        if self._rate >= p and self._store:
            return
        if self._store:
            self.top_up(p)
        else:
            self.collect(p)

    # ------------------------------------------------------------------
    # broker-facing API
    # ------------------------------------------------------------------
    def samples(self) -> List[NodeSample]:
        """The stored per-node samples, ordered by node id.

        The ordered view is built once per collection round and cached
        (each :class:`NodeSample` already holds contiguous value/rank
        arrays), so the broker's per-query calls stop re-sorting and
        rebuilding the list.  Callers get a fresh list shell over the
        shared, immutable-by-convention samples.

        Raises
        ------
        InsufficientSamplesError
            If no collection round has run yet.
        """
        if not self._store:
            raise InsufficientSamplesError(
                "no samples collected yet; call collect() first"
            )
        if self._samples_cache is None:
            self._samples_cache = tuple(
                self._store[node_id] for node_id in sorted(self._store)
            )
        return list(self._samples_cache)

    def sample_volume(self) -> int:
        """Total ``(value, rank)`` pairs currently stored."""
        return sum(len(s) for s in self._store.values())

    # ------------------------------------------------------------------
    # replica sync (cluster layer)
    # ------------------------------------------------------------------
    def export_store(self) -> "tuple[Dict[int, NodeSample], float]":
        """Snapshot of the committed store and its rate, for replica sync.

        The dict shell is a copy; the :class:`NodeSample` payloads are the
        shared, immutable-by-convention objects.
        """
        return dict(self._store), self._rate

    def sync_from(self, other: "BaseStation") -> None:
        """Adopt another station's committed store (replica mirroring).

        Used by :mod:`repro.cluster` to keep a shard's replica station fed
        from the primary's collection rounds without a second pass over
        the radio.  Commits through the normal transactional path, so the
        replica's ``store_version`` bumps and its commit listeners fire.
        A primary with no committed round yet is a no-op.
        """
        store, rate = other.export_store()
        if not store:
            return
        self._commit(store, rate)
