"""Simulation clock and a minimal discrete-event scheduler.

The network simulation is causally simple -- request/response rounds -- so
the runtime keeps only what the experiments need: a monotonically advancing
:class:`SimulationClock` that the network drives with message latencies,
and an :class:`EventScheduler` for timed callbacks (periodic heartbeats,
deferred collection rounds) used by the long-running examples.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["SimulationClock", "EventScheduler"]


@dataclass
class SimulationClock:
    """A monotone simulated-time counter (seconds)."""

    now: float = 0.0

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` and return the new time."""
        if delta < 0:
            raise ValueError("time cannot move backwards")
        self.now += delta
        return self.now


@dataclass
class EventScheduler:
    """Minimal discrete-event loop over a shared :class:`SimulationClock`.

    Events are ``(fire_time, callback)`` pairs kept in a heap; ``run``
    pops them in time order, advancing the clock to each event's fire time
    before invoking it.  Callbacks may schedule further events.
    """

    clock: SimulationClock = field(default_factory=SimulationClock)

    def __post_init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        heapq.heappush(
            self._heap, (self.clock.now + delay, next(self._counter), callback)
        )

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Process queued events in time order.

        Parameters
        ----------
        until:
            Stop before events scheduled after this simulated time.
        max_events:
            Safety bound on processed events.

        Returns
        -------
        int
            Number of events processed.
        """
        processed = 0
        while self._heap and processed < max_events:
            fire_time, _, callback = self._heap[0]
            if until is not None and fire_time > until:
                break
            heapq.heappop(self._heap)
            if fire_time > self.clock.now:
                self.clock.advance(fire_time - self.clock.now)
            callback()
            processed += 1
        return processed
