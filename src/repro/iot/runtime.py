"""Simulation clock and a minimal discrete-event scheduler.

The network simulation is causally simple -- request/response rounds -- so
the runtime keeps only what the experiments need: a monotonically advancing
:class:`SimulationClock` that the network drives with message latencies,
and an :class:`EventScheduler` for timed callbacks (periodic heartbeats,
deferred collection rounds, the serving gateway's batching-window timer)
used by the long-running examples.

Two ordering guarantees callers may rely on:

* events fire in non-decreasing time order;
* events scheduled for the **same** fire time run in FIFO order of their
  ``schedule`` calls, deterministically -- ties are broken by a monotone
  sequence number, never by callback identity or heap internals.

``schedule`` returns an :class:`EventHandle`; cancelling one is O(1) (the
heap entry is tombstoned and skipped at pop time) and is safe at any point,
including from inside another event's callback.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["SimulationClock", "EventScheduler", "EventHandle"]


@dataclass
class SimulationClock:
    """A monotone simulated-time counter (seconds)."""

    now: float = 0.0

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` and return the new time."""
        if delta < 0:
            raise ValueError("time cannot move backwards")
        self.now += delta
        return self.now


class EventHandle:
    """A scheduled event: inspect its state, or cancel it before it fires."""

    __slots__ = ("fire_time", "seq", "_callback", "_fired", "_scheduler")

    def __init__(
        self,
        fire_time: float,
        seq: int,
        callback: Callable[[], None],
        scheduler: "EventScheduler",
    ) -> None:
        self.fire_time = fire_time
        self.seq = seq
        self._callback: Optional[Callable[[], None]] = callback
        self._fired = False
        self._scheduler = scheduler

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.fire_time, self.seq) < (other.fire_time, other.seq)

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` ran before the event fired."""
        return self._callback is None and not self._fired

    @property
    def fired(self) -> bool:
        """Whether the event's callback has already run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """Whether the event is still queued (neither fired nor cancelled)."""
        return self._callback is not None and not self._fired

    def cancel(self) -> bool:
        """Drop the event; returns False when it already fired/cancelled.

        Cancellation tombstones the heap entry in O(1); the scheduler
        skips tombstones at pop time without counting them as processed.
        """
        if not self.pending:
            return False
        self._callback = None
        self._scheduler._note_cancel()
        return True

    def _fire(self) -> None:
        callback = self._callback
        assert callback is not None
        self._callback = None
        self._fired = True
        callback()


@dataclass
class EventScheduler:
    """Minimal discrete-event loop over a shared :class:`SimulationClock`.

    Events are kept in a heap ordered by ``(fire_time, seq)`` where ``seq``
    is a monotone schedule counter, so same-timestamp events are guaranteed
    to run in deterministic FIFO schedule order.  ``run`` pops them in that
    order, advancing the clock to each event's fire time before invoking
    it.  Callbacks may schedule further events and may cancel pending ones.
    """

    clock: SimulationClock = field(default_factory=SimulationClock)

    def __post_init__(self) -> None:
        self._heap: List[EventHandle] = []
        self._counter = itertools.count()
        self._cancelled = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return len(self._heap) - self._cancelled

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns an :class:`EventHandle` whose :meth:`~EventHandle.cancel`
        removes the event before it fires.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        handle = EventHandle(
            self.clock.now + delay, next(self._counter), callback, self
        )
        heapq.heappush(self._heap, handle)
        return handle

    def _note_cancel(self) -> None:
        self._cancelled += 1

    def next_fire_time(self) -> Optional[float]:
        """Fire time of the earliest live event, or None when idle."""
        self._drop_cancelled_head()
        return self._heap[0].fire_time if self._heap else None

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Process queued events in ``(time, FIFO)`` order.

        Parameters
        ----------
        until:
            Stop before events scheduled after this simulated time.
        max_events:
            Safety bound on processed events (cancelled events don't count).

        Returns
        -------
        int
            Number of callbacks actually invoked.
        """
        processed = 0
        while processed < max_events:
            self._drop_cancelled_head()
            if not self._heap:
                break
            handle = self._heap[0]
            if until is not None and handle.fire_time > until:
                break
            heapq.heappop(self._heap)
            if handle.cancelled:
                self._cancelled -= 1
                continue
            if handle.fire_time > self.clock.now:
                self.clock.advance(handle.fire_time - self.clock.now)
            handle._fire()
            processed += 1
        return processed
