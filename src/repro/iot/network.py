"""The simulated network: topology + channel + cost metering + clock.

:class:`Network` is the single transport primitive the devices and the base
station use.  ``send`` routes a message along the topology, retries lost
attempts up to a bound, charges the cost meter for *every* attempt that
goes on the air (radios pay for losses too), and advances the simulated
clock by the observed latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.errors import DeliveryError
from repro.iot.channel import Channel
from repro.iot.cost import CommunicationMeter
from repro.iot.messages import Message
from repro.iot.runtime import SimulationClock
from repro.iot.topology import FlatTopology, Topology

__all__ = ["Network", "DeliveryRecord"]


@dataclass(frozen=True)
class DeliveryRecord:
    """Audit record of one successful delivery."""

    message_type: str
    sender: int
    receiver: int
    attempts: int
    hops: int
    latency: float
    delivered_at: float


@dataclass
class Network:
    """Message transport over a topology with loss, retries and metering.

    Parameters
    ----------
    topology:
        Routing substrate; defaults to a 1-device flat network.
    channel:
        Loss/latency model; defaults to a perfect channel.
    meter:
        Cost accounting; a fresh meter by default.
    max_retries:
        Additional attempts after the first before giving up.
    backoff_base:
        Simulated seconds of backoff floor before the first retry.  Set
        to 0 to retry immediately (the pre-backoff behaviour).
    backoff_factor:
        Multiplier between successive backoff waits (>= 1).  With jitter
        enabled it only sets the cap
        (``backoff_base * backoff_factor**max_retries``); with jitter
        disabled, retry ``r`` waits the classic
        ``backoff_base * backoff_factor**(r-1)``.
    backoff_jitter:
        Decorrelated jitter on the retry waits (default on): each wait
        is drawn uniformly from ``[backoff_base, 3 * previous_wait]``
        and clamped to the cap, so synchronized senders that lost the
        same frame fan out instead of re-colliding on the next attempt.
        Draws come from a dedicated seeded generator and happen **only
        after a failed attempt**, so loss-free runs are bit-identical
        with jitter on or off, and seeded channel streams (loss,
        latency) are never perturbed either way.
    backoff_seed:
        Seed of the jitter generator; same-seed twin networks wait
        identical jittered ladders.
    delivery_log_limit:
        Ring-buffer capacity of the per-message audit log.  Under
        sustained serving load the log would otherwise grow without
        bound; only the newest ``delivery_log_limit`` records are kept.
        Pass ``None`` to opt out and keep every record.  Aggregate
        totals (the cost meter and the running counters below) stay
        exact regardless of eviction.
    """

    topology: Topology = field(default_factory=lambda: FlatTopology.with_devices(1))
    channel: Channel = field(default_factory=Channel)
    meter: CommunicationMeter = field(default_factory=CommunicationMeter)
    clock: SimulationClock = field(default_factory=SimulationClock)
    max_retries: int = 3
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    backoff_jitter: bool = True
    backoff_seed: int = 53
    delivery_log_limit: Optional[int] = 4096

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.delivery_log_limit is not None and self.delivery_log_limit <= 0:
            raise ValueError("delivery_log_limit must be positive or None")
        self._log: Deque[DeliveryRecord] = deque(maxlen=self.delivery_log_limit)
        self._delivered_count = 0
        self._attempt_count = 0
        # Jitter draws ride their own generator so backoff never shifts
        # the channel's seeded loss/latency streams.
        self._backoff_rng = np.random.default_rng(self.backoff_seed)

    @property
    def deliveries(self) -> List[DeliveryRecord]:
        """Audit log of successful deliveries, oldest first.

        Bounded by ``delivery_log_limit``; use :attr:`delivered_count` /
        :attr:`attempt_count` for exact lifetime totals.
        """
        return list(self._log)

    @property
    def delivered_count(self) -> int:
        """Lifetime count of successful deliveries (survives log eviction)."""
        return self._delivered_count

    @property
    def attempt_count(self) -> int:
        """Lifetime count of transmission attempts, including lost frames."""
        return self._attempt_count

    def send(self, message: Message) -> DeliveryRecord:
        """Deliver ``message``, retrying lost attempts with backoff.

        Every attempt is charged to the meter (the radio transmits whether
        or not the frame survives), and every attempt — lost ones too —
        advances the simulated clock: a lost frame still burns
        ``hops * base_latency`` of air time, and each retry waits a
        backoff — decorrelated-jittered by default, classic exponential
        with ``backoff_jitter=False`` — before going back on the air.
        Lost-frame air time is deterministic and jitter draws come from
        the network's own seeded generator, only ever after a failed
        attempt, so seeded channel streams are unaffected by the clock
        accounting and loss-free runs are bit-identical regardless of the
        jitter setting.  Raises :class:`DeliveryError` — carrying
        attempts/hops/route context — after ``1 + max_retries`` failed
        attempts or for unknown endpoints.
        """
        hops = self.topology.hops(message.sender, message.receiver)
        if hops == 0:
            raise DeliveryError(
                f"message from {message.sender} to itself needs no network"
            )
        attempts = 0
        wasted = 0.0  # simulated seconds spent on lost frames + backoff
        backoff_cap = self.backoff_base * self.backoff_factor ** self.max_retries
        previous_wait = self.backoff_base
        while attempts <= self.max_retries:
            attempts += 1
            self._attempt_count += 1
            self.meter.charge(message, hops)
            if self.channel.attempt_succeeds(hops):
                latency = self.channel.sample_latency(hops)
                delivered_at = self.clock.advance(latency)
                record = DeliveryRecord(
                    message_type=type(message).__name__,
                    sender=message.sender,
                    receiver=message.receiver,
                    attempts=attempts,
                    hops=hops,
                    latency=latency,
                    delivered_at=delivered_at,
                )
                self._log.append(record)
                self._delivered_count += 1
                return record
            lost_air_time = hops * self.channel.base_latency
            self.clock.advance(lost_air_time)
            wasted += lost_air_time
            if attempts <= self.max_retries and self.backoff_base > 0:
                if self.backoff_jitter:
                    backoff = min(backoff_cap, float(self._backoff_rng.uniform(
                        self.backoff_base, 3.0 * previous_wait
                    )))
                    previous_wait = backoff
                else:
                    backoff = (
                        self.backoff_base
                        * self.backoff_factor ** (attempts - 1)
                    )
                self.clock.advance(backoff)
                wasted += backoff
        raise DeliveryError(
            f"message {type(message).__name__} from {message.sender} to "
            f"{message.receiver} lost after {attempts} attempts over "
            f"{hops} hop(s); {wasted:.6g}s simulated spent on lost frames "
            "and backoff",
            attempts=attempts,
            hops=hops,
            sender=str(message.sender),
            receiver=str(message.receiver),
        )
