"""Heartbeat service: periodic liveness beacons and dead-device detection.

Devices in the field die -- batteries drain, radios fail.  The estimator's
``k`` and ``n`` must reflect the *live* fleet, or calibration silently
degrades.  :class:`HeartbeatService` drives periodic beacons through the
:class:`~repro.iot.runtime.EventScheduler`, tracks each device's last-seen
time at the base station, and classifies devices as dead once they miss
``miss_threshold`` consecutive beacon intervals.

The beacons are the same :class:`~repro.iot.messages.Heartbeat` frames
that piggyback small sample shipments, so liveness costs nothing beyond
what the collection protocol already pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.iot.device import SmartDevice
from repro.iot.messages import Heartbeat
from repro.iot.network import Network
from repro.iot.runtime import EventScheduler
from repro.iot.topology import BASE_STATION_ID

__all__ = ["HeartbeatService"]


@dataclass
class HeartbeatService:
    """Periodic liveness beacons over the simulated network.

    Parameters
    ----------
    network:
        Transport (beacons are metered like everything else).
    scheduler:
        Discrete-event loop driving the beacon cadence.
    interval:
        Seconds between a device's beacons.
    miss_threshold:
        Consecutive missed intervals before a device is declared dead.
    """

    network: Network
    scheduler: EventScheduler
    interval: float = 60.0
    miss_threshold: int = 3

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.miss_threshold <= 0:
            raise ValueError("miss_threshold must be positive")
        self._devices: Dict[int, SmartDevice] = {}
        self._failed: Set[int] = set()
        self._last_seen: Dict[int, float] = {}
        self._beacons_sent: int = 0

    # ------------------------------------------------------------------
    # fleet wiring
    # ------------------------------------------------------------------
    def track(self, device: SmartDevice) -> None:
        """Start beaconing for a device (first beacon after one interval)."""
        if device.node_id in self._devices:
            raise ValueError(f"device {device.node_id} already tracked")
        self._devices[device.node_id] = device
        self._last_seen[device.node_id] = self.scheduler.clock.now
        self.scheduler.schedule(
            self.interval, lambda: self._beat(device.node_id)
        )

    def fail_device(self, node_id: int) -> None:
        """Mark a device as failed -- its future beacons stop."""
        if node_id not in self._devices:
            raise KeyError(f"device {node_id} is not tracked")
        self._failed.add(node_id)

    def revive_device(self, node_id: int) -> None:
        """Bring a failed device back; beaconing resumes next interval."""
        if node_id not in self._devices:
            raise KeyError(f"device {node_id} is not tracked")
        if node_id in self._failed:
            self._failed.remove(node_id)
            self.scheduler.schedule(
                self.interval, lambda: self._beat(node_id)
            )

    # ------------------------------------------------------------------
    # beacon loop
    # ------------------------------------------------------------------
    def _beat(self, node_id: int) -> None:
        if node_id in self._failed:
            return  # no further beacons; the schedule chain stops here
        beacon = Heartbeat(
            sender=node_id,
            receiver=BASE_STATION_ID,
            node_size=self._devices[node_id].size,
            p=self._devices[node_id].current_rate,
        )
        self.network.send(beacon)
        self._beacons_sent += 1
        self._last_seen[node_id] = self.scheduler.clock.now
        self.scheduler.schedule(self.interval, lambda: self._beat(node_id))

    # ------------------------------------------------------------------
    # liveness queries
    # ------------------------------------------------------------------
    @property
    def beacons_sent(self) -> int:
        """Total beacons delivered so far."""
        return self._beacons_sent

    def is_tracked(self, node_id: int) -> bool:
        """Whether this service is beaconing for ``node_id``."""
        return node_id in self._devices

    def last_seen(self, node_id: int) -> float:
        """Simulated time of the device's last beacon (or tracking start)."""
        try:
            return self._last_seen[node_id]
        except KeyError:
            raise KeyError(f"device {node_id} is not tracked") from None

    def is_alive(self, node_id: int) -> bool:
        """Whether the device beat within the miss threshold."""
        silence = self.scheduler.clock.now - self.last_seen(node_id)
        return silence < self.miss_threshold * self.interval

    def live_devices(self) -> Tuple[int, ...]:
        """Ids of devices currently considered alive, ascending."""
        return tuple(
            node_id for node_id in sorted(self._devices)
            if self.is_alive(node_id)
        )

    def dead_devices(self) -> Tuple[int, ...]:
        """Ids of devices that missed too many beacons, ascending."""
        return tuple(
            node_id for node_id in sorted(self._devices)
            if not self.is_alive(node_id)
        )

    def live_fleet_shape(self) -> Tuple[int, int]:
        """``(k, n)`` of the live fleet -- what calibration should use."""
        live = self.live_devices()
        return len(live), sum(self._devices[i].size for i in live)
