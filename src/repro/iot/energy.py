"""Device energy model: what the radio bill means for battery lifetime.

The paper's motivation for sampling is communication cost, and the cost
that matters to an IoT deployment is joules.  This module converts the
cost meter's byte counters into a standard first-order radio energy model
(Heinzelman et al.'s e_elec + amplifier form, the model used by the
energy-accuracy literature the paper cites):

    E_tx(bytes) = bytes·8 · (E_ELEC + E_AMP·d²)     transmit over distance d
    E_rx(bytes) = bytes·8 · E_ELEC                  receive

:class:`EnergyModel` prices a meter snapshot; :class:`DeviceBattery`
tracks depletion and answers the deployment question: *how many
collection rounds does a battery fund?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.iot.cost import CommunicationMeter

__all__ = ["EnergyModel", "DeviceBattery"]

#: Electronics energy per bit (J/bit), standard first-order value.
DEFAULT_E_ELEC = 50e-9

#: Amplifier energy per bit per m² (J/bit/m²).
DEFAULT_E_AMP = 100e-12

#: Default device-to-parent radio distance (meters).
DEFAULT_DISTANCE = 50.0


@dataclass(frozen=True)
class EnergyModel:
    """First-order radio energy model over the cost meter's byte counters."""

    e_elec: float = DEFAULT_E_ELEC
    e_amp: float = DEFAULT_E_AMP
    distance: float = DEFAULT_DISTANCE

    def __post_init__(self) -> None:
        if self.e_elec < 0 or self.e_amp < 0:
            raise ValueError("energy coefficients must be non-negative")
        if self.distance <= 0:
            raise ValueError("distance must be positive")

    def transmit_energy(self, size_bytes: int) -> float:
        """Joules to transmit ``size_bytes`` over one hop."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        bits = size_bytes * 8
        return bits * (self.e_elec + self.e_amp * self.distance**2)

    def receive_energy(self, size_bytes: int) -> float:
        """Joules to receive ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        return size_bytes * 8 * self.e_elec

    def round_energy(self, meter: CommunicationMeter) -> float:
        """Total fleet energy implied by a meter's hop-weighted bytes.

        Every hop is one transmit + one receive of the message, so the
        hop-weighted byte counter prices the whole route.
        """
        hop_bytes = meter.total_hop_bytes
        return self.transmit_energy(hop_bytes) + self.receive_energy(hop_bytes)


@dataclass
class DeviceBattery:
    """A device's energy reserve with depletion tracking.

    Parameters
    ----------
    capacity_joules:
        Initial reserve; 2 × AA ≈ 18 720 J, coin cell ≈ 2 340 J.
    """

    capacity_joules: float
    _spent: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.capacity_joules <= 0:
            raise ValueError("capacity must be positive")

    @property
    def remaining(self) -> float:
        """Joules left."""
        return max(0.0, self.capacity_joules - self._spent)

    @property
    def depleted(self) -> bool:
        """Whether the reserve is exhausted."""
        return self.remaining <= 0.0

    def drain(self, joules: float) -> float:
        """Consume energy; returns the remaining reserve."""
        if joules < 0:
            raise ValueError("joules must be non-negative")
        self._spent += joules
        return self.remaining

    def rounds_supported(self, joules_per_round: float) -> int:
        """How many identical rounds the *remaining* reserve funds."""
        if joules_per_round <= 0:
            raise ValueError("joules_per_round must be positive")
        return int(self.remaining / joules_per_round)
