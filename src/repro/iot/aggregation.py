"""Tree-model in-network aggregation -- the paper's stated extension.

Section III-A: "We assume the network is organized in a flat model ...
Note that algorithms on flat models can be easily extended to a general
tree model."  This module supplies that extension: collection over a
:class:`~repro.iot.topology.TreeTopology` where every interior device
merges its own sample shipment with its children's bundles into a single
:class:`~repro.iot.messages.AggregatedReport` before forwarding uplink.

Compared to routing each node's report individually across the tree (one
message per node per hop), in-network bundling sends exactly **one uplink
message per tree edge**, saving the per-message header on every relay and
letting the radio sleep between bursts.  The estimator input -- the set of
per-node ``(values, ranks, n_i, p)`` samples -- is byte-identical to the
flat model's, so Theorems 3.1--3.3 apply unchanged; only transport
differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import DeliveryError
from repro.estimators.base import NodeSample
from repro.iot.device import SmartDevice
from repro.iot.messages import AggregatedReport, SampleRequest
from repro.iot.network import Network
from repro.iot.topology import BASE_STATION_ID, TreeTopology

__all__ = ["TreeCollector"]


@dataclass
class TreeCollector:
    """Runs bottom-up sample collection over an aggregation tree.

    Parameters
    ----------
    network:
        Transport whose topology must be the same :class:`TreeTopology`
        the collection is organized around.
    topology:
        The aggregation tree (device -> parent map rooted at the base
        station).
    devices:
        The fleet, keyed by device id; every tree node must be present.
    """

    network: Network
    topology: TreeTopology
    devices: Dict[int, SmartDevice] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node_id in self.topology.node_ids():
            if node_id not in self.devices:
                raise ValueError(f"tree node {node_id} has no registered device")
        self._children: Dict[int, List[int]] = {}
        for node, parent in self.topology.parent.items():
            self._children.setdefault(parent, []).append(node)
        for children in self._children.values():
            children.sort()
        self._store: Dict[int, NodeSample] = {}
        self._rate = 0.0

    @property
    def k(self) -> int:
        """Number of devices in the tree."""
        return len(self.devices)

    @property
    def n(self) -> int:
        """Total records across the fleet."""
        return sum(d.size for d in self.devices.values())

    @property
    def sampling_rate(self) -> float:
        """Rate of the stored sample (0 before the first round)."""
        return self._rate

    def children_of(self, node_id: int) -> Tuple[int, ...]:
        """The node's tree children (empty for leaves)."""
        return tuple(self._children.get(node_id, ()))

    def _bundle(self, node_id: int, p: float) -> AggregatedReport:
        """Recursively collect the subtree rooted at ``node_id``.

        The node requests its children's bundles first (each crossing one
        tree edge on the simulated radio), samples its own data, and merges
        everything into one uplink report addressed to its parent.
        """
        device = self.devices[node_id]
        # Request/receive each child's bundle over its uplink edge.
        child_bundles: List[AggregatedReport] = []
        for child in self.children_of(node_id):
            child_bundles.append(self._bundle(child, p))

        own = device.data.sample(p, device.rng)
        origins: List[int] = [node_id]
        values: List[Tuple[float, ...]] = [tuple(float(v) for v in own.values)]
        ranks: List[Tuple[int, ...]] = [tuple(int(r) for r in own.ranks)]
        node_sizes: List[int] = [device.size]
        for bundle in child_bundles:
            origins.extend(bundle.origins)
            values.extend(bundle.values)
            ranks.extend(bundle.ranks)
            node_sizes.extend(bundle.node_sizes)

        parent = self.topology.parent.get(node_id, BASE_STATION_ID)
        report = AggregatedReport(
            sender=node_id,
            receiver=parent,
            origins=tuple(origins),
            values=tuple(values),
            ranks=tuple(ranks),
            node_sizes=tuple(node_sizes),
            p=p,
        )
        self.network.send(report)
        return report

    def collect(self, p: float) -> None:
        """Run one bottom-up collection round at rate ``p``.

        The base station first floods a :class:`SampleRequest` down every
        tree edge (metered), then each subtree bundles bottom-up.  The
        resulting per-node samples are stored for the estimator layer.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1], got {p}")
        if not self.devices:
            raise ValueError("no devices registered")

        # Downlink flood: one request per tree edge.
        for node_id in sorted(self.topology.node_ids()):
            parent = self.topology.parent[node_id]
            self.network.send(
                SampleRequest(sender=parent, receiver=node_id, p=p)
            )

        # Uplink aggregation from each root child.
        self._store.clear()
        for root_child in self.children_of(BASE_STATION_ID):
            bundle = self._bundle(root_child, p)
            self._ingest(bundle)
        self._rate = p

    def _ingest(self, bundle: AggregatedReport) -> None:
        for origin, vals, rks, size in zip(
            bundle.origins, bundle.values, bundle.ranks, bundle.node_sizes
        ):
            if origin in self._store:
                raise DeliveryError(f"duplicate shipment for node {origin}")
            self._store[origin] = NodeSample(
                node_id=origin,
                values=np.asarray(vals, dtype=np.float64),
                ranks=np.asarray(rks, dtype=np.int64),
                node_size=size,
                p=bundle.p,
            )

    def samples(self) -> List[NodeSample]:
        """Stored per-node samples, ordered by node id."""
        if not self._store:
            raise DeliveryError("no samples collected yet; call collect() first")
        return [self._store[node_id] for node_id in sorted(self._store)]

    def sample_volume(self) -> int:
        """Total stored ``(value, rank)`` pairs."""
        return sum(len(s) for s in self._store.values())
