"""Smart devices: local storage, Bernoulli sampling, rank reporting.

Each device owns a local dataset ``D_i`` (a :class:`NodeData`), draws
Bernoulli(p) samples with local ranks on request, and ships them to the
base station.  Two paper behaviours are modelled faithfully:

* **heartbeat packing** -- when a (fresh or incremental) shipment fits in
  :data:`~repro.iot.messages.HEARTBEAT_CAPACITY` pairs, the device
  piggybacks it on an ordinary heartbeat at zero marginal cost;
* **top-up sampling** -- on a :class:`TopUpRequest` the device extends its
  existing sample to the higher rate and ships *only the new* pairs
  ("more samples should be drawn and their ranks are also transferred").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

import numpy as np

from repro.estimators.base import NodeData, NodeSample
from repro.iot.messages import (
    HEARTBEAT_CAPACITY,
    Heartbeat,
    Message,
    SampleReport,
    SampleRequest,
    TopUpRequest,
)
from repro.iot.topology import BASE_STATION_ID

__all__ = ["SmartDevice"]

ShipmentMessage = Union[SampleReport, Heartbeat]


@dataclass
class SmartDevice:
    """One IoT node: local data plus the sampling protocol endpoint.

    Parameters
    ----------
    node_id:
        Unique device id (must not be the base-station id 0).
    data:
        The local dataset ``D_i``.
    rng:
        Device-local randomness for sampling decisions.  When omitted,
        a Generator seeded from ``node_id`` is derived so that every
        device draws an independent, reproducible stream (a shared
        constant seed would correlate all devices' Bernoulli coins).
    """

    node_id: int
    data: NodeData
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = np.random.default_rng(self.node_id)
        if self.node_id == BASE_STATION_ID:
            raise ValueError("device id 0 is reserved for the base station")
        if self.data.node_id != self.node_id:
            raise ValueError("NodeData.node_id must match the device id")
        self._current_sample: Optional[NodeSample] = None
        self._last_shipment: Optional[ShipmentMessage] = None

    @classmethod
    def from_values(
        cls, node_id: int, values: np.ndarray, seed: Optional[int] = None
    ) -> "SmartDevice":
        """Convenience constructor from a raw value array."""
        return cls(
            node_id=node_id,
            data=NodeData(node_id=node_id, values=values),
            rng=np.random.default_rng(node_id if seed is None else seed),
        )

    @property
    def size(self) -> int:
        """``n_i`` -- the number of locally collected records."""
        return self.data.size

    @property
    def current_sample(self) -> Optional[NodeSample]:
        """The sample currently synchronized with the base station."""
        return self._current_sample

    @property
    def current_rate(self) -> float:
        """Sampling rate of the current sample (0 before any collection)."""
        return self._current_sample.p if self._current_sample is not None else 0.0

    def _package(
        self,
        values: Tuple[float, ...],
        ranks: Tuple[int, ...],
        p: float,
    ) -> ShipmentMessage:
        """Wrap pairs in a heartbeat when they fit, else a sample report."""
        common = dict(
            sender=self.node_id,
            receiver=BASE_STATION_ID,
            values=values,
            ranks=ranks,
            node_size=self.size,
            p=p,
        )
        if len(values) <= HEARTBEAT_CAPACITY:
            return Heartbeat(**common)
        return SampleReport(**common)

    def handle_sample_request(self, request: SampleRequest) -> ShipmentMessage:
        """Draw a fresh Bernoulli(p) sample and package it for shipping."""
        if request.receiver != self.node_id:
            raise ValueError(
                f"request addressed to {request.receiver}, not {self.node_id}"
            )
        sample = self.data.sample(request.p, self.rng)
        self._current_sample = sample
        shipment = self._package(
            tuple(float(v) for v in sample.values),
            tuple(int(r) for r in sample.ranks),
            sample.p,
        )
        self._last_shipment = shipment
        return shipment

    def handle_top_up_request(self, request: TopUpRequest) -> ShipmentMessage:
        """Extend the current sample to ``request.new_p``; ship only new pairs.

        The device must already hold a sample at ``request.old_p``.  The
        shipped message carries the *incremental* pairs; its ``p`` field is
        the new rate so the base station can merge consistently.
        """
        if request.receiver != self.node_id:
            raise ValueError(
                f"request addressed to {request.receiver}, not {self.node_id}"
            )
        if self._current_sample is None:
            raise ValueError("no existing sample; send a SampleRequest first")
        if abs(self._current_sample.p - request.old_p) > 1e-12:
            # Idempotent retry: the previous shipment was lost in flight,
            # the device already advanced to new_p -- re-ship it.
            if (
                abs(self._current_sample.p - request.new_p) <= 1e-12
                and self._last_shipment is not None
                and abs(self._last_shipment.p - request.new_p) <= 1e-12
            ):
                return self._last_shipment
            raise ValueError(
                f"base station believes rate {request.old_p}, device holds "
                f"{self._current_sample.p}"
            )
        old = self._current_sample
        new = self.data.top_up(old, request.new_p, self.rng)
        self._current_sample = new
        old_ranks = set(int(r) for r in old.ranks)
        fresh_values = []
        fresh_ranks = []
        for value, rank in zip(new.values, new.ranks):
            if int(rank) not in old_ranks:
                fresh_values.append(float(value))
                fresh_ranks.append(int(rank))
        shipment = self._package(
            tuple(fresh_values), tuple(fresh_ranks), new.p
        )
        self._last_shipment = shipment
        return shipment

    def handle(self, message: Message) -> ShipmentMessage:
        """Dispatch an incoming protocol message to its handler."""
        if isinstance(message, SampleRequest):
            return self.handle_sample_request(message)
        if isinstance(message, TopUpRequest):
            return self.handle_top_up_request(message)
        raise TypeError(f"device cannot handle {type(message).__name__}")
