"""Lossy-link models with deterministic loss and latency.

Real IoT radios drop frames; the base station's collection protocol must
survive that.  :class:`Channel` decides, per transmission attempt, whether
a frame is lost (i.i.d. Bernoulli loss) and how long a successful delivery
takes (base latency + exponential jitter, scaled by hop count).
:class:`BurstChannel` replaces the i.i.d. loss with a two-state
Gilbert–Elliott chain -- interference arrives in bursts, which is the
regime where naive retry budgets fail.  All randomness flows from an
injected :class:`numpy.random.Generator` so runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Channel", "BurstChannel", "PERFECT_CHANNEL_SEED"]

#: Conventional seed for a deterministic, loss-free channel in tests.
PERFECT_CHANNEL_SEED = 0


@dataclass
class Channel:
    """Per-attempt loss and latency model.

    Parameters
    ----------
    loss_probability:
        Probability that one transmission attempt over one hop is lost.
        A multi-hop route survives only if every hop succeeds.
    base_latency:
        Deterministic per-hop latency (simulated seconds).
    jitter:
        Mean of the exponential per-hop jitter added on top.
    rng:
        Source of randomness; pass a seeded generator for reproducibility.
    """

    loss_probability: float = 0.0
    base_latency: float = 0.001
    jitter: float = 0.0005
    rng: np.random.Generator = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if self.base_latency < 0 or self.jitter < 0:
            raise ValueError("latencies must be non-negative")
        if self.rng is None:
            self.rng = np.random.default_rng(PERFECT_CHANNEL_SEED)

    def attempt_succeeds(self, hops: int) -> bool:
        """Whether one end-to-end attempt over ``hops`` links survives."""
        if hops <= 0:
            raise ValueError("hops must be positive")
        if self.loss_probability == 0.0:
            return True
        survival = (1.0 - self.loss_probability) ** hops
        return bool(self.rng.random() < survival)

    def sample_latency(self, hops: int) -> float:
        """Latency of one successful end-to-end delivery."""
        if hops <= 0:
            raise ValueError("hops must be positive")
        jitter = float(self.rng.exponential(self.jitter)) if self.jitter > 0 else 0.0
        return hops * self.base_latency + jitter


@dataclass
class BurstChannel(Channel):
    """Gilbert–Elliott bursty loss: a good/bad two-state Markov chain.

    In the *good* state attempts are lost with ``loss_probability`` (the
    inherited field, typically small); in the *bad* state with
    ``bad_loss_probability`` (typically near 1).  State transitions happen
    per attempt: ``p_good_to_bad`` and ``p_bad_to_good`` set the burst
    frequency and mean burst length (``1/p_bad_to_good`` attempts).

    The long-run loss rate is the stationary mixture, but unlike the
    i.i.d. channel, failures cluster -- consecutive retries see correlated
    fates, which is what stresses retry budgets.
    """

    bad_loss_probability: float = 0.9
    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.3

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.bad_loss_probability <= 1.0:
            raise ValueError(
                "bad_loss_probability must be in [0, 1], got "
                f"{self.bad_loss_probability}"
            )
        for name in ("p_good_to_bad", "p_bad_to_good"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        self._in_bad_state = False

    @property
    def in_bad_state(self) -> bool:
        """Whether the chain currently sits in the bursty-loss state."""
        return self._in_bad_state

    def stationary_loss_rate(self, hops: int = 1) -> float:
        """Long-run per-attempt loss rate over ``hops`` links."""
        if hops <= 0:
            raise ValueError("hops must be positive")
        bad_fraction = self.p_good_to_bad / (
            self.p_good_to_bad + self.p_bad_to_good
        )
        good_survive = (1.0 - self.loss_probability) ** hops
        bad_survive = (1.0 - self.bad_loss_probability) ** hops
        survive = (1 - bad_fraction) * good_survive + bad_fraction * bad_survive
        return 1.0 - survive

    def attempt_succeeds(self, hops: int) -> bool:
        """One end-to-end attempt under the current chain state."""
        if hops <= 0:
            raise ValueError("hops must be positive")
        # Advance the chain first (per-attempt transitions).
        if self._in_bad_state:
            if self.rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss = (
            self.bad_loss_probability
            if self._in_bad_state
            else self.loss_probability
        )
        if loss == 0.0:
            return True
        survival = (1.0 - loss) ** hops
        return bool(self.rng.random() < survival)
