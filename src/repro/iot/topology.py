"""Network topologies: the paper's flat model and its tree extension.

Section III-A: "We assume the network is organized in a flat model, in
which each node communicates with the base station directly.  Note that
algorithms on flat models can be easily extended to a general tree model."

Both topologies answer one routing question -- how many hops separate a
node from the base station -- which the cost meter uses to weight bytes.
The base station is always node id ``BASE_STATION_ID``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import DeliveryError

__all__ = ["BASE_STATION_ID", "Topology", "FlatTopology", "TreeTopology"]

#: Reserved node id of the base station in every topology.
BASE_STATION_ID = 0


class Topology:
    """Interface: node membership plus hop counts to the base station."""

    def node_ids(self) -> Sequence[int]:
        """All device ids (excluding the base station)."""
        raise NotImplementedError

    def contains(self, node_id: int) -> bool:
        """Whether ``node_id`` is the base station or a known device."""
        raise NotImplementedError

    def hops(self, src: int, dst: int) -> int:
        """Number of link crossings for a message from ``src`` to ``dst``."""
        raise NotImplementedError


@dataclass
class FlatTopology(Topology):
    """Every device is one hop from the base station (the paper default)."""

    device_ids: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if BASE_STATION_ID in self.device_ids:
            raise ValueError(f"device id {BASE_STATION_ID} is reserved")
        if len(set(self.device_ids)) != len(self.device_ids):
            raise ValueError("device ids must be unique")

    @classmethod
    def with_devices(cls, count: int) -> "FlatTopology":
        """Flat topology over device ids ``1..count``."""
        if count <= 0:
            raise ValueError("count must be positive")
        return cls(device_ids=list(range(1, count + 1)))

    def node_ids(self) -> Sequence[int]:
        return tuple(self.device_ids)

    def contains(self, node_id: int) -> bool:
        return node_id == BASE_STATION_ID or node_id in set(self.device_ids)

    def hops(self, src: int, dst: int) -> int:
        for endpoint in (src, dst):
            if not self.contains(endpoint):
                raise DeliveryError(f"unknown node {endpoint}")
        if src == dst:
            return 0
        if BASE_STATION_ID in (src, dst):
            return 1
        # Device-to-device traffic relays through the base station.
        return 2


@dataclass
class TreeTopology(Topology):
    """An aggregation tree rooted at the base station.

    ``parent`` maps each device id to its parent (another device or the
    base station).  Hop counts are path lengths in the tree; the
    lowest-common-ancestor path covers device-to-device traffic.
    """

    parent: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if BASE_STATION_ID in self.parent:
            raise ValueError("the base station has no parent")
        self._depth: Dict[int, int] = {BASE_STATION_ID: 0}
        for node in self.parent:
            self._resolve_depth(node, set())

    def _resolve_depth(self, node: int, visiting: set) -> int:
        if node in self._depth:
            return self._depth[node]
        if node in visiting:
            raise ValueError(f"cycle in tree topology at node {node}")
        visiting.add(node)
        try:
            parent = self.parent[node]
        except KeyError:
            raise ValueError(f"node {node} is disconnected from the base station")
        depth = self._resolve_depth(parent, visiting) + 1
        self._depth[node] = depth
        return depth

    @classmethod
    def balanced(cls, device_count: int, fanout: int = 2) -> "TreeTopology":
        """A balanced tree over device ids ``1..device_count``.

        The first ``fanout`` devices attach to the base station; device
        ``i`` attaches to device ``ceil(i/fanout) - 1 + 1``-style indexing
        so each internal node has at most ``fanout`` children.
        """
        if device_count <= 0:
            raise ValueError("device_count must be positive")
        if fanout <= 0:
            raise ValueError("fanout must be positive")
        parent: Dict[int, int] = {}
        for i in range(1, device_count + 1):
            if i <= fanout:
                parent[i] = BASE_STATION_ID
            else:
                parent[i] = math.ceil(i / fanout) - 1 if fanout > 1 else i - 1
                # ceil(i/fanout) - 1 can collide with 0 only for i <= fanout,
                # already handled above.
        return cls(parent=parent)

    def node_ids(self) -> Sequence[int]:
        return tuple(self.parent)

    def contains(self, node_id: int) -> bool:
        return node_id == BASE_STATION_ID or node_id in self.parent

    def depth(self, node_id: int) -> int:
        """Tree depth of ``node_id`` (base station is 0)."""
        if not self.contains(node_id):
            raise DeliveryError(f"unknown node {node_id}")
        return self._depth[node_id]

    def _path_to_root(self, node: int) -> List[int]:
        path = [node]
        while path[-1] != BASE_STATION_ID:
            path.append(self.parent[path[-1]])
        return path

    def hops(self, src: int, dst: int) -> int:
        for endpoint in (src, dst):
            if not self.contains(endpoint):
                raise DeliveryError(f"unknown node {endpoint}")
        if src == dst:
            return 0
        src_path = self._path_to_root(src)
        dst_ancestors = {node: i for i, node in enumerate(self._path_to_root(dst))}
        for i, node in enumerate(src_path):
            if node in dst_ancestors:
                return i + dst_ancestors[node]
        raise DeliveryError(f"no path between {src} and {dst}")
