"""Typed messages of the simulated IoT network, with byte-size accounting.

The paper's cost claims are expressed in transmitted samples ("the total
communication overhead ... is √(8k)/α, since this is the expected number of
samples to be transferred") and in heartbeat piggybacking ("a node could
pack the samples into an ordinary heartbeat message").  To measure those
claims, every message type computes its wire size from a simple model:

* ``HEADER_BYTES`` per message (addressing, type tag, sequence number);
* ``VALUE_BYTES`` per float value and ``RANK_BYTES`` per local rank;
* scalar fields cost their natural width.

Messages serialize to plain dicts (:meth:`Message.to_dict`) and back
(:func:`message_from_dict`), which stands in for the wire codec and gives
property tests a round-trip invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Tuple, Type

import numpy as np

__all__ = [
    "HEADER_BYTES",
    "VALUE_BYTES",
    "RANK_BYTES",
    "SCALAR_BYTES",
    "HEARTBEAT_CAPACITY",
    "Message",
    "SampleRequest",
    "TopUpRequest",
    "SampleReport",
    "StreamReport",
    "Heartbeat",
    "Ack",
    "message_from_dict",
]

#: Fixed per-message overhead: addressing, type tag, sequence number.
HEADER_BYTES = 16

#: Bytes per transmitted float value (IEEE-754 double).
VALUE_BYTES = 8

#: Bytes per transmitted local rank (uint32).
RANK_BYTES = 4

#: Bytes per scalar field (rates, counts).
SCALAR_BYTES = 8

#: Samples that fit in an ordinary heartbeat for free.  The paper: if the
#: average per-node sample count is at most 16, nodes "pack the samples into
#: an ordinary heartbeat message ... and no more communication cost is
#: incurred either".
HEARTBEAT_CAPACITY = 16


@dataclass(frozen=True)
class Message:
    """Base class of all simulated messages."""

    sender: int
    receiver: int

    def payload_bytes(self) -> int:
        """Wire size of the message body, excluding the fixed header."""
        return 0

    def size_bytes(self) -> int:
        """Total wire size: header plus payload."""
        return HEADER_BYTES + self.payload_bytes()

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dict (the simulated wire format)."""
        out: Dict[str, Any] = {"type": type(self).__name__}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, np.ndarray):
                value = value.tolist()
            elif isinstance(value, tuple):
                value = [
                    list(item) if isinstance(item, tuple) else item
                    for item in value
                ]
            out[f.name] = value
        return out


@dataclass(frozen=True)
class SampleRequest(Message):
    """Base station asks a node to draw a fresh Bernoulli(p) sample."""

    p: float = 0.0

    def payload_bytes(self) -> int:
        return SCALAR_BYTES


@dataclass(frozen=True)
class TopUpRequest(Message):
    """Base station asks a node to extend its sample from ``old_p`` to ``new_p``.

    Sent when existing samples cannot satisfy a query's accuracy (paper,
    Section III-A: "more samples should be drawn and their ranks are also
    transferred").
    """

    old_p: float = 0.0
    new_p: float = 0.0

    def payload_bytes(self) -> int:
        return 2 * SCALAR_BYTES


@dataclass(frozen=True)
class SampleReport(Message):
    """A node's sample shipment: parallel ``(value, rank)`` tuples plus ``n_i``."""

    values: Tuple[float, ...] = ()
    ranks: Tuple[int, ...] = ()
    node_size: int = 0
    p: float = 0.0

    def __post_init__(self) -> None:
        if len(self.values) != len(self.ranks):
            raise ValueError("values and ranks must be parallel")
        if self.node_size < 0:
            raise ValueError("node_size must be non-negative")

    @property
    def sample_count(self) -> int:
        """Number of ``(value, rank)`` pairs carried."""
        return len(self.values)

    def payload_bytes(self) -> int:
        return (
            self.sample_count * (VALUE_BYTES + RANK_BYTES)
            + 2 * SCALAR_BYTES  # node_size and p
        )


@dataclass(frozen=True)
class StreamReport(Message):
    """A streaming device's epoch shipment: one sealed epoch's sample.

    Identical wire shape to :class:`SampleReport` plus the ``epoch`` index
    the sample belongs to, so per-shard ingestors can bucket shipments
    into the right window ring slot and reject stale epochs at the edge.
    """

    values: Tuple[float, ...] = ()
    ranks: Tuple[int, ...] = ()
    node_size: int = 0
    p: float = 0.0
    epoch: int = 0

    def __post_init__(self) -> None:
        if len(self.values) != len(self.ranks):
            raise ValueError("values and ranks must be parallel")
        if self.node_size < 0:
            raise ValueError("node_size must be non-negative")

    @property
    def sample_count(self) -> int:
        """Number of ``(value, rank)`` pairs carried."""
        return len(self.values)

    def payload_bytes(self) -> int:
        return (
            self.sample_count * (VALUE_BYTES + RANK_BYTES)
            + 3 * SCALAR_BYTES  # node_size, p, and the epoch index
        )


@dataclass(frozen=True)
class Heartbeat(Message):
    """Periodic liveness beacon that can piggyback a few samples for free.

    Up to :data:`HEARTBEAT_CAPACITY` sample pairs ride along at zero
    *marginal* cost; the heartbeat itself is sent regardless, so its
    payload counts only the beacon body.
    """

    values: Tuple[float, ...] = ()
    ranks: Tuple[int, ...] = ()
    node_size: int = 0
    p: float = 0.0

    def __post_init__(self) -> None:
        if len(self.values) != len(self.ranks):
            raise ValueError("values and ranks must be parallel")
        if len(self.values) > HEARTBEAT_CAPACITY:
            raise ValueError(
                f"heartbeat can piggyback at most {HEARTBEAT_CAPACITY} samples"
            )

    @property
    def sample_count(self) -> int:
        """Number of piggybacked sample pairs."""
        return len(self.values)

    def payload_bytes(self) -> int:
        # The beacon body (status word); piggybacked samples are free.
        return SCALAR_BYTES


@dataclass(frozen=True)
class Ack(Message):
    """Acknowledgement of a received report."""

    acked_type: str = ""

    def payload_bytes(self) -> int:
        return len(self.acked_type.encode("utf-8"))


@dataclass(frozen=True)
class AggregatedReport(Message):
    """A bundle of per-node sample reports relayed up an aggregation tree.

    The paper notes its flat-model algorithms "can be easily extended to a
    general tree model"; in that extension an interior node merges its own
    shipment with its children's into one uplink message, saving per-message
    header overhead on every relay hop.  ``origins``, ``values``, ``ranks``
    and ``node_sizes`` are parallel per-origin tuples (each origin
    contributes one ``(values, ranks, n_i)`` triple).
    """

    origins: Tuple[int, ...] = ()
    values: Tuple[Tuple[float, ...], ...] = ()
    ranks: Tuple[Tuple[int, ...], ...] = ()
    node_sizes: Tuple[int, ...] = ()
    p: float = 0.0

    def __post_init__(self) -> None:
        lengths = {
            len(self.origins),
            len(self.values),
            len(self.ranks),
            len(self.node_sizes),
        }
        if len(lengths) != 1:
            raise ValueError("per-origin tuples must be parallel")
        for vals, rks in zip(self.values, self.ranks):
            if len(vals) != len(rks):
                raise ValueError("values and ranks must be parallel per origin")

    @property
    def origin_count(self) -> int:
        """How many nodes' shipments this bundle carries."""
        return len(self.origins)

    @property
    def sample_count(self) -> int:
        """Total ``(value, rank)`` pairs across all bundled origins."""
        return sum(len(vals) for vals in self.values)

    def payload_bytes(self) -> int:
        # Per origin: node id + node size + its pairs.  One shared header.
        per_origin = sum(
            2 * SCALAR_BYTES + len(vals) * (VALUE_BYTES + RANK_BYTES)
            for vals in self.values
        )
        return per_origin + SCALAR_BYTES  # plus the shared rate field


_MESSAGE_TYPES: Dict[str, Type[Message]] = {
    cls.__name__: cls
    for cls in (
        SampleRequest,
        TopUpRequest,
        SampleReport,
        StreamReport,
        Heartbeat,
        Ack,
        AggregatedReport,
    )
}


def message_from_dict(data: Dict[str, Any]) -> Message:
    """Deserialize a message from its :meth:`Message.to_dict` form."""
    try:
        type_name = data["type"]
    except KeyError:
        raise ValueError("message dict missing 'type'") from None
    try:
        cls = _MESSAGE_TYPES[type_name]
    except KeyError:
        raise ValueError(f"unknown message type {type_name!r}") from None
    kwargs = {k: v for k, v in data.items() if k != "type"}
    for key in ("values", "ranks", "origins", "node_sizes"):
        if key in kwargs:
            kwargs[key] = tuple(
                tuple(item) if isinstance(item, (list, tuple)) else item
                for item in kwargs[key]
            )
    return cls(**kwargs)
