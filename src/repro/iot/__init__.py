"""IoT network substrate: devices, base station, transport, cost metering.

Models the paper's system layer (Section II-A and the communication-cost
discussion of Section III-A): ``k`` smart devices Bernoulli-sample their
local data and ship ``(value, rank)`` pairs to a base station over a flat
(or tree) topology; every message is metered so experiments can verify the
paper's overhead claims (√(8k)/α expected samples, 16-pair heartbeat
packing).
"""

from repro.iot.aggregation import TreeCollector
from repro.iot.base_station import BaseStation
from repro.iot.channel import BurstChannel, Channel
from repro.iot.cost import CommunicationMeter, LinkStats
from repro.iot.device import SmartDevice
from repro.iot.energy import DeviceBattery, EnergyModel
from repro.iot.heartbeat import HeartbeatService
from repro.iot.messages import (
    HEARTBEAT_CAPACITY,
    Ack,
    AggregatedReport,
    Heartbeat,
    Message,
    SampleReport,
    SampleRequest,
    StreamReport,
    TopUpRequest,
    message_from_dict,
)
from repro.iot.network import DeliveryRecord, Network
from repro.iot.runtime import EventScheduler, SimulationClock
from repro.iot.topology import (
    BASE_STATION_ID,
    FlatTopology,
    Topology,
    TreeTopology,
)

__all__ = [
    "TreeCollector",
    "AggregatedReport",
    "BaseStation",
    "Channel",
    "BurstChannel",
    "CommunicationMeter",
    "LinkStats",
    "SmartDevice",
    "DeviceBattery",
    "EnergyModel",
    "HeartbeatService",
    "HEARTBEAT_CAPACITY",
    "Ack",
    "Heartbeat",
    "Message",
    "SampleReport",
    "SampleRequest",
    "StreamReport",
    "TopUpRequest",
    "message_from_dict",
    "DeliveryRecord",
    "Network",
    "EventScheduler",
    "SimulationClock",
    "BASE_STATION_ID",
    "FlatTopology",
    "Topology",
    "TreeTopology",
]
