"""General synthetic value generators for stress tests and property tests.

The estimators in :mod:`repro.estimators` are distribution-free -- their
unbiasedness and variance bounds hold for any fixed multiset of values.  The
test suite and ablation benches therefore exercise them against a spread of
value distributions: uniform, Gaussian, Zipf-like heavy-tailed, and clustered
(multi-modal) data, all produced deterministically from an explicit seed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "uniform_values",
    "gaussian_values",
    "zipf_values",
    "clustered_values",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_values(
    count: int,
    low: float = 0.0,
    high: float = 1.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Draw ``count`` values uniformly from ``[low, high)``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if high < low:
        raise ValueError("high must be >= low")
    return _rng(seed).uniform(low, high, size=count)


def gaussian_values(
    count: int,
    mean: float = 0.0,
    sigma: float = 1.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Draw ``count`` values from ``N(mean, sigma^2)``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    return _rng(seed).normal(mean, sigma, size=count)


def zipf_values(
    count: int,
    exponent: float = 2.0,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Draw ``count`` heavy-tailed values from a Zipf law, scaled to floats.

    Zipf data models skewed sensor readings (long quiet periods punctuated
    by spikes); many duplicates appear, which stresses the rank-based
    tie-handling of the RankCounting estimator.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1 for a proper Zipf law")
    draws = _rng(seed).zipf(exponent, size=count).astype(np.float64)
    return draws * scale


def clustered_values(
    count: int,
    centers: Sequence[float] = (10.0, 50.0, 90.0),
    spread: float = 2.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Draw values from a balanced Gaussian mixture around ``centers``.

    Multi-modal data creates empty value bands, which exercises the
    estimator cases where a query range contains no data or where boundary
    predecessors/successors are far from the range edges.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not centers:
        raise ValueError("centers must be non-empty")
    if spread < 0:
        raise ValueError("spread must be non-negative")
    rng = _rng(seed)
    assignments = rng.integers(0, len(centers), size=count)
    offsets = rng.normal(0.0, spread, size=count)
    centers_arr = np.asarray(centers, dtype=np.float64)
    return centers_arr[assignments] + offsets
