"""Record streams and windowing for long-running / continuous queries.

The paper notes that collected samples are reused to answer future queries
("one sample, multiple queries") and that the base station tops up samples
when accuracy demands grow.  These helpers model the arrival side: a
:class:`RecordStream` replays a value column in timestamp order in batches,
and :func:`sliding_windows` derives per-window sub-datasets so examples and
tests can drive the broker with evolving data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["RecordStream", "sliding_windows"]


@dataclass
class RecordStream:
    """Replays a value vector in order, in fixed-size batches.

    Parameters
    ----------
    values:
        The full value column to replay.
    batch_size:
        Records delivered per :meth:`next_batch` call.
    """

    values: np.ndarray
    batch_size: int = 288  # one day of five-minute records

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._cursor = 0

    @property
    def position(self) -> int:
        """Number of records already delivered."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """Whether every record has been delivered."""
        return self._cursor >= len(self.values)

    def next_batch(self) -> np.ndarray:
        """Return the next batch (possibly short; empty when exhausted)."""
        batch = self.values[self._cursor : self._cursor + self.batch_size]
        self._cursor += len(batch)
        return batch

    def batches(self) -> Iterator[np.ndarray]:
        """Iterate over all remaining batches."""
        while not self.exhausted:
            yield self.next_batch()

    def reset(self) -> None:
        """Rewind the stream to the beginning."""
        self._cursor = 0


def sliding_windows(
    values: np.ndarray,
    window: int,
    step: Optional[int] = None,
) -> List[np.ndarray]:
    """Split ``values`` into (possibly overlapping) sliding windows.

    Parameters
    ----------
    values:
        The full value column.
    window:
        Window length in records.
    step:
        Stride between window starts; defaults to ``window`` (tumbling).

    Returns
    -------
    list of numpy.ndarray
        One array per window.  The final window may be shorter than
        ``window`` when the data does not divide evenly.
    """
    values = np.asarray(values, dtype=np.float64)
    if window <= 0:
        raise ValueError("window must be positive")
    if step is None:
        step = window
    if step <= 0:
        raise ValueError("step must be positive")
    windows: List[np.ndarray] = []
    for start in range(0, max(len(values), 1), step):
        chunk = values[start : start + window]
        if len(chunk) == 0:
            break
        windows.append(chunk.copy())
        if start + window >= len(values):
            break
    return windows
