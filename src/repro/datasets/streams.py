"""Record streams and windowing for long-running / continuous queries.

The paper notes that collected samples are reused to answer future queries
("one sample, multiple queries") and that the base station tops up samples
when accuracy demands grow.  These helpers model the arrival side: a
:class:`RecordStream` replays a value column in timestamp order in batches,
and :func:`sliding_windows` derives per-window sub-datasets so examples and
tests can drive the broker with evolving data.

**Window semantics.**  Every window in this module is half-open:

* positional windows cover the index interval ``[start, start + window)``;
* time windows and epochs cover the timestamp interval
  ``[t0, t0 + length)`` -- a record stamped exactly at a boundary belongs
  to the *next* window, never to both.

That convention is what makes epoch bucketing in :mod:`repro.streaming`
unambiguous: each record lives in exactly one epoch, so per-epoch privacy
ledgers never double-charge a record's ε.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "RecordStream",
    "TimedBatch",
    "epoch_of",
    "epoch_slices",
    "sliding_windows",
    "sliding_time_windows",
]


@dataclass(frozen=True)
class TimedBatch:
    """One delivered batch: parallel values and (non-decreasing) timestamps."""

    values: np.ndarray
    timestamps: np.ndarray

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class RecordStream:
    """Replays a value vector in order, in fixed-size batches.

    Parameters
    ----------
    values:
        The full value column to replay.
    batch_size:
        Records delivered per :meth:`next_batch` call.
    timestamps:
        Optional per-record arrival times, parallel to ``values`` and
        non-decreasing.  When omitted, each record's timestamp is its
        position (``0, 1, 2, ...``), which keeps purely positional callers
        unchanged while letting windowed consumers bucket by time.
    """

    values: np.ndarray
    batch_size: int = 288  # one day of five-minute records
    timestamps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.timestamps is None:
            self.timestamps = np.arange(len(self.values), dtype=np.float64)
        else:
            self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
            if len(self.timestamps) != len(self.values):
                raise ValueError(
                    f"{len(self.timestamps)} timestamps for "
                    f"{len(self.values)} values; they must be parallel"
                )
            if len(self.timestamps) and not np.all(
                np.isfinite(self.timestamps)
            ):
                raise ValueError("timestamps must be finite")
            if np.any(np.diff(self.timestamps) < 0):
                raise ValueError("timestamps must be non-decreasing")
        self._cursor = 0

    @property
    def position(self) -> int:
        """Number of records already delivered."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """Whether every record has been delivered."""
        return self._cursor >= len(self.values)

    def next_batch(self) -> np.ndarray:
        """Return the next batch (possibly short; empty when exhausted)."""
        batch = self.values[self._cursor : self._cursor + self.batch_size]
        self._cursor += len(batch)
        return batch

    def next_timed_batch(self) -> TimedBatch:
        """Return the next batch with its timestamps attached."""
        start = self._cursor
        values = self.next_batch()
        return TimedBatch(
            values=values,
            timestamps=self.timestamps[start : start + len(values)],
        )

    def batches(self) -> Iterator[np.ndarray]:
        """Iterate over all remaining batches."""
        while not self.exhausted:
            yield self.next_batch()

    def timed_batches(self) -> Iterator[TimedBatch]:
        """Iterate over all remaining batches with timestamps."""
        while not self.exhausted:
            yield self.next_timed_batch()

    def reset(self) -> None:
        """Rewind the stream to the beginning."""
        self._cursor = 0


def epoch_of(timestamp: float, epoch_length: float, origin: float = 0.0) -> int:
    """The epoch index owning ``timestamp``.

    Epoch ``e`` covers the half-open interval
    ``[origin + e·epoch_length, origin + (e + 1)·epoch_length)``, so a
    record stamped exactly on a boundary belongs to the later epoch.
    """
    if epoch_length <= 0:
        raise ValueError("epoch_length must be positive")
    return int(np.floor((timestamp - origin) / epoch_length))


def epoch_slices(
    timestamps: np.ndarray,
    epoch_length: float,
    origin: float = 0.0,
) -> List[Tuple[int, slice]]:
    """Bucket sorted ``timestamps`` into half-open epochs.

    Returns ``(epoch_index, slice)`` pairs, oldest epoch first; empty
    epochs between occupied ones are not emitted.  Requires the timestamps
    to be non-decreasing (as a :class:`RecordStream` guarantees).
    """
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if epoch_length <= 0:
        raise ValueError("epoch_length must be positive")
    if len(timestamps) == 0:
        return []
    if np.any(np.diff(timestamps) < 0):
        raise ValueError("timestamps must be non-decreasing")
    epochs = np.floor((timestamps - origin) / epoch_length).astype(np.int64)
    out: List[Tuple[int, slice]] = []
    start = 0
    for i in range(1, len(epochs) + 1):
        if i == len(epochs) or epochs[i] != epochs[start]:
            out.append((int(epochs[start]), slice(start, i)))
            start = i
    return out


def sliding_windows(
    values: np.ndarray,
    window: int,
    step: Optional[int] = None,
) -> List[np.ndarray]:
    """Split ``values`` into (possibly overlapping) sliding windows.

    Window ``i`` covers the **half-open** index interval
    ``[i·step, i·step + window)``: the element at index ``i·step + window``
    is the first element *outside* window ``i``.  Iteration stops with the
    first window that reaches the end of the data, so a tumbling split's
    final window may be short and an overlapping split never emits a
    trailing partial window that a longer stream would have completed.

    Parameters
    ----------
    values:
        The full value column.
    window:
        Window length in records.
    step:
        Stride between window starts; defaults to ``window`` (tumbling).

    Returns
    -------
    list of numpy.ndarray
        One array per window.  The final window may be shorter than
        ``window`` when the data does not divide evenly.
    """
    values = np.asarray(values, dtype=np.float64)
    if window <= 0:
        raise ValueError("window must be positive")
    if step is None:
        step = window
    if step <= 0:
        raise ValueError("step must be positive")
    windows: List[np.ndarray] = []
    for start in range(0, max(len(values), 1), step):
        chunk = values[start : start + window]
        if len(chunk) == 0:
            break
        windows.append(chunk.copy())
        if start + window >= len(values):
            break
    return windows


def sliding_time_windows(
    values: np.ndarray,
    timestamps: np.ndarray,
    window: float,
    step: Optional[float] = None,
    origin: Optional[float] = None,
) -> List[np.ndarray]:
    """Split timestamped ``values`` into half-open sliding *time* windows.

    Window ``i`` holds the records whose timestamps fall in
    ``[origin + i·step, origin + i·step + window)`` -- a record stamped
    exactly at a window's end boundary belongs to the next window only.
    ``origin`` defaults to the first timestamp.  Windows advance until the
    last record has been covered; empty interior windows are kept (as empty
    arrays) so positions stay aligned with wall-clock epochs.
    """
    values = np.asarray(values, dtype=np.float64)
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if len(values) != len(timestamps):
        raise ValueError("values and timestamps must be parallel")
    if window <= 0:
        raise ValueError("window must be positive")
    if step is None:
        step = window
    if step <= 0:
        raise ValueError("step must be positive")
    if len(values) == 0:
        return []
    if np.any(np.diff(timestamps) < 0):
        raise ValueError("timestamps must be non-decreasing")
    if origin is None:
        origin = float(timestamps[0])
    last = float(timestamps[-1])
    windows: List[np.ndarray] = []
    start = origin
    while True:
        lo = int(np.searchsorted(timestamps, start, side="left"))
        hi = int(np.searchsorted(timestamps, start + window, side="left"))
        windows.append(values[lo:hi].copy())
        if start + window > last:
            break
        start += step
    return windows
