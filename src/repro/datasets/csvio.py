"""CSV interchange for pollution datasets.

The genuine CityPulse pollution dumps ship as CSV; this module lets a user
with the real files drop them straight into the pipeline (and lets the
surrogate be exported for inspection in a spreadsheet).  The expected
schema is one header row ``timestamp,ozone,particulate_matter,
carbon_monoxide,sulfur_dioxide,nitrogen_dioxide`` followed by ISO-8601
timestamps and float readings -- the layout of the 2014 dumps modulo
column naming, which the loader normalizes case-insensitively.
"""

from __future__ import annotations

import csv
import pathlib
from datetime import datetime
from typing import Dict, List, Union

import numpy as np

from repro.datasets.citypulse import AIR_QUALITY_INDEXES, CityPulseDataset

__all__ = ["save_csv", "load_csv"]

PathLike = Union[str, pathlib.Path]

_TIMESTAMP_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
    "%Y/%m/%d %H:%M",
    "%Y-%m-%d %H:%M",
)


def _parse_timestamp(text: str) -> datetime:
    for fmt in _TIMESTAMP_FORMATS:
        try:
            return datetime.strptime(text, fmt)
        except ValueError:
            continue
    raise ValueError(f"unrecognized timestamp {text!r}")


def save_csv(path: PathLike, data: CityPulseDataset) -> None:
    """Write a dataset as a CityPulse-style CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", *AIR_QUALITY_INDEXES])
        columns = [data.values(name) for name in AIR_QUALITY_INDEXES]
        for i, ts in enumerate(data.timestamps):
            writer.writerow(
                [ts.strftime("%Y-%m-%d %H:%M:%S")]
                + [f"{col[i]:.6f}" for col in columns]
            )


def load_csv(path: PathLike) -> CityPulseDataset:
    """Load a CityPulse-style CSV into a :class:`CityPulseDataset`.

    Header names are matched case-insensitively with spaces/dashes treated
    as underscores; all five air-quality columns must be present.  Rows
    with unparseable numbers raise (garbage in a paid data product should
    fail loudly, not silently skew counts).
    """
    timestamps: List[datetime] = []
    columns: Dict[str, List[float]] = {name: [] for name in AIR_QUALITY_INDEXES}
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV") from None
        normalized = [
            cell.strip().lower().replace(" ", "_").replace("-", "_")
            for cell in header
        ]
        try:
            ts_idx = normalized.index("timestamp")
        except ValueError:
            raise ValueError(f"{path}: missing 'timestamp' column") from None
        index_positions = {}
        for name in AIR_QUALITY_INDEXES:
            try:
                index_positions[name] = normalized.index(name)
            except ValueError:
                raise ValueError(f"{path}: missing column {name!r}") from None
        for line_number, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue  # blank trailing lines are tolerated
            try:
                timestamps.append(_parse_timestamp(row[ts_idx].strip()))
                for name, pos in index_positions.items():
                    columns[name].append(float(row[pos]))
            except (ValueError, IndexError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed row ({exc})"
                ) from None
    return CityPulseDataset(
        timestamps=np.array(timestamps, dtype=object),
        columns={
            name: np.asarray(values, dtype=np.float64)
            for name, values in columns.items()
        },
    )
