"""Partitioning a global dataset over ``k`` IoT devices.

The paper's system model stores data distributed across ``k`` nodes; the
RankCounting estimator sums per-node estimates, so its accuracy depends on
*how* data is spread.  Four strategies are provided:

* :func:`partition_even` -- contiguous equal-size shards (the common bench
  default; mimics per-sensor time windows).
* :func:`partition_round_robin` -- record ``i`` goes to node ``i mod k``
  (interleaved collection).
* :func:`partition_dirichlet` -- skewed shard sizes drawn from a Dirichlet
  prior (heterogeneous devices).
* :func:`partition_range_sharded` -- nodes own contiguous *value* ranges
  (geographically clustered sensors reading similar levels), the adversarial
  case for boundary-sensitive estimators.

Every strategy returns a list of ``k`` numpy arrays whose concatenation is a
permutation of the input, so exact global counts are preserved.

Range-sharded partitions additionally expose *band metadata*: the closed
value interval ``[low, high]`` each node's data lives in.  Bands are a
by-product of the sorted split boundaries -- public partitioning metadata,
not a per-record disclosure -- and are what lets the cluster query planner
prune shards whose band cannot intersect a query range
(:class:`ShardBand` / :class:`ShardBounds`).  The other strategies spread
values arbitrarily, so their bounds degrade to the full domain and every
shard stays a candidate for every query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ShardBand",
    "ShardBounds",
    "partition_even",
    "partition_round_robin",
    "partition_dirichlet",
    "partition_range_sharded",
    "range_sharded_bounds",
]


@dataclass(frozen=True)
class ShardBand:
    """Closed value interval ``[low, high]`` a shard's data is known to
    occupy.

    Two sentinel shapes matter to the planner:

    * the **full domain** ``[-inf, +inf]`` -- "no knowledge": the band
      intersects every query and is contained in none, so routing always
      degrades to the broadcast scatter;
    * the **empty band** (``low > high``, canonically ``[+inf, -inf]``) --
      a shard holding zero records: it intersects nothing and is always
      prunable.

    Intersection and containment use *closed* interval semantics to match
    the estimators' inclusive ``low <= value <= high`` range counting: a
    band whose edge equals a query bound still holds in-range values and
    must not be pruned.
    """

    low: float
    high: float

    @classmethod
    def full_domain(cls) -> "ShardBand":
        """The degenerate "could hold anything" band."""
        return cls(low=-math.inf, high=math.inf)

    @classmethod
    def empty(cls) -> "ShardBand":
        """The band of a shard holding zero records."""
        return cls(low=math.inf, high=-math.inf)

    @classmethod
    def of(cls, values: np.ndarray) -> "ShardBand":
        """Tight band of one node's values (empty array -> empty band)."""
        if len(values) == 0:
            return cls.empty()
        return cls(low=float(np.min(values)), high=float(np.max(values)))

    @property
    def is_empty(self) -> bool:
        return self.low > self.high

    @property
    def is_full_domain(self) -> bool:
        return math.isinf(self.low) and self.low < 0 and math.isinf(self.high) and self.high > 0

    def intersects(self, low: float, high: float) -> bool:
        """Whether any value in the band can fall in ``[low, high]``."""
        if self.is_empty:
            return False
        return self.high >= low and self.low <= high

    def contained_in(self, low: float, high: float) -> bool:
        """Whether every value in the band falls in ``[low, high]``.

        An empty band is reported as *not* contained so planners classify
        empty shards as prunable rather than exactly-covered; both
        contribute zero, but pruning skips the RPC entirely.
        """
        if self.is_empty:
            return False
        return low <= self.low and self.high <= high

    def union(self, other: "ShardBand") -> "ShardBand":
        """Smallest band covering both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return ShardBand(low=min(self.low, other.low), high=max(self.high, other.high))


@dataclass(frozen=True)
class ShardBounds:
    """Per-node band metadata for one partition of a value column.

    ``bands[i]`` bounds node ``i``'s values.  :meth:`from_parts` computes
    tight bands (what :func:`partition_range_sharded` yields);
    :meth:`full_domain` is the degradation for strategies whose nodes hold
    arbitrary value mixes, keeping the planner sound but unable to prune.
    """

    bands: Tuple[ShardBand, ...]

    @classmethod
    def from_parts(cls, parts: Sequence[np.ndarray]) -> "ShardBounds":
        """Tight per-node bands of an explicit partition."""
        return cls(bands=tuple(ShardBand.of(part) for part in parts))

    @classmethod
    def full_domain(cls, k: int) -> "ShardBounds":
        """``k`` full-domain bands: sound for any partition, prunes nothing."""
        if k <= 0:
            raise ValueError("k must be a positive integer")
        return cls(bands=tuple(ShardBand.full_domain() for _ in range(k)))

    def __len__(self) -> int:
        return len(self.bands)

    def merged(self, indices: Sequence[int]) -> ShardBand:
        """Union band of a node subset (a shard's contiguous device block)."""
        band = ShardBand.empty()
        for i in indices:
            band = band.union(self.bands[i])
        return band


def _check_k(values: np.ndarray, k: int) -> None:
    if k <= 0:
        raise ValueError("k must be a positive integer")
    if values.ndim != 1:
        raise ValueError("values must be a one-dimensional array")


def partition_even(values: np.ndarray, k: int) -> List[np.ndarray]:
    """Split ``values`` into ``k`` contiguous shards of near-equal size."""
    values = np.asarray(values, dtype=np.float64)
    _check_k(values, k)
    return [np.array(chunk, dtype=np.float64) for chunk in np.array_split(values, k)]


def partition_round_robin(values: np.ndarray, k: int) -> List[np.ndarray]:
    """Assign record ``i`` to node ``i mod k``."""
    values = np.asarray(values, dtype=np.float64)
    _check_k(values, k)
    return [values[i::k].copy() for i in range(k)]


def partition_dirichlet(
    values: np.ndarray,
    k: int,
    concentration: float = 1.0,
    seed: Optional[int] = None,
) -> List[np.ndarray]:
    """Split ``values`` into ``k`` shards with Dirichlet-distributed sizes.

    ``concentration`` < 1 yields very skewed shards (a few devices hold most
    data); large concentrations approach the even split.  Some shards may be
    empty, which is a legitimate state the estimators must handle.
    """
    values = np.asarray(values, dtype=np.float64)
    _check_k(values, k)
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.full(k, concentration))
    counts = np.floor(weights * len(values)).astype(int)
    # Distribute the rounding remainder to the largest shards first.
    remainder = len(values) - int(counts.sum())
    for idx in np.argsort(-weights)[:remainder]:
        counts[idx] += 1
    shards: List[np.ndarray] = []
    start = 0
    for c in counts:
        shards.append(values[start : start + c].copy())
        start += c
    return shards


def partition_range_sharded(
    values: np.ndarray, k: int, with_bounds: bool = False
) -> "List[np.ndarray] | Tuple[List[np.ndarray], ShardBounds]":
    """Sort ``values`` and give each node one contiguous value band.

    This concentrates each node's data in a narrow interval; range queries
    then either contain almost all of a node's data or almost none, which is
    the worst case for boundary-gap estimation -- and the *best* case for
    the cluster query planner, which can prune whole shards by band.

    With ``with_bounds=True`` the tight per-node :class:`ShardBounds` are
    returned alongside the partition.  Duplicate values may straddle a
    split boundary (``np.array_split`` cuts by position, not value), so
    neighbouring bands can share an edge value; the closed-interval band
    semantics keep routing correct in that case.
    """
    values = np.asarray(values, dtype=np.float64)
    _check_k(values, k)
    ordered = np.sort(values)
    parts = [np.array(chunk, dtype=np.float64) for chunk in np.array_split(ordered, k)]
    if with_bounds:
        return parts, ShardBounds.from_parts(parts)
    return parts


def range_sharded_bounds(values: np.ndarray, k: int) -> ShardBounds:
    """Just the band metadata a range-sharded partition would produce."""
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    _check_k(ordered, k)
    return ShardBounds.from_parts(np.array_split(ordered, k))
