"""Partitioning a global dataset over ``k`` IoT devices.

The paper's system model stores data distributed across ``k`` nodes; the
RankCounting estimator sums per-node estimates, so its accuracy depends on
*how* data is spread.  Four strategies are provided:

* :func:`partition_even` -- contiguous equal-size shards (the common bench
  default; mimics per-sensor time windows).
* :func:`partition_round_robin` -- record ``i`` goes to node ``i mod k``
  (interleaved collection).
* :func:`partition_dirichlet` -- skewed shard sizes drawn from a Dirichlet
  prior (heterogeneous devices).
* :func:`partition_range_sharded` -- nodes own contiguous *value* ranges
  (geographically clustered sensors reading similar levels), the adversarial
  case for boundary-sensitive estimators.

Every strategy returns a list of ``k`` numpy arrays whose concatenation is a
permutation of the input, so exact global counts are preserved.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = [
    "partition_even",
    "partition_round_robin",
    "partition_dirichlet",
    "partition_range_sharded",
]


def _check_k(values: np.ndarray, k: int) -> None:
    if k <= 0:
        raise ValueError("k must be a positive integer")
    if values.ndim != 1:
        raise ValueError("values must be a one-dimensional array")


def partition_even(values: np.ndarray, k: int) -> List[np.ndarray]:
    """Split ``values`` into ``k`` contiguous shards of near-equal size."""
    values = np.asarray(values, dtype=np.float64)
    _check_k(values, k)
    return [np.array(chunk, dtype=np.float64) for chunk in np.array_split(values, k)]


def partition_round_robin(values: np.ndarray, k: int) -> List[np.ndarray]:
    """Assign record ``i`` to node ``i mod k``."""
    values = np.asarray(values, dtype=np.float64)
    _check_k(values, k)
    return [values[i::k].copy() for i in range(k)]


def partition_dirichlet(
    values: np.ndarray,
    k: int,
    concentration: float = 1.0,
    seed: Optional[int] = None,
) -> List[np.ndarray]:
    """Split ``values`` into ``k`` shards with Dirichlet-distributed sizes.

    ``concentration`` < 1 yields very skewed shards (a few devices hold most
    data); large concentrations approach the even split.  Some shards may be
    empty, which is a legitimate state the estimators must handle.
    """
    values = np.asarray(values, dtype=np.float64)
    _check_k(values, k)
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.full(k, concentration))
    counts = np.floor(weights * len(values)).astype(int)
    # Distribute the rounding remainder to the largest shards first.
    remainder = len(values) - int(counts.sum())
    for idx in np.argsort(-weights)[:remainder]:
        counts[idx] += 1
    shards: List[np.ndarray] = []
    start = 0
    for c in counts:
        shards.append(values[start : start + c].copy())
        start += c
    return shards


def partition_range_sharded(values: np.ndarray, k: int) -> List[np.ndarray]:
    """Sort ``values`` and give each node one contiguous value band.

    This concentrates each node's data in a narrow interval; range queries
    then either contain almost all of a node's data or almost none, which is
    the worst case for boundary-gap estimation.
    """
    values = np.asarray(values, dtype=np.float64)
    _check_k(values, k)
    ordered = np.sort(values)
    return [np.array(chunk, dtype=np.float64) for chunk in np.array_split(ordered, k)]
