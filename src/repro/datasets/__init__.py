"""Dataset substrates: CityPulse surrogate, synthetic generators, partitioning.

The paper evaluates on the 2014 CityPulse Smart City pollution dataset
(17 568 records, five air-quality indexes).  The public endpoint is not
reachable offline, so :mod:`repro.datasets.citypulse` generates a seeded,
statistically faithful surrogate with the same shape and schema.  General
synthetic value generators and node-partitioning strategies live alongside
it so that every experiment and test can build reproducible workloads.
"""

from repro.datasets.citypulse import (
    AIR_QUALITY_INDEXES,
    CityPulseDataset,
    PollutionRecord,
    generate_citypulse,
)
from repro.datasets.csvio import load_csv, save_csv
from repro.datasets.partition import (
    partition_even,
    partition_dirichlet,
    partition_range_sharded,
    partition_round_robin,
)
from repro.datasets.streams import (
    RecordStream,
    TimedBatch,
    epoch_of,
    epoch_slices,
    sliding_time_windows,
    sliding_windows,
)
from repro.datasets.synthetic import (
    clustered_values,
    gaussian_values,
    uniform_values,
    zipf_values,
)

__all__ = [
    "AIR_QUALITY_INDEXES",
    "CityPulseDataset",
    "PollutionRecord",
    "generate_citypulse",
    "load_csv",
    "save_csv",
    "partition_even",
    "partition_dirichlet",
    "partition_range_sharded",
    "partition_round_robin",
    "RecordStream",
    "TimedBatch",
    "epoch_of",
    "epoch_slices",
    "sliding_time_windows",
    "sliding_windows",
    "uniform_values",
    "gaussian_values",
    "zipf_values",
    "clustered_values",
]
