"""Synthetic surrogate for the 2014 CityPulse Smart City pollution dataset.

The paper's evaluation (Section V) uses the pollution records of the
CityPulse Smart City Datasets: 17 568 records collected every five minutes
from 2014-08-01 00:05 to 2014-10-01 00:00, each carrying five air-quality
indexes -- *ozone*, *particulate matter*, *carbon monoxide*, *sulfur
dioxide* and *nitrogen dioxide*.

The live endpoint is unavailable offline, so this module generates a seeded
surrogate with the identical shape and schema.  Each index is produced by a
mean-reverting AR(1) process with a diurnal (24-hour) cycle and a slow
seasonal drift, then clipped to the plausible value range of the real feed.
Every algorithm in this library consumes only the finite multiset of scalar
values per index, so any fixed dataset exercises the same code paths; the
surrogate keeps the record count, cadence, and value ranges of the original
so that figure shapes are comparable (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = [
    "AIR_QUALITY_INDEXES",
    "RECORD_COUNT",
    "START_TIMESTAMP",
    "CADENCE",
    "PollutionRecord",
    "CityPulseDataset",
    "generate_citypulse",
]

#: The five air-quality indexes carried by every CityPulse pollution record,
#: in the order the paper lists them.
AIR_QUALITY_INDEXES: Tuple[str, ...] = (
    "ozone",
    "particulate_matter",
    "carbon_monoxide",
    "sulfur_dioxide",
    "nitrogen_dioxide",
)

#: Number of records in the 2014 pollution dump used by the paper.
RECORD_COUNT: int = 17568

#: First record timestamp: 0:05 am, 8/1/2014.
START_TIMESTAMP: datetime = datetime(2014, 8, 1, 0, 5)

#: Sampling cadence of the feed (one record every five minutes).
CADENCE: timedelta = timedelta(minutes=5)

# Per-index AR(1) surrogate parameters: (mean, reversion, innovation sigma,
# diurnal amplitude, low clip, high clip).  Values target the index ranges
# observed in the public CityPulse pollution dumps (AQI-style 0..200 scale).
_INDEX_PARAMS: Dict[str, Tuple[float, float, float, float, float, float]] = {
    "ozone": (92.0, 0.985, 4.0, 18.0, 0.0, 200.0),
    "particulate_matter": (76.0, 0.990, 3.5, 12.0, 0.0, 200.0),
    "carbon_monoxide": (68.0, 0.980, 5.0, 10.0, 0.0, 200.0),
    "sulfur_dioxide": (54.0, 0.992, 2.5, 6.0, 0.0, 200.0),
    "nitrogen_dioxide": (83.0, 0.987, 4.5, 15.0, 0.0, 200.0),
}


@dataclass(frozen=True)
class PollutionRecord:
    """One timestamped pollution measurement with all five indexes."""

    timestamp: datetime
    ozone: float
    particulate_matter: float
    carbon_monoxide: float
    sulfur_dioxide: float
    nitrogen_dioxide: float

    def value(self, index: str) -> float:
        """Return the measurement for ``index`` (one of the five AQ names)."""
        if index not in AIR_QUALITY_INDEXES:
            raise KeyError(f"unknown air-quality index: {index!r}")
        return float(getattr(self, index))

    def as_tuple(self) -> Tuple[float, ...]:
        """Return the five index values in canonical order."""
        return tuple(float(getattr(self, name)) for name in AIR_QUALITY_INDEXES)


@dataclass
class CityPulseDataset:
    """A materialized pollution dataset: timestamps plus five value columns.

    Columns are dense :class:`numpy.ndarray` vectors of equal length; the
    class offers convenient per-index access, record iteration, range
    counting ground truth and slicing, which the experiment harness uses to
    derive workloads.
    """

    timestamps: np.ndarray
    columns: Dict[str, np.ndarray] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        n = len(self.timestamps)
        for name, col in self.columns.items():
            if len(col) != n:
                raise ValueError(
                    f"column {name!r} has {len(col)} values, expected {n}"
                )

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def indexes(self) -> Tuple[str, ...]:
        """Names of the value columns in canonical order."""
        return tuple(name for name in AIR_QUALITY_INDEXES if name in self.columns)

    def values(self, index: str) -> np.ndarray:
        """Return the raw value vector for one air-quality index."""
        try:
            return self.columns[index]
        except KeyError:
            raise KeyError(f"unknown air-quality index: {index!r}") from None

    def records(self) -> Iterator[PollutionRecord]:
        """Iterate over the dataset as :class:`PollutionRecord` objects."""
        cols = [self.columns[name] for name in AIR_QUALITY_INDEXES]
        for i, ts in enumerate(self.timestamps):
            yield PollutionRecord(ts, *(float(c[i]) for c in cols))

    def range_count(self, index: str, low: float, high: float) -> int:
        """Exact ``γ(low, high, ·)`` over one index column (ground truth)."""
        col = self.values(index)
        return int(np.count_nonzero((col >= low) & (col <= high)))

    def head(self, count: int) -> "CityPulseDataset":
        """Return a dataset containing the first ``count`` records.

        Used by the Figure-4 experiment, which grows the data size from 10%
        to 100% of the original dataset.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return CityPulseDataset(
            timestamps=self.timestamps[:count],
            columns={name: col[:count] for name, col in self.columns.items()},
            seed=self.seed,
        )

    def value_range(self, index: str) -> Tuple[float, float]:
        """Observed ``(min, max)`` of one index column."""
        col = self.values(index)
        if len(col) == 0:
            raise ValueError("dataset is empty")
        return float(col.min()), float(col.max())


def _simulate_index(
    rng: np.random.Generator,
    count: int,
    mean: float,
    reversion: float,
    sigma: float,
    diurnal: float,
    low: float,
    high: float,
) -> np.ndarray:
    """Simulate one AR(1)+diurnal pollution index of length ``count``."""
    noise = rng.normal(0.0, sigma, size=count)
    series = np.empty(count, dtype=np.float64)
    level = mean + rng.normal(0.0, sigma)
    # 288 five-minute steps per day drive the diurnal phase.
    phase = 2.0 * np.pi * np.arange(count) / 288.0
    cycle = diurnal * np.sin(phase)
    # Slow seasonal drift across the two-month window.
    drift = np.linspace(0.0, rng.normal(0.0, diurnal), count)
    for i in range(count):
        level = mean + reversion * (level - mean) + noise[i]
        series[i] = level
    return np.clip(series + cycle + drift, low, high)


def generate_citypulse(
    record_count: int = RECORD_COUNT,
    seed: int = 2014,
) -> CityPulseDataset:
    """Generate the CityPulse pollution surrogate.

    Parameters
    ----------
    record_count:
        Number of records; defaults to the paper's 17 568.
    seed:
        Seed for the deterministic generator; identical seeds produce
        byte-identical datasets.

    Returns
    -------
    CityPulseDataset
        Timestamps at five-minute cadence starting 2014-08-01 00:05 plus one
        column per air-quality index.
    """
    if record_count < 0:
        raise ValueError("record_count must be non-negative")
    rng = np.random.default_rng(seed)
    timestamps = np.array(
        [START_TIMESTAMP + i * CADENCE for i in range(record_count)],
        dtype=object,
    )
    columns: Dict[str, np.ndarray] = {}
    for name in AIR_QUALITY_INDEXES:
        mean, reversion, sigma, diurnal, low, high = _INDEX_PARAMS[name]
        columns[name] = _simulate_index(
            rng, record_count, mean, reversion, sigma, diurnal, low, high
        )
    return CityPulseDataset(timestamps=timestamps, columns=columns, seed=seed)
