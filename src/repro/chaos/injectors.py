"""Fault injectors: map schedule events onto live runtime actions.

:class:`FaultInjector` owns the mutable side of a chaos run: it kills and
restarts gateway workers, crashes the broker's books and recovers them
from the write-ahead journal (verifying the rebuild is bit-identical),
cuts and heals shard primaries, and flips station channels into
Gilbert–Elliott burst-loss mode.  Every action is counted in telemetry
(``chaos.*``) and recovery latency lands in a histogram, so operators can
read a chaos run the way they read a serving run.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.chaos.schedule import FaultEvent
from repro.durability.journal import TradeJournal
from repro.durability.recovery import recover_accounting
from repro.iot.channel import BurstChannel, Channel
from repro.pricing.ledger import BillingLedger
from repro.privacy.budget import BudgetAccountant
from repro.serving.gateway import ServingGateway

__all__ = ["FaultInjector", "books_equal"]

#: Injected ingress latency for ``slow_shard`` -- roughly 10x a healthy
#: sub-query on the drill's stack sizes, so breakers/hedging have a real
#: straggler to route around while the drill still finishes quickly.
SLOW_SHARD_LATENCY_S = 0.05

#: Pool round-trip bound installed while any worker is SIGSTOPped; a
#: stalled request sheds to the bit-identical local estimator instead of
#: hanging the scatter.
STALL_REQUEST_TIMEOUT_S = 0.25


def books_equal(
    ledger_a: BillingLedger,
    accountant_a: BudgetAccountant,
    ledger_b: BillingLedger,
    accountant_b: BudgetAccountant,
) -> bool:
    """Whether two (ledger, accountant) pairs hold bit-identical accounting.

    Compares the transaction logs (ids included), the next transaction
    id, and the accountant's per-dataset spend history.  Exact float
    equality is intentional: recovery promises *bit-identical* books, not
    approximately-equal ones.  Journal high-water marks are bookkeeping
    of the recovery machinery itself and are excluded.
    """
    snap_a, snap_b = ledger_a.snapshot(), ledger_b.snapshot()
    if snap_a["transactions"] != snap_b["transactions"]:
        return False
    if snap_a["next_transaction_id"] != snap_b["next_transaction_id"]:
        return False
    return accountant_a.snapshot()["spent"] == accountant_b.snapshot()["spent"]


class FaultInjector:
    """Applies :class:`FaultEvent`\\ s to a gateway-fronted broker stack."""

    def __init__(self, gateway: ServingGateway, journal: TradeJournal) -> None:
        self.gateway = gateway
        self.journal = journal
        self.telemetry = gateway.telemetry
        #: Exactness verdict of each mid-run broker recovery, in order.
        self.recoveries_exact: "List[bool]" = []
        # Original channels stashed while a burst fault is active,
        # keyed by shard target.
        self._saved_channels: "Dict[int, List[Tuple[Any, Channel]]]" = {}
        # SIGSTOPped worker pids by pool key, so resume targets the very
        # process that was stalled even if the pool respawned others.
        self._stalled: "Dict[Any, int]" = {}
        #: Seconds of armed-but-unapplied manual-clock jump; the harness
        #: consumes this under ``gateway.quiesce()`` around the step's
        #: submit (see :meth:`_clock_jump`).
        self.pending_clock_jump: float = 0.0

    # ------------------------------------------------------------------ #
    # dispatch                                                           #
    # ------------------------------------------------------------------ #
    def apply(self, event: FaultEvent) -> None:
        """Apply one scheduled fault (or recovery) to the live stack."""
        handler = {
            "kill_worker": self._kill_worker,
            "restart_worker": self._restart_worker,
            "crash_broker": self._crash_broker,
            "partition_shard": self._partition_shard,
            "heal_shard": self._heal_shard,
            "burst_loss": self._burst_loss,
            "heal_channel": self._heal_channel,
            "kill_worker_process": self._kill_worker_process,
            "slow_shard": self._slow_shard,
            "heal_slow_shard": self._heal_slow_shard,
            "stall_worker": self._stall_worker,
            "resume_worker": self._resume_worker,
            "clock_jump": self._clock_jump,
            "brownout_level": self._brownout_level,
        }[event.kind]
        handler(event)
        self.telemetry.inc(f"chaos.{event.kind}")

    # ------------------------------------------------------------------ #
    # gateway workers                                                    #
    # ------------------------------------------------------------------ #
    def _kill_worker(self, event: FaultEvent) -> None:
        self.gateway.kill_worker()

    def _restart_worker(self, event: FaultEvent) -> None:
        self.gateway.spawn_worker()

    # ------------------------------------------------------------------ #
    # shard worker processes (repro.workers)                             #
    # ------------------------------------------------------------------ #
    def _kill_worker_process(self, event: FaultEvent) -> None:
        """SIGKILL one :mod:`repro.workers` shard worker process.

        Deliberately non-cooperative: the worker gets no chance to flush
        or reply.  The pool must absorb the crash transparently — respawn
        and replay, or fall back to the bit-identical local estimator —
        so the run's answers and books are unchanged.  Requires the
        broker to be running the process execution backend.
        """
        import os
        import signal

        backend = getattr(self.gateway.broker, "_process_backend", None)
        if backend is None:
            raise ValueError(
                "kill_worker_process needs the process execution backend "
                "(broker.use_processes()); the broker is in threads mode"
            )
        pids = backend.worker_pids()
        if not pids:
            raise ValueError("process backend has no live workers to kill")
        keys = sorted(pids, key=repr)
        victim = keys[event.target % len(keys)]
        os.kill(pids[victim], signal.SIGKILL)

    def _backend(self) -> Any:
        backend = getattr(self.gateway.broker, "_process_backend", None)
        if backend is None:
            raise ValueError(
                "worker stall events need the process execution backend "
                "(broker.use_processes()); the broker is in threads mode"
            )
        return backend

    def _stall_worker(self, event: FaultEvent) -> None:
        """SIGSTOP one shard worker: alive but unresponsive, not crashed.

        The pool's ``request_timeout`` is installed alongside so stalled
        round-trips shed to the bit-identical local estimator instead of
        hanging the scatter; the worker's eventual late replies are
        discarded by sequence tag after :meth:`_resume_worker`.
        """
        import os
        import signal

        backend = self._backend()
        pids = backend.worker_pids()
        if not pids:
            raise ValueError("process backend has no live workers to stall")
        keys = sorted(pids, key=repr)
        victim = keys[event.target % len(keys)]
        if victim in self._stalled:
            return  # already stalled; idempotent
        os.kill(pids[victim], signal.SIGSTOP)
        self._stalled[victim] = pids[victim]
        backend.pool.request_timeout = STALL_REQUEST_TIMEOUT_S

    def _resume_worker(self, event: FaultEvent) -> None:
        import os
        import signal

        backend = self._backend()
        keys = sorted(backend.worker_pids(), key=repr)
        if not keys:
            return
        victim = keys[event.target % len(keys)]
        pid = self._stalled.pop(victim, None)
        if pid is not None:
            os.kill(pid, signal.SIGCONT)
        if not self._stalled:
            backend.pool.request_timeout = None

    # ------------------------------------------------------------------ #
    # shard latency + overload controls                                  #
    # ------------------------------------------------------------------ #
    def _slow_shard(self, event: FaultEvent) -> None:
        self._shards()[event.target].injected_latency = SLOW_SHARD_LATENCY_S

    def _heal_slow_shard(self, event: FaultEvent) -> None:
        self._shards()[event.target].injected_latency = 0.0

    def _clock_jump(self, event: FaultEvent) -> None:
        """Arm a jump of the gateway's manual clock (``target`` = ms).

        The advance itself is *deferred*: the harness applies it under
        ``gateway.quiesce()`` around the step's own submit, so the jump
        lands with a known queue (exactly this step's trade enqueued,
        nothing mid-dispatch).  That is what makes a deadline storm
        deterministic -- which requests expire is a pure function of the
        schedule, not of how fast the dispatcher thread was running.
        """
        clock = self.gateway.clock
        if getattr(clock, "advance", None) is None:
            raise ValueError(
                "clock_jump needs the gateway built on a ManualClock "
                "(gateway.clock must expose advance())"
            )
        self.pending_clock_jump += event.target / 1000.0

    def _brownout_level(self, event: FaultEvent) -> None:
        """Pin the ladder at rung ``target`` (0 = back to normal service).

        Every transition — descent included — stays *pinned*: handing
        control back to ``observe`` mid-drill would let the rung depend
        on breaker state, which follows measured wall-clock latency, and
        same-seed checksums would then diverge on a loaded host.  (The
        shed rung also refuses at submit, so no dispatch would ever feed
        ``observe`` anyway.)  Organic hysteresis is covered by the
        resilience unit tests, not the drill.
        """
        brownout = self.gateway.brownout
        if brownout is None:
            raise ValueError(
                "brownout_level needs a gateway with a BrownoutController"
            )
        brownout.force(event.target)

    # ------------------------------------------------------------------ #
    # broker crash + journal recovery                                    #
    # ------------------------------------------------------------------ #
    def _crash_broker(self, event: FaultEvent) -> None:
        """Crash the broker's books and rebuild them from the journal.

        Under ``gateway.quiesce()`` (no trade mid-charge): recover a
        fresh (ledger, accountant) pair from the journal, verify it is
        bit-identical to the live pair, then *swap it in* — the broker
        continues on the recovered books, so any recovery inexactness
        surfaces as drift in the end-of-run audit as well as in the
        ``recoveries_exact`` verdicts.
        """
        broker = self.gateway.broker
        started = time.perf_counter()
        with self.gateway.quiesce():
            ledger, accountant = recover_accounting(
                self.journal, capacity=broker.accountant.capacity
            )
            exact = books_equal(
                ledger, accountant, broker.ledger, broker.accountant
            )
            self.recoveries_exact.append(exact)
            old_ledger = broker.ledger
            broker.ledger = ledger
            broker.accountant = accountant
            if (
                self.gateway.admission is not None
                and self.gateway.admission.ledger is old_ledger
            ):
                self.gateway.admission.ledger = ledger
        self.telemetry.observe(
            "chaos.recovery_latency_s", time.perf_counter() - started
        )
        self.telemetry.inc("chaos.broker_recoveries")

    # ------------------------------------------------------------------ #
    # shard partitions                                                   #
    # ------------------------------------------------------------------ #
    def _shards(self) -> "List[Any]":
        shards = getattr(self.gateway.broker, "shards", None)
        if not shards:
            raise ValueError(
                "shard fault events need a cluster broker (got a "
                "single-station broker)"
            )
        return list(shards)

    def _partition_shard(self, event: FaultEvent) -> None:
        self._shards()[event.target].fail_primary()

    def _heal_shard(self, event: FaultEvent) -> None:
        self._shards()[event.target].revive_primary()

    # ------------------------------------------------------------------ #
    # channel bursts                                                     #
    # ------------------------------------------------------------------ #
    def _stations(self, target: int) -> "List[Any]":
        shards = getattr(self.gateway.broker, "shards", None)
        if shards:
            shard = list(shards)[target]
            stations = [shard.primary_station]
            if shard.replica_station is not None:
                stations.append(shard.replica_station)
            return stations
        return [self.gateway.broker.base_station]

    def _burst_loss(self, event: FaultEvent) -> None:
        if event.target in self._saved_channels:
            return  # already bursting; idempotent
        saved: "List[Tuple[Any, Channel]]" = []
        for index, station in enumerate(self._stations(event.target)):
            network = station.network
            saved.append((network, network.channel))
            network.channel = BurstChannel(
                loss_probability=0.05,
                bad_loss_probability=0.95,
                base_latency=network.channel.base_latency,
                jitter=network.channel.jitter,
                # Seed derived from the schedule position so the burst
                # pattern is itself reproducible.
                rng=np.random.default_rng(
                    1_000_003 * (event.target + 1) + 101 * index + event.step
                ),
            )
        self._saved_channels[event.target] = saved

    def _heal_channel(self, event: FaultEvent) -> None:
        for network, channel in self._saved_channels.pop(event.target, []):
            network.channel = channel
