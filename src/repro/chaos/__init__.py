"""Deterministic chaos engineering for the trading stack.

Seed-driven fault schedules (:mod:`repro.chaos.schedule`), live-stack
injectors (:mod:`repro.chaos.injectors`), and the auditing harness
(:mod:`repro.chaos.harness`) that drives a request stream through a
gateway under faults and machine-checks the three crash-safety
invariants: no under-accounting, zero drift with exact journal recovery,
and every accepted request resolving.
"""

from repro.chaos.harness import ChaosConfig, ChaosHarness, ChaosReport
from repro.chaos.injectors import FaultInjector, books_equal
from repro.chaos.overload import OverloadHarness, OverloadReport
from repro.chaos.schedule import (
    EVENT_KINDS,
    STREAM_AFFECTING,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "ChaosConfig",
    "ChaosHarness",
    "ChaosReport",
    "OverloadHarness",
    "OverloadReport",
    "FaultInjector",
    "books_equal",
    "EVENT_KINDS",
    "STREAM_AFFECTING",
    "FaultEvent",
    "FaultSchedule",
]
