"""The chaos harness: seeded faults over a live trading stack, audited.

:class:`ChaosHarness` drives a deterministic request stream through a
:class:`~repro.serving.gateway.ServingGateway` while a
:class:`~repro.chaos.schedule.FaultSchedule` kills workers, crashes the
broker's books (recovering them from the write-ahead journal), partitions
shards, and flips channels into burst loss.  After the run it checks the
three crash-safety invariants machine-checkably:

1. **No under-accounting.**  The ε′ billed on every *released* answer is
   covered by the accountant's recorded spend, and the journal's release
   total matches the accountant exactly.
2. **Zero drift + exact recovery.**  Ledger revenue and accountant spend
   equal the serial expectation for the resolved request multiset, every
   mid-run journal recovery was bit-identical to the live books, and a
   final from-scratch :func:`~repro.durability.recovery.recover_accounting`
   reproduces the books bit-for-bit.
3. **Every accepted request resolves** -- with an answer or a typed
   :class:`~repro.errors.ReproError`; no future is left dangling.

Determinism contract: the gateway must run **one worker**, a **zero
batching window**, and **no cache** -- then batches are width-1, dispatch
order equals submission order, and the whole run (values, prices, books,
journal) is a pure function of the seeds.  The harness additionally
never lets two workers live at once (a replacement is spawned only after
the killed worker has drained up to its kill sentinel and exited) and
drains in-flight futures before any stream-affecting fault, so every
injection lands at a reproducible stream position.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.injectors import FaultInjector, books_equal
from repro.chaos.schedule import STREAM_AFFECTING, FaultSchedule
from repro.core.query import PrivateAnswer
from repro.durability.journal import TradeJournal
from repro.durability.recovery import recover_accounting
from repro.errors import ReproError
from repro.serving.gateway import ServingGateway
from repro.serving.loadgen import (
    Workload,
    _ensure_feasible,
    expected_accounting,
)

__all__ = ["ChaosConfig", "ChaosReport", "ChaosHarness"]

#: Tolerance for sum-of-floats comparisons (drift, coverage).  Books and
#: recovery equivalence are compared *exactly*; only independently-ordered
#: float summations get this slack.
_SUM_TOL = 1e-9


@dataclass(frozen=True)
class ChaosConfig:
    """Tuning of one chaos run.

    ``drain_every`` bounds the in-flight future window (the harness waits
    for outstanding answers whenever that many are pending and a worker
    is logically alive); ``timeout`` bounds every individual wait.
    """

    trades: int = 200
    consumers: int = 4
    drain_every: int = 16
    timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.trades < 1:
            raise ValueError("trades must be positive")
        if self.consumers < 1:
            raise ValueError("consumers must be positive")
        if self.drain_every < 1:
            raise ValueError("drain_every must be positive")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")


class _Pending:
    """One submitted request awaiting its future."""

    __slots__ = ("step", "consumer", "low", "high", "spec", "future",
                 "kills_at_submit")

    def __init__(self, step, consumer, low, high, spec, future,
                 kills_at_submit) -> None:
        self.step = step
        self.consumer = consumer
        self.low = low
        self.high = high
        self.spec = spec
        self.future = future
        #: Total worker kills applied before this request was submitted.
        #: One worker (re)spawn is needed per sentinel ahead of it in the
        #: queue, so it cannot resolve until the total number of restarts
        #: has caught up with this count.
        self.kills_at_submit = kills_at_submit


@dataclass(frozen=True)
class ChaosReport:
    """Audited outcome of one chaos run (JSON-ready via ``to_payload``)."""

    trades: int
    seed: int
    schedule_checksum: str
    resolved: int
    failed: int
    unresolved: int
    degraded_answers: int
    released_epsilon: float
    journal_release_epsilon: float
    journal_entries: int
    epsilon_spent: float
    expected_epsilon: float
    revenue: float
    expected_revenue: float
    worker_kills: int
    worker_restarts: int
    auto_respawns: int
    broker_recoveries: int
    recoveries_exact: Tuple[bool, ...]
    final_recovery_exact: bool
    invariant_no_underaccounting: bool
    invariant_zero_drift: bool
    invariant_all_resolved: bool
    failures: Tuple[str, ...]
    checksum: str
    duration_s: float
    #: SIGKILLed repro.workers shard processes (absorbed transparently by
    #: the pool: respawn+replay or bit-identical local fallback).
    worker_process_kills: int = 0

    @property
    def epsilon_drift(self) -> float:
        return self.epsilon_spent - self.expected_epsilon

    @property
    def revenue_drift(self) -> float:
        return self.revenue - self.expected_revenue

    @property
    def all_passed(self) -> bool:
        """Whether all three chaos invariants held."""
        return (
            self.invariant_no_underaccounting
            and self.invariant_zero_drift
            and self.invariant_all_resolved
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "trades": self.trades,
            "seed": self.seed,
            "schedule_checksum": self.schedule_checksum,
            "resolved": self.resolved,
            "failed": self.failed,
            "unresolved": self.unresolved,
            "degraded_answers": self.degraded_answers,
            "released_epsilon": self.released_epsilon,
            "journal_release_epsilon": self.journal_release_epsilon,
            "journal_entries": self.journal_entries,
            "epsilon_spent": self.epsilon_spent,
            "expected_epsilon": self.expected_epsilon,
            "epsilon_drift": self.epsilon_drift,
            "revenue": self.revenue,
            "expected_revenue": self.expected_revenue,
            "revenue_drift": self.revenue_drift,
            "worker_kills": self.worker_kills,
            "worker_restarts": self.worker_restarts,
            "worker_process_kills": self.worker_process_kills,
            "auto_respawns": self.auto_respawns,
            "broker_recoveries": self.broker_recoveries,
            "recoveries_exact": list(self.recoveries_exact),
            "final_recovery_exact": self.final_recovery_exact,
            "invariants": {
                "no_underaccounting": self.invariant_no_underaccounting,
                "zero_drift": self.invariant_zero_drift,
                "all_resolved": self.invariant_all_resolved,
            },
            "all_passed": self.all_passed,
            "failures": list(self.failures),
            "checksum": self.checksum,
            "duration_s": self.duration_s,
        }


class ChaosHarness:
    """Drive one seeded fault schedule through a gateway and audit it.

    The gateway must satisfy the determinism contract: ``workers == 1``,
    ``batch_window == 0`` and no answer cache (see module docstring), and
    its broker must carry the same :class:`TradeJournal` handed here.
    """

    def __init__(
        self,
        gateway: ServingGateway,
        journal: TradeJournal,
        schedule: FaultSchedule,
        workload: Workload,
        config: Optional[ChaosConfig] = None,
    ) -> None:
        if gateway.config.workers != 1:
            raise ValueError(
                "chaos determinism requires exactly one gateway worker "
                f"(got {gateway.config.workers})"
            )
        if gateway.config.batch_window != 0:
            raise ValueError(
                "chaos determinism requires batch_window=0 (width-1 "
                "batches dispatch in submission order)"
            )
        if gateway.cache is not None:
            raise ValueError(
                "chaos determinism requires the answer cache disabled "
                "(replays would depend on store-version timing)"
            )
        if gateway.broker.journal is not journal:
            raise ValueError(
                "the broker must journal into the same TradeJournal the "
                "harness audits"
            )
        self.gateway = gateway
        self.journal = journal
        self.schedule = schedule
        self.workload = workload
        self.config = config or ChaosConfig(trades=schedule.trades)
        if self.config.trades != schedule.trades:
            raise ValueError(
                f"config.trades={self.config.trades} disagrees with "
                f"schedule.trades={schedule.trades}"
            )
        self.injector = FaultInjector(gateway, journal)
        # Raw outcome of the last run (filled by _audit; lets subclasses
        # layer further per-answer invariants on the same evidence).
        self._last_resolved: "List[Tuple[_Pending, PrivateAnswer]]" = []
        self._last_failed: "List[Tuple[_Pending, BaseException]]" = []

    # ------------------------------------------------------------------ #
    # run                                                                #
    # ------------------------------------------------------------------ #
    def run(self) -> ChaosReport:
        """Execute the schedule over the request stream; audit; report."""
        gateway, config = self.gateway, self.config
        # Pre-collect so no mid-run top-up perturbs plans or the audit.
        _ensure_feasible(gateway, self.workload)
        if not gateway.running:
            gateway.start()

        pending: "List[_Pending]" = []
        resolved: "List[Tuple[_Pending, PrivateAnswer]]" = []
        failed: "List[Tuple[_Pending, BaseException]]" = []
        unresolved: "List[_Pending]" = []
        kills_applied = 0
        restarts_applied = 0
        auto_respawns = 0
        started = time.perf_counter()

        def resolvable(entry: "_Pending") -> bool:
            # A request queued behind m kill sentinels needs m (re)spawned
            # workers before anything can reach it.
            return restarts_applied >= entry.kills_at_submit

        def drain(entries: "List[_Pending]") -> None:
            for entry in entries:
                try:
                    answer = entry.future.result(timeout=config.timeout)
                except BaseException as exc:  # repro-lint: shed -- collected into failed[] and audited
                    failed.append((entry, exc))
                else:
                    resolved.append((entry, answer))
            del entries[:]

        def drain_resolvable() -> None:
            ready = [entry for entry in pending if resolvable(entry)]
            blocked = [entry for entry in pending if not resolvable(entry)]
            drain(ready)
            pending[:] = blocked

        def wait_workers_dead() -> None:
            deadline = time.monotonic() + config.timeout
            while gateway.alive_workers > 0:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        "killed gateway worker failed to exit within "
                        f"{config.timeout}s"
                    )
                time.sleep(0.0005)

        for step in range(config.trades):
            for event in self.schedule.at(step):
                if event.kind in STREAM_AFFECTING:
                    # Land the fault at a deterministic stream position:
                    # nothing in flight while the stack mutates.
                    drain_resolvable()
                if event.kind == "restart_worker":
                    # Single-live-worker invariant: the killed worker must
                    # drain up to its sentinel and exit before a
                    # replacement spawns (two concurrent workers would
                    # race dispatch order).
                    if kills_applied > restarts_applied:
                        drain_resolvable()
                        wait_workers_dead()
                    restarts_applied += 1
                elif event.kind == "kill_worker":
                    kills_applied += 1
                self.injector.apply(event)

            (low, high), spec = self.workload.request(step)
            future = self._submit_one(
                step, low, high, spec,
                consumer=f"chaos-{step % config.consumers}",
            )
            pending.append(_Pending(
                step, f"chaos-{step % config.consumers}", low, high, spec,
                future, kills_applied,
            ))
            live = sum(
                1 for entry in pending if resolvable(entry)
            )
            if kills_applied <= restarts_applied and live >= config.drain_every:
                drain_resolvable()

        # End of stream: bring a worker back if the schedule left the
        # gateway logically dead, then settle every outstanding future.
        if kills_applied > restarts_applied:
            while kills_applied > restarts_applied:
                drain_resolvable()
                wait_workers_dead()
                gateway.spawn_worker()
                restarts_applied += 1
                auto_respawns += 1
        drain_resolvable()
        for entry in pending:
            if not entry.future.done():
                unresolved.append(entry)
            else:
                try:
                    resolved.append((entry, entry.future.result(timeout=0)))
                except BaseException as exc:  # repro-lint: shed -- collected into failed[] and audited
                    failed.append((entry, exc))
        duration = time.perf_counter() - started
        report = self._audit(
            resolved, failed, unresolved, auto_respawns, duration
        )
        gateway.stop()
        return report

    def _submit_one(
        self,
        step: int,
        low: float,
        high: float,
        spec: Any,
        consumer: str,
    ) -> "Future[PrivateAnswer]":
        """Submit one trade; a synchronous typed shed becomes a failed future.

        A gateway under brownout level 4 sheds at ``submit`` (typed
        :class:`~repro.errors.BrownoutShedError` with a retry-after)
        before anything is queued or billed; the audit counts it like
        any other typed failure, at the deterministic stream position it
        happened.

        An armed ``clock_jump`` is consumed here: the submit and the
        manual-clock advance happen under one ``gateway.quiesce()``, so
        exactly this step's trade sits queued when time moves -- the
        deadline miss (or survival) is a pure function of the schedule
        and the configured ``request_ttl``.
        """
        jump = getattr(self.injector, "pending_clock_jump", 0.0)
        if jump > 0.0:
            self.injector.pending_clock_jump = 0.0
            with self.gateway.quiesce():
                try:
                    return self.gateway.submit_range(
                        low, high, spec.alpha, spec.delta, consumer=consumer
                    )
                except ReproError as exc:
                    future: "Future[PrivateAnswer]" = Future()
                    future.set_exception(exc)
                    return future
                finally:
                    # The jump lands even when the submit itself sheds:
                    # armed time always passes at this stream position.
                    self.gateway.clock.advance(jump)
        try:
            return self.gateway.submit_range(
                low, high, spec.alpha, spec.delta, consumer=consumer
            )
        except ReproError as exc:
            future = Future()
            future.set_exception(exc)
            return future

    # ------------------------------------------------------------------ #
    # audit                                                              #
    # ------------------------------------------------------------------ #
    def _audit(
        self,
        resolved: "List[Tuple[_Pending, PrivateAnswer]]",
        failed: "List[Tuple[_Pending, BaseException]]",
        unresolved: "List[_Pending]",
        auto_respawns: int,
        duration: float,
    ) -> ChaosReport:
        broker = self.gateway.broker
        failures: "List[str]" = []

        txn_epsilon: "Dict[int, float]" = {}
        txn_price: "Dict[int, float]" = {}
        for txn in broker.ledger.snapshot()["transactions"]:
            txn_epsilon[txn["transaction_id"]] = txn["epsilon_prime"]
            txn_price[txn["transaction_id"]] = txn["price"]

        resolved.sort(key=lambda pair: pair[0].step)
        released_epsilon = sum(
            txn_epsilon.get(answer.transaction_id, answer.plan.epsilon_prime)
            for _, answer in resolved
        )
        journal_release_epsilon = sum(
            entry.epsilon_prime
            for entry in self.journal.entries()
            if entry.kind == "release"
        )
        epsilon_spent = broker.accountant.spent(broker.dataset)
        revenue = broker.ledger.total_revenue()

        # Invariant 1: every released answer's ε′ is accounted for.
        inv_account = released_epsilon <= epsilon_spent + _SUM_TOL
        if not inv_account:
            failures.append(
                f"under-accounting: released ε={released_epsilon!r} exceeds "
                f"accounted ε={epsilon_spent!r}"
            )
        if abs(journal_release_epsilon - epsilon_spent) > _SUM_TOL:
            inv_account = False
            failures.append(
                f"journal/accountant mismatch: journal releases total "
                f"ε={journal_release_epsilon!r}, accountant recorded "
                f"ε={epsilon_spent!r}"
            )

        # Invariant 2: zero drift against the serial expectation, and the
        # journal alone reproduces the books bit-for-bit.  The expectation
        # is priced at each answer's *delivered* spec (``answer.spec``):
        # identical to the requested spec on a healthy run, and the
        # honestly-billed weaker contract on a brownout-repriced one.
        expected_revenue, expected_epsilon = expected_accounting(
            self.gateway,
            [
                ((entry.low, entry.high), answer.spec)
                for entry, answer in resolved
            ],
        )
        inv_drift = (
            abs(epsilon_spent - expected_epsilon) <= _SUM_TOL
            and abs(revenue - expected_revenue) <= _SUM_TOL
        )
        if not inv_drift:
            failures.append(
                f"accounting drift: ε {epsilon_spent!r} vs expected "
                f"{expected_epsilon!r}; revenue {revenue!r} vs expected "
                f"{expected_revenue!r}"
            )
        recovered_ledger, recovered_accountant = recover_accounting(
            self.journal, capacity=broker.accountant.capacity
        )
        final_exact = books_equal(
            recovered_ledger, recovered_accountant,
            broker.ledger, broker.accountant,
        )
        if not final_exact:
            inv_drift = False
            failures.append(
                "final journal replay did not reproduce the live books "
                "bit-for-bit"
            )
        if not all(self.injector.recoveries_exact):
            inv_drift = False
            failures.append(
                f"mid-run recovery inexact: {self.injector.recoveries_exact}"
            )

        # Invariant 3: every accepted request resolved, failures typed.
        inv_resolved = not unresolved
        if unresolved:
            failures.append(
                f"{len(unresolved)} request(s) never resolved "
                f"(steps {[entry.step for entry in unresolved][:8]})"
            )
        untyped = [
            (entry.step, type(exc).__name__)
            for entry, exc in failed
            if not isinstance(exc, ReproError)
        ]
        if untyped:
            inv_resolved = False
            failures.append(f"untyped request failures: {untyped[:8]}")

        telemetry = self.gateway.telemetry.snapshot()
        counters = telemetry.get("counters", {})
        report = ChaosReport(
            trades=self.config.trades,
            seed=self.schedule.seed,
            schedule_checksum=self.schedule.checksum(),
            resolved=len(resolved),
            failed=len(failed),
            unresolved=len(unresolved),
            degraded_answers=sum(
                1 for _, answer in resolved
                if getattr(answer, "degraded", False)
            ),
            released_epsilon=released_epsilon,
            journal_release_epsilon=journal_release_epsilon,
            journal_entries=len(self.journal),
            epsilon_spent=epsilon_spent,
            expected_epsilon=expected_epsilon,
            revenue=revenue,
            expected_revenue=expected_revenue,
            worker_kills=int(counters.get("gateway.worker_kills", 0)),
            worker_restarts=int(counters.get("gateway.worker_restarts", 0)),
            worker_process_kills=int(
                counters.get("chaos.kill_worker_process", 0)
            ),
            auto_respawns=auto_respawns,
            broker_recoveries=len(self.injector.recoveries_exact),
            recoveries_exact=tuple(self.injector.recoveries_exact),
            final_recovery_exact=final_exact,
            invariant_no_underaccounting=inv_account,
            invariant_zero_drift=inv_drift,
            invariant_all_resolved=inv_resolved,
            failures=tuple(failures),
            checksum=self._checksum(resolved),
            duration_s=duration,
        )
        # Stash the raw outcome for harness subclasses (the overload
        # drill audits per-answer rung honesty on top of this report).
        self._last_resolved = list(resolved)
        self._last_failed = list(failed)
        return report

    def _checksum(
        self, resolved: "List[Tuple[_Pending, PrivateAnswer]]"
    ) -> str:
        """SHA-256 of the full observable outcome: answers + books + journal.

        Two same-seed runs over identical stacks must agree on this --
        ``repr`` keeps full float precision, so any value, price, ε′, or
        transaction-id divergence changes the digest.
        """
        broker = self.gateway.broker
        digest = hashlib.sha256()
        for entry, answer in resolved:
            digest.update(repr((
                entry.step,
                entry.consumer,
                entry.low,
                entry.high,
                entry.spec.alpha,
                entry.spec.delta,
                # Delivered contract + rung: a brownout rung divergence
                # between same-seed runs must change the digest even when
                # it happens to price identically.
                answer.spec.alpha,
                answer.spec.delta,
                answer.brownout_rung,
                answer.value,
                answer.price,
                answer.plan.epsilon_prime,
                answer.transaction_id,
            )).encode())
        digest.update(repr(broker.ledger.total_revenue()).encode())
        digest.update(repr(broker.accountant.spent(broker.dataset)).encode())
        digest.update(self.journal.checksum().encode())
        return digest.hexdigest()
