"""The overload drill: chaos invariants plus deadline + rung honesty.

:class:`OverloadHarness` runs a standard :class:`~repro.chaos.harness.
ChaosHarness` schedule (typically one heavy on ``slow_shard`` /
``stall_worker`` / ``clock_jump`` / ``brownout_level`` events) and then
audits two further end-to-end resilience invariants on the same run
evidence:

4. **No post-deadline release.**  The gateway's ``post_deadline_release``
   detector stayed at zero: every answer that went out was released
   before its deadline, and every expiry turned into a typed
   :class:`~repro.errors.DeadlineExceededError` *before* any billing or
   ε′ spend.
5. **Rung honesty.**  For every resolved answer, the ``(α, δ)`` the
   consumer received is exactly the contract that was planned, billed,
   and journaled: the ledger transaction behind ``transaction_id``
   matches the delivered spec, price, and ε′ bit-for-bit; brownout rungs
   carry the original request in ``requested_spec`` and their delivered
   spec matches the ladder's published widening/degradation math; and
   shard-degraded cluster answers report the
   :func:`~repro.cluster.planning.degraded_delta` value for their
   failover count.

Both invariants are *checked against the books*, not against the
gateway's own claims — an answer whose delivered spec diverges from its
ledger row fails the drill even if every counter looks healthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.harness import ChaosHarness, ChaosReport
from repro.core.query import PrivateAnswer
from repro.errors import BrownoutShedError, DeadlineExceededError

__all__ = ["OverloadReport", "OverloadHarness"]

#: Exact-match tolerance for per-answer float comparisons.  Delivered
#: specs are produced by one arithmetic path and re-checked through the
#: same expressions, so equality is exact; this guards only repr/float64
#: round-trips through ledger snapshots.
_EXACT_TOL = 0.0


@dataclass(frozen=True)
class OverloadReport:
    """The base chaos report plus the two overload invariants."""

    base: ChaosReport
    deadline_exceeded: int
    post_deadline_releases: int
    sheds: int
    deadline_failures: int
    brownout_answers: "Dict[str, int]"
    hedges_fired: int
    hedges_won: int
    breaker_bypasses: int
    invariant_no_post_deadline_release: bool
    invariant_rung_honesty: bool
    failures: "Tuple[str, ...]"

    @property
    def all_passed(self) -> bool:
        """Whether all five drill invariants held (three base + two here)."""
        return (
            self.base.all_passed
            and self.invariant_no_post_deadline_release
            and self.invariant_rung_honesty
        )

    @property
    def checksum(self) -> str:
        """The base run checksum (rungs and delivered specs included)."""
        return self.base.checksum

    def to_payload(self) -> "Dict[str, Any]":
        payload = self.base.to_payload()
        payload["overload"] = {
            "deadline_exceeded": self.deadline_exceeded,
            "post_deadline_releases": self.post_deadline_releases,
            "sheds": self.sheds,
            "deadline_failures": self.deadline_failures,
            "brownout_answers": dict(self.brownout_answers),
            "hedges_fired": self.hedges_fired,
            "hedges_won": self.hedges_won,
            "breaker_bypasses": self.breaker_bypasses,
            "invariants": {
                "no_post_deadline_release":
                    self.invariant_no_post_deadline_release,
                "rung_honesty": self.invariant_rung_honesty,
            },
            "failures": list(self.failures),
        }
        payload["all_passed"] = self.all_passed
        return payload


class OverloadHarness(ChaosHarness):
    """A chaos harness that additionally audits overload honesty.

    Same construction contract as :class:`ChaosHarness`; the gateway
    should carry a ``request_ttl`` (deadline invariant engages) and a
    :class:`~repro.resilience.brownout.BrownoutController` (rung
    invariant has rungs to check) — both invariants hold vacuously on a
    stack without them.
    """

    def run(self) -> OverloadReport:  # type: ignore[override]
        base = super().run()
        return self._overload_audit(base)

    # ------------------------------------------------------------------ #
    # audit                                                              #
    # ------------------------------------------------------------------ #
    def _overload_audit(self, base: ChaosReport) -> OverloadReport:
        failures: "List[str]" = []
        counters = self.gateway.telemetry.snapshot().get("counters", {})
        resolved = self._last_resolved
        failed = self._last_failed

        # Invariant 4: the gateway's release-time detector stayed zero.
        post_deadline = int(counters.get("gateway.post_deadline_release", 0))
        inv_deadline = post_deadline == 0
        if not inv_deadline:
            failures.append(
                f"{post_deadline} answer(s) released after their deadline "
                "(gateway.post_deadline_release detector fired)"
            )

        # Invariant 5: per-answer rung honesty against the ledger.
        inv_honesty = True
        txns: "Dict[int, Dict[str, Any]]" = {
            txn["transaction_id"]: txn
            for txn in self.gateway.broker.ledger.snapshot()["transactions"]
        }
        rung_counts: "Dict[str, int]" = {}
        for entry, answer in resolved:
            rung_counts[answer.brownout_rung] = (
                rung_counts.get(answer.brownout_rung, 0) + 1
            )
            problem = self._check_answer(entry, answer, txns)
            if problem is not None:
                inv_honesty = False
                failures.append(f"step {entry.step}: {problem}")

        sheds = sum(
            1 for _, exc in failed if isinstance(exc, BrownoutShedError)
        )
        deadline_failures = sum(
            1 for _, exc in failed if isinstance(exc, DeadlineExceededError)
        )
        hedging = getattr(self.gateway.broker, "hedging", None)
        return OverloadReport(
            base=base,
            deadline_exceeded=int(
                counters.get("gateway.deadline_exceeded", 0)
            ),
            post_deadline_releases=post_deadline,
            sheds=sheds,
            deadline_failures=deadline_failures,
            brownout_answers=rung_counts,
            hedges_fired=getattr(hedging, "hedges_fired", 0),
            hedges_won=getattr(hedging, "hedges_won", 0),
            breaker_bypasses=int(sum(
                count for name, count in counters.items()
                if name.startswith("cluster.shard")
                and name.endswith(".breaker_bypasses")
            )),
            invariant_no_post_deadline_release=inv_deadline,
            invariant_rung_honesty=inv_honesty,
            failures=tuple(failures),
        )

    def _check_answer(
        self,
        entry: Any,
        answer: PrivateAnswer,
        txns: "Dict[int, Dict[str, Any]]",
    ) -> "Optional[str]":
        """One resolved answer's honesty problems (``None`` when clean)."""
        rung = answer.brownout_rung
        requested = entry.spec

        # (a) Ledger row matches the delivered contract bit-for-bit.
        txn = txns.get(answer.transaction_id)
        if txn is None:
            return (
                f"answer carries transaction_id={answer.transaction_id!r} "
                "with no matching ledger row"
            )
        expected_epsilon = (
            0.0 if rung == "cache" else answer.plan.epsilon_prime
        )
        for field, delivered in (
            ("alpha", answer.spec.alpha),
            ("delta", answer.spec.delta),
            ("price", answer.price),
            ("epsilon_prime", expected_epsilon),
        ):
            if abs(txn[field] - delivered) > _EXACT_TOL:
                return (
                    f"ledger txn {answer.transaction_id} {field}="
                    f"{txn[field]!r} but the delivered answer says "
                    f"{delivered!r} (rung {rung!r})"
                )

        # (b) The rung's spec transformation is the published one.
        brownout = self.gateway.brownout
        if rung == "none":
            if answer.requested_spec is not None:
                return (
                    "rung 'none' answer carries requested_spec="
                    f"{answer.requested_spec!r} (provenance must only "
                    "diverge on a degraded rung)"
                )
            if answer.spec != requested:
                return (
                    f"rung 'none' delivered {answer.spec!r} for requested "
                    f"{requested!r}"
                )
        elif rung == "cache":
            # A replay re-delivers the cached contract verbatim at ε = 0.
            if answer.spec != requested:
                return (
                    f"cache replay delivered {answer.spec!r} for requested "
                    f"{requested!r}"
                )
        elif rung in ("widen_alpha", "degrade_delta"):
            if brownout is None:
                return f"rung {rung!r} answer but the gateway has no ladder"
            if answer.requested_spec != requested:
                return (
                    f"rung {rung!r} answer's requested_spec="
                    f"{answer.requested_spec!r} does not echo the request "
                    f"{requested!r}"
                )
            config = brownout.config
            want_alpha = min(
                max(requested.alpha * config.widen_factor, requested.alpha),
                max(config.alpha_max, requested.alpha),
            )
            want_delta = requested.delta
            if rung == "degrade_delta":
                want_delta = requested.delta * config.delta_confidence
            if (
                abs(answer.spec.alpha - want_alpha) > _EXACT_TOL
                or abs(answer.spec.delta - want_delta) > _EXACT_TOL
            ):
                return (
                    f"rung {rung!r} delivered spec ({answer.spec.alpha!r}, "
                    f"{answer.spec.delta!r}) but the ladder math says "
                    f"({want_alpha!r}, {want_delta!r})"
                )
        else:
            return f"unknown brownout rung {rung!r} on a released answer"

        # (c) Shard-degraded cluster answers report the honest δ.
        degraded_shards = getattr(answer, "degraded_shards", None)
        if degraded_shards:
            from repro.cluster.planning import degraded_delta

            want = degraded_delta(
                answer.spec.delta,
                len(degraded_shards),
                self.gateway.broker.replica_confidence,
            )
            reported = getattr(answer, "delta_reported", None)
            if reported is None or abs(reported - want) > _EXACT_TOL:
                return (
                    f"{len(degraded_shards)} degraded shard(s) but "
                    f"delta_reported={reported!r}; honest reporting "
                    f"requires {want!r}"
                )
        return None
