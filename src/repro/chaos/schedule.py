"""Deterministic fault schedules: seed-driven, step-indexed injections.

A :class:`FaultSchedule` is a sorted list of :class:`FaultEvent`\\ s, each
pinned to a *trade step* of the harness's deterministic request stream
(not to wall-clock time — wall clocks are not reproducible).  The same
seed always generates the same schedule, and the harness applies events
at the same stream positions, which is what makes a whole chaos run —
faults, recoveries, answers, and books — bit-reproducible.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = ["FaultEvent", "FaultSchedule", "EVENT_KINDS"]

#: Supported injection kinds.
EVENT_KINDS = (
    "kill_worker",      # crash one gateway worker (finishes batch in hand)
    "restart_worker",   # spawn a replacement worker
    "crash_broker",     # rebuild broker books from the journal, verify, swap
    "partition_shard",  # cut a shard's primary (routes fail over to replica)
    "heal_shard",       # revive + re-sync that primary
    "burst_loss",       # flip a station channel into Gilbert-Elliott burst loss
    "heal_channel",     # restore the original channel
    # SIGKILL one repro.workers shard worker *process* (non-cooperative;
    # the pool respawns it or falls back to the bit-identical local
    # estimator, so no restart pairing is needed).
    "kill_worker_process",
    # --- overload faults (drawn last in ``generate`` so earlier
    # same-seed schedules keep their exact events and checksums) ---
    "slow_shard",       # inject ingress latency on a shard's gated lane
    "heal_slow_shard",  # clear that injected latency
    "stall_worker",     # SIGSTOP a shard worker process (stall, not crash)
    "resume_worker",    # SIGCONT the stalled worker
    "clock_jump",       # advance the gateway's manual clock (target = ms)
    "brownout_level",   # pin the brownout ladder at rung ``target`` (0 = normal)
)

#: Kinds that change which rng streams / routes serve subsequent trades;
#: the harness drains in-flight work before applying these so the switch
#: happens at a deterministic stream position.
STREAM_AFFECTING = (
    "crash_broker",
    "partition_shard",
    "heal_shard",
    "burst_loss",
    "heal_channel",
    # A clock jump expires queued deadlines and a brownout pin changes
    # which rung serves every later trade; both must land with nothing
    # in flight to stay at a reproducible stream position.
    "clock_jump",
    "brownout_level",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection, applied just before trade ``step`` submits."""

    step: int
    kind: str
    target: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.step < 0:
            raise ValueError("step must be non-negative")
        if self.target < 0:
            raise ValueError("target must be non-negative")

    def to_payload(self) -> Dict[str, Any]:
        return {"step": self.step, "kind": self.kind, "target": self.target}


@dataclass(frozen=True)
class FaultSchedule:
    """A seed's worth of faults over a ``trades``-step run.

    Events are stored sorted by step (stable on generation order within a
    step).  ``shards`` records the cluster width the schedule was built
    for so shard-targeted events can be validated against the runtime.
    """

    events: Tuple[FaultEvent, ...]
    seed: int
    trades: int
    shards: int = 1

    def __post_init__(self) -> None:
        if self.trades < 1:
            raise ValueError("trades must be positive")
        if self.shards < 1:
            raise ValueError("shards must be positive")
        steps = [event.step for event in self.events]
        if steps != sorted(steps):
            raise ValueError("events must be sorted by step")
        kills = sum(1 for e in self.events if e.kind == "kill_worker")
        restarts = sum(1 for e in self.events if e.kind == "restart_worker")
        if restarts < kills:
            raise ValueError(
                f"unmatched worker kills: {kills} kills but {restarts} restarts"
            )
        stalls = sum(1 for e in self.events if e.kind == "stall_worker")
        resumes = sum(1 for e in self.events if e.kind == "resume_worker")
        if resumes < stalls:
            raise ValueError(
                f"unmatched worker stalls: {stalls} stalls but "
                f"{resumes} resumes"
            )
        for event in self.events:
            if event.step >= self.trades:
                raise ValueError(
                    f"event {event.kind} at step {event.step} is past the "
                    f"{self.trades}-trade horizon"
                )
            if (
                event.kind in (
                    "partition_shard", "heal_shard",
                    "slow_shard", "heal_slow_shard",
                )
                and event.target >= self.shards
            ):
                raise ValueError(
                    f"{event.kind} targets shard {event.target} but the "
                    f"schedule is built for {self.shards} shard(s)"
                )
            if event.kind == "brownout_level" and event.target > 4:
                raise ValueError(
                    f"brownout_level targets rung {event.target}; the "
                    "ladder tops out at 4 (shed)"
                )

    def at(self, step: int) -> Tuple[FaultEvent, ...]:
        """Events to apply just before submitting trade ``step``."""
        return tuple(event for event in self.events if event.step == step)

    def count(self, kind: str) -> int:
        """How many events of ``kind`` the schedule contains."""
        return sum(1 for event in self.events if event.kind == kind)

    def checksum(self) -> str:
        """SHA-256 over the canonical schedule payload."""
        digest = hashlib.sha256()
        digest.update(json.dumps(self.to_payload(), sort_keys=True).encode())
        return digest.hexdigest()

    def to_payload(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "trades": self.trades,
            "shards": self.shards,
            "events": [event.to_payload() for event in self.events],
        }

    @classmethod
    def generate(
        cls,
        seed: int,
        trades: int,
        shards: int = 1,
        kill_restart_pairs: int = 2,
        broker_crashes: int = 1,
        shard_partitions: int = 1,
        channel_bursts: int = 1,
        worker_process_kills: int = 0,
        slow_shards: int = 0,
        worker_stalls: int = 0,
        clock_jumps: int = 0,
        brownout_pins: int = 0,
    ) -> "FaultSchedule":
        """Build the canonical seeded schedule for a ``trades``-step run.

        Guarantees, matching the acceptance scenario: every worker kill is
        paired with a later restart (a few steps after), broker crashes
        land mid-run, and — when ``shards > 1`` — each partition gets a
        later heal on the same shard.  Channel bursts are paired with
        heals likewise.  All positions are drawn from
        ``np.random.default_rng(seed)``, so the schedule is a pure
        function of its arguments.
        """
        if trades < 20:
            raise ValueError("a fault schedule needs at least 20 trades")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []

        def draw_step(lo_frac: float, hi_frac: float) -> int:
            lo = max(1, int(trades * lo_frac))
            hi = max(lo + 1, int(trades * hi_frac))
            return int(rng.integers(lo, min(hi, trades - 1)))

        for _ in range(kill_restart_pairs):
            kill = draw_step(0.05, 0.85)
            gap = int(rng.integers(2, 7))
            restart = min(kill + gap, trades - 1)
            events.append(FaultEvent(step=kill, kind="kill_worker"))
            events.append(FaultEvent(step=restart, kind="restart_worker"))

        for _ in range(broker_crashes):
            events.append(
                FaultEvent(step=draw_step(0.4, 0.8), kind="crash_broker")
            )

        if shards > 1:
            for _ in range(shard_partitions):
                cut = draw_step(0.2, 0.6)
                gap = int(rng.integers(5, 15))
                heal = min(cut + gap, trades - 1)
                target = int(rng.integers(0, shards))
                events.append(
                    FaultEvent(step=cut, kind="partition_shard", target=target)
                )
                events.append(
                    FaultEvent(step=heal, kind="heal_shard", target=target)
                )

        for _ in range(channel_bursts):
            on = draw_step(0.1, 0.7)
            gap = int(rng.integers(5, 15))
            off = min(on + gap, trades - 1)
            target = int(rng.integers(0, shards))
            events.append(FaultEvent(step=on, kind="burst_loss", target=target))
            events.append(
                FaultEvent(step=off, kind="heal_channel", target=target)
            )

        # Drawn last so existing same-seed schedules keep their exact
        # event positions (and checksums) when this stays at its default.
        for _ in range(worker_process_kills):
            events.append(FaultEvent(
                step=draw_step(0.1, 0.8),
                kind="kill_worker_process",
                target=int(rng.integers(0, shards)),
            ))

        # Overload faults: appended after every earlier draw for the same
        # reason -- zero-default arguments leave same-seed schedules (and
        # their checksums) untouched.
        for _ in range(slow_shards):
            on = draw_step(0.05, 0.6)
            heal = min(on + int(rng.integers(10, 30)), trades - 1)
            target = int(rng.integers(0, shards))
            events.append(
                FaultEvent(step=on, kind="slow_shard", target=target)
            )
            events.append(
                FaultEvent(step=heal, kind="heal_slow_shard", target=target)
            )
        for _ in range(worker_stalls):
            on = draw_step(0.2, 0.7)
            off = min(on + int(rng.integers(3, 10)), trades - 1)
            target = int(rng.integers(0, shards))
            events.append(
                FaultEvent(step=on, kind="stall_worker", target=target)
            )
            events.append(
                FaultEvent(step=off, kind="resume_worker", target=target)
            )
        for _ in range(clock_jumps):
            events.append(FaultEvent(
                step=draw_step(0.1, 0.9),
                kind="clock_jump",
                target=int(rng.integers(50, 500)),  # milliseconds
            ))
        for _ in range(brownout_pins):
            on = draw_step(0.3, 0.8)
            off = min(on + int(rng.integers(5, 15)), trades - 1)
            level = int(rng.integers(1, 5))
            events.append(
                FaultEvent(step=on, kind="brownout_level", target=level)
            )
            events.append(
                FaultEvent(step=off, kind="brownout_level", target=0)
            )

        ordered = tuple(
            sorted(enumerate(events), key=lambda pair: (pair[1].step, pair[0]))
        )
        return cls(
            events=tuple(event for _, event in ordered),
            seed=seed,
            trades=trades,
            shards=shards,
        )
