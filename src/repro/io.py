"""Persistence: save/load datasets, samples, and ledgers as JSON artifacts.

A broker deployment outlives single processes: collected samples are the
asset being monetized, ledgers are the audit trail, and the surrogate
dataset must be shareable between the collection and analysis sides.  This
module provides explicit, versioned JSON serialization for those objects
-- human-inspectable, diff-able, and free of pickle's code-execution
hazards.

Formats carry a ``"format"`` tag and a ``"version"`` integer so future
revisions can migrate; loaders reject unknown tags loudly.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

import numpy as np

from repro.datasets.citypulse import AIR_QUALITY_INDEXES, CityPulseDataset
from repro.estimators.base import NodeSample
from repro.pricing.ledger import BillingLedger, Transaction

__all__ = [
    "save_samples",
    "load_samples",
    "save_dataset_values",
    "load_dataset_values",
    "save_ledger",
    "load_ledger",
]

PathLike = Union[str, pathlib.Path]

_SAMPLES_FORMAT = "repro.samples"
_VALUES_FORMAT = "repro.dataset-values"
_LEDGER_FORMAT = "repro.ledger"
_VERSION = 1


def _write(path: PathLike, payload: dict) -> None:
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def _read(path: PathLike, expected_format: str) -> dict:
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != expected_format:
        raise ValueError(
            f"{path}: expected format {expected_format!r}, "
            f"found {payload.get('format')!r}"
        )
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported version {payload.get('version')!r}"
        )
    return payload


# ----------------------------------------------------------------------
# per-node samples
# ----------------------------------------------------------------------
def save_samples(path: PathLike, samples: List[NodeSample]) -> None:
    """Persist a base station's per-node samples."""
    payload = {
        "format": _SAMPLES_FORMAT,
        "version": _VERSION,
        "samples": [
            {
                "node_id": int(s.node_id),
                "values": [float(v) for v in s.values],
                "ranks": [int(r) for r in s.ranks],
                "node_size": int(s.node_size),
                "p": float(s.p),
            }
            for s in samples
        ],
    }
    _write(path, payload)


def load_samples(path: PathLike) -> List[NodeSample]:
    """Load per-node samples saved by :func:`save_samples`."""
    payload = _read(path, _SAMPLES_FORMAT)
    return [
        NodeSample(
            node_id=entry["node_id"],
            values=np.asarray(entry["values"], dtype=np.float64),
            ranks=np.asarray(entry["ranks"], dtype=np.int64),
            node_size=entry["node_size"],
            p=entry["p"],
        )
        for entry in payload["samples"]
    ]


# ----------------------------------------------------------------------
# dataset value columns
# ----------------------------------------------------------------------
def save_dataset_values(path: PathLike, data: CityPulseDataset) -> None:
    """Persist a dataset's value columns (timestamps are regenerable)."""
    payload = {
        "format": _VALUES_FORMAT,
        "version": _VERSION,
        "seed": int(data.seed),
        "record_count": len(data),
        "columns": {
            name: [float(v) for v in data.values(name)]
            for name in data.indexes
        },
    }
    _write(path, payload)


def load_dataset_values(path: PathLike) -> Dict[str, np.ndarray]:
    """Load the value columns saved by :func:`save_dataset_values`."""
    payload = _read(path, _VALUES_FORMAT)
    return {
        name: np.asarray(column, dtype=np.float64)
        for name, column in payload["columns"].items()
    }


# ----------------------------------------------------------------------
# billing ledger
# ----------------------------------------------------------------------
def save_ledger(path: PathLike, ledger: BillingLedger) -> None:
    """Persist a billing ledger's transactions."""
    payload = {
        "format": _LEDGER_FORMAT,
        "version": _VERSION,
        "transactions": [
            {
                "transaction_id": t.transaction_id,
                "consumer": t.consumer,
                "dataset": t.dataset,
                "alpha": t.alpha,
                "delta": t.delta,
                "price": t.price,
                "epsilon_prime": t.epsilon_prime,
            }
            for t in ledger.transactions
        ],
    }
    _write(path, payload)


def load_ledger(path: PathLike) -> BillingLedger:
    """Rebuild a billing ledger saved by :func:`save_ledger`.

    Transaction ids are preserved; new sales recorded afterwards continue
    from the highest loaded id.
    """
    import itertools

    payload = _read(path, _LEDGER_FORMAT)
    ledger = BillingLedger()
    max_id = 0
    for entry in payload["transactions"]:
        txn = Transaction(
            transaction_id=entry["transaction_id"],
            consumer=entry["consumer"],
            dataset=entry["dataset"],
            alpha=entry["alpha"],
            delta=entry["delta"],
            price=entry["price"],
            epsilon_prime=entry["epsilon_prime"],
        )
        ledger._append(txn)
        max_id = max(max_id, txn.transaction_id)
    ledger._ids = itertools.count(max_id + 1)
    return ledger
