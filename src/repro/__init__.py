"""repro -- reproduction of *Trading Private Range Counting over Big IoT Data*.

Cai & He, ICDCS 2019.  The library implements the paper's full system:

* :mod:`repro.estimators` -- the RankCounting estimator (unbiased,
  ``Var ≤ 8k/p²``), the BasicCounting baseline, and Theorem 3.3 calibration;
* :mod:`repro.privacy` -- Laplace/geometric mechanisms, amplification by
  sampling (Lemma 3.4), and the privacy-budget optimizer (problem (3));
* :mod:`repro.pricing` -- the variance model ``V(α, δ)``, the
  arbitrage-avoiding inverse-variance price family (Theorem 4.2), the
  property checker, and the averaging-attack adversary (Example 4.1);
* :mod:`repro.iot` -- simulated devices, base station, topologies and
  message-cost metering;
* :mod:`repro.datasets` -- the CityPulse pollution surrogate and synthetic
  workloads;
* :mod:`repro.core` -- the broker, marketplace and the
  :class:`PrivateRangeCountingService` facade;
* :mod:`repro.streaming` -- continuous private range counting over
  sliding windows with per-epoch privacy budgets (see docs/STREAMING.md).

Quickstart::

    from repro import PrivateRangeCountingService
    from repro.datasets import generate_citypulse

    data = generate_citypulse()
    service = PrivateRangeCountingService.from_citypulse(data, "ozone", k=16)
    answer = service.answer(60.0, 100.0, alpha=0.1, delta=0.5)
    print(answer.value, answer.price, answer.epsilon_prime)
"""

from repro.core import (
    AccuracySpec,
    ArbitrageConsumer,
    ArbitrageOutcome,
    AuditReport,
    ContinuousMonitor,
    DataBroker,
    HonestConsumer,
    Marketplace,
    PrivateAnswer,
    PrivateRangeCountingService,
    QueryPlanner,
    RangeQuery,
    Settlement,
    Wallet,
    WindowRelease,
    audit_answer,
    audit_noise_scale,
)
from repro.errors import (
    ArbitrageError,
    CalibrationError,
    ClusterError,
    GatewayClosedError,
    InfeasiblePlanError,
    InsufficientSamplesError,
    InvalidAccuracyError,
    InvalidQueryError,
    LedgerError,
    PricingError,
    PrivacyBudgetExceededError,
    QuotaExceededError,
    RateLimitedError,
    ReproError,
    ServiceOverloadedError,
    ServingError,
    ShardUnavailableError,
    StaleEpochError,
    StreamingError,
)
from repro.streaming import (
    StreamingBroker,
    StreamingCluster,
    StreamingConfig,
    build_streaming_cluster,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AccuracySpec",
    "ArbitrageConsumer",
    "ArbitrageOutcome",
    "AuditReport",
    "audit_answer",
    "audit_noise_scale",
    "ContinuousMonitor",
    "WindowRelease",
    "DataBroker",
    "HonestConsumer",
    "Marketplace",
    "PrivateAnswer",
    "PrivateRangeCountingService",
    "QueryPlanner",
    "RangeQuery",
    "Settlement",
    "Wallet",
    "ReproError",
    "InvalidQueryError",
    "InvalidAccuracyError",
    "CalibrationError",
    "InfeasiblePlanError",
    "PrivacyBudgetExceededError",
    "PricingError",
    "ArbitrageError",
    "InsufficientSamplesError",
    "LedgerError",
    "ServingError",
    "ServiceOverloadedError",
    "RateLimitedError",
    "QuotaExceededError",
    "GatewayClosedError",
    "ClusterError",
    "ShardUnavailableError",
    "StreamingError",
    "StaleEpochError",
    "StreamingBroker",
    "StreamingCluster",
    "StreamingConfig",
    "build_streaming_cluster",
]
