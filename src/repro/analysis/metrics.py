"""Error metrics and query-workload generation for the experiment harness.

The paper's evaluation reports the *maximum relative error* of a workload
of range-counting queries ("estimating the air pollution levels with
different ranges").  :func:`make_workload` reproduces that setup: a seeded
set of quantile-anchored ranges with varied selectivity over a value
column; the metric helpers turn (estimate, truth) pairs into the numbers
Figures 2--6 plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.estimators.exact import SortedColumn

__all__ = [
    "relative_error",
    "max_relative_error",
    "mean_relative_error",
    "QueryWorkload",
    "make_workload",
]


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate − truth| / truth`` (normalizing by 1 when truth is 0)."""
    denom = abs(truth) if truth != 0 else 1.0
    return abs(estimate - truth) / denom


def max_relative_error(pairs: Sequence[Tuple[float, float]]) -> float:
    """Maximum relative error over (estimate, truth) pairs."""
    if not pairs:
        raise ValueError("need at least one (estimate, truth) pair")
    return max(relative_error(e, t) for e, t in pairs)


def mean_relative_error(pairs: Sequence[Tuple[float, float]]) -> float:
    """Mean relative error over (estimate, truth) pairs."""
    if not pairs:
        raise ValueError("need at least one (estimate, truth) pair")
    return sum(relative_error(e, t) for e, t in pairs) / len(pairs)


@dataclass(frozen=True)
class QueryWorkload:
    """A fixed set of range queries with their exact counts.

    ``ranges[i]`` is the ``(low, high)`` pair of query ``i``;
    ``truths[i]`` its exact count over the source column.
    """

    ranges: Tuple[Tuple[float, float], ...]
    truths: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.ranges) != len(self.truths):
            raise ValueError("ranges and truths must be parallel")

    def __len__(self) -> int:
        return len(self.ranges)

    def __iter__(self):
        return iter(zip(self.ranges, self.truths))


def make_workload(
    values: np.ndarray,
    num_queries: int = 20,
    seed: int = 42,
    min_selectivity: float = 0.05,
    max_selectivity: float = 0.9,
) -> QueryWorkload:
    """Generate a seeded workload of quantile-anchored range queries.

    Each query selects a random quantile band of width uniform in
    ``[min_selectivity, max_selectivity]`` at a random position, so the
    workload mixes narrow and wide ranges the way the paper's "different
    ranges" evaluation does.  Exact counts are precomputed for metric use.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if not 0.0 < min_selectivity <= max_selectivity <= 1.0:
        raise ValueError("need 0 < min_selectivity <= max_selectivity <= 1")
    column = SortedColumn(values)
    if len(column) == 0:
        raise ValueError("cannot build a workload over an empty column")
    rng = np.random.default_rng(seed)
    ranges: List[Tuple[float, float]] = []
    truths: List[int] = []
    for _ in range(num_queries):
        width = rng.uniform(min_selectivity, max_selectivity)
        start = rng.uniform(0.0, 1.0 - width)
        low, high = column.quantile_range(start, start + width)
        ranges.append((low, high))
        truths.append(column.count(low, high))
    return QueryWorkload(ranges=tuple(ranges), truths=tuple(truths))
