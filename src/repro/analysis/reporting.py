"""ASCII reporting: the tables and series the benchmark harness prints.

Benches regenerate the paper's figures as printed series; these helpers
keep the formatting consistent (fixed-width columns, 4-significant-digit
floats) so EXPERIMENTS.md can quote bench output verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_value", "format_table", "format_series", "ascii_chart"]


def format_value(value: object, precision: int = 4) -> str:
    """Render one cell: floats to ``precision`` significant digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table with a header rule."""
    rendered: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rendered
    ]
    return "\n".join([header_line, rule, *body])


def format_series(
    label: str,
    xs: Sequence[object],
    ys: Sequence[object],
    x_name: str = "x",
    y_name: str = "y",
    precision: int = 4,
) -> str:
    """Render one figure series as a two-column table with a title line."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be parallel")
    table = format_table([x_name, y_name], zip(xs, ys), precision)
    return f"# {label}\n{table}"


def ascii_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render a terminal scatter/line chart of one series.

    A dependency-free visual for bench output: x is mapped to columns, y to
    rows, points marked with ``*``; the y-axis prints its min/max and the
    x-axis its endpoints.  Not a plotting library -- just enough to see a
    figure's shape in CI logs.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be parallel")
    if len(xs) == 0:
        raise ValueError("need at least one point")
    if width < 8 or height < 3:
        raise ValueError("chart must be at least 8x3")
    x_arr = [float(x) for x in xs]
    y_arr = [float(y) for y in ys]
    x_min, x_max = min(x_arr), max(x_arr)
    y_min, y_max = min(y_arr), max(y_arr)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(x_arr, y_arr):
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    lines.append(f"{y_max:>10.4g} |" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_min:>10.4g} |" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    left = f"{x_min:.4g}"
    right = f"{x_max:.4g}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * 12 + left + " " * pad + right)
    return "\n".join(lines)
