"""Experiment sweeps: the computations behind every figure of Section V.

Each ``sweep_*`` function reproduces one evaluation axis of the paper and
returns a :class:`SweepResult` -- a named table of rows that the benchmark
harness prints and EXPERIMENTS.md records.  The functions are
size-parameterized so the unit tests can run them on small inputs while the
benches use paper-scale data.

Mapping to the paper (see DESIGN.md experiment index):

* Figure 2 -> :func:`sweep_sampling_probability`
* Figure 3 -> :func:`sweep_alpha_delta`
* Figure 4 -> :func:`sweep_data_size`
* Figure 5 -> :func:`sweep_privacy_budget`
* Figure 6 -> :func:`sweep_p_privacy`
* Ablation A1 -> :func:`compare_estimators`
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import QueryWorkload, make_workload, relative_error
from repro.analysis.reporting import format_table
from repro.datasets.partition import partition_even
from repro.estimators.base import NodeData, NodeSample
from repro.estimators.basic import BasicCountingEstimator
from repro.estimators.calibration import (
    expected_sample_volume,
    required_sampling_rate,
)
from repro.estimators.rank import RankCountingEstimator
from repro.privacy.laplace import sample_laplace

__all__ = [
    "SweepResult",
    "sweep_sampling_probability",
    "sweep_alpha_delta",
    "sweep_data_size",
    "sweep_privacy_budget",
    "sweep_p_privacy",
    "compare_estimators",
]


@dataclass(frozen=True)
class SweepResult:
    """One experiment's output: a named table."""

    name: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    def table(self) -> str:
        """Render the rows as an aligned ASCII table."""
        return f"# {self.name}\n" + format_table(self.headers, self.rows)

    def column(self, header: str) -> List[object]:
        """Extract one column by header name."""
        try:
            idx = self.headers.index(header)
        except ValueError:
            raise KeyError(f"no column {header!r} in {self.name}") from None
        return [row[idx] for row in self.rows]


def _make_nodes(values: np.ndarray, k: int) -> List[NodeData]:
    shards = partition_even(values, k)
    return [
        NodeData(node_id=i + 1, values=shard) for i, shard in enumerate(shards)
    ]


def _sample_nodes(
    nodes: Sequence[NodeData], p: float, rng: np.random.Generator
) -> List[NodeSample]:
    return [node.sample(p, rng) for node in nodes]


def _workload_errors(
    samples: Sequence[NodeSample],
    workload: QueryWorkload,
    estimator: RankCountingEstimator,
) -> List[float]:
    n = sum(s.node_size for s in samples)
    estimates = estimator.estimate_many(samples, list(workload.ranges))
    clamped = np.clip(estimates, 0.0, float(n))
    return [
        relative_error(float(value), truth)
        for value, truth in zip(clamped, workload.truths)
    ]


def sweep_sampling_probability(
    values: np.ndarray,
    k: int,
    ps: Sequence[float],
    num_queries: int = 20,
    trials: int = 3,
    seed: int = 42,
) -> SweepResult:
    """Figure 2: max relative error vs sampling probability ``p``.

    For each rate the nodes are re-sampled ``trials`` times; the reported
    error is the maximum over the workload, averaged over trials (the
    paper plots single noisy runs; averaging a few trials keeps the same
    shape with less flicker).
    """
    values = np.asarray(values, dtype=np.float64)
    nodes = _make_nodes(values, k)
    workload = make_workload(values, num_queries=num_queries, seed=seed)
    estimator = RankCountingEstimator()
    rng = np.random.default_rng(seed)
    rows = []
    for p in ps:
        max_errors = []
        all_errors = []
        for _ in range(trials):
            samples = _sample_nodes(nodes, p, rng)
            errors = _workload_errors(samples, workload, estimator)
            max_errors.append(max(errors))
            all_errors.extend(errors)
        rows.append(
            (
                float(p),
                float(np.mean(max_errors)),
                float(np.mean(all_errors)),
                expected_sample_volume(len(values), p),
            )
        )
    return SweepResult(
        name="fig2: max relative error vs sampling probability",
        headers=("p", "max_rel_err", "mean_rel_err", "expected_samples"),
        rows=tuple(rows),
    )


def sweep_alpha_delta(
    values: np.ndarray,
    k: int,
    levels: Sequence[float],
    num_queries: int = 20,
    trials: int = 3,
    seed: int = 42,
) -> SweepResult:
    """Figure 3: max relative error as ``α`` and ``δ`` sweep together.

    The paper increases both parameters from 0.08 to 0.8 and calibrates
    ``p`` per Theorem 3.3 for each level, then measures the achieved
    workload error.  Besides the raw max relative error (which explodes on
    narrow queries at very sparse rates), the table reports the two
    quantities Definition 2.2 actually guarantees: the max scaled error
    ``|γ̂ − γ|/n`` (to compare against α) and the fraction of answers
    within the ``α·n`` tolerance (to compare against δ).
    """
    values = np.asarray(values, dtype=np.float64)
    nodes = _make_nodes(values, k)
    workload = make_workload(values, num_queries=num_queries, seed=seed)
    estimator = RankCountingEstimator()
    rng = np.random.default_rng(seed)
    n = len(values)
    rows = []
    for level in levels:
        p = required_sampling_rate(level, level, k, n)
        max_errors = []
        scaled_errors = []
        hits = 0
        total = 0
        for _ in range(trials):
            samples = _sample_nodes(nodes, p, rng)
            errors = []
            for (low, high), truth in workload:
                estimate = estimator.estimate(samples, low, high).clamped()
                errors.append(relative_error(estimate, truth))
                scaled = abs(estimate - truth) / n
                scaled_errors.append(scaled)
                hits += scaled <= level
                total += 1
            max_errors.append(max(errors))
        rows.append(
            (
                float(level),
                float(level),
                p,
                float(np.mean(max_errors)),
                float(np.max(scaled_errors)),
                hits / total,
            )
        )
    return SweepResult(
        name="fig3: max relative error vs (alpha, delta)",
        headers=(
            "alpha",
            "delta",
            "p",
            "max_rel_err",
            "max_err_over_n",
            "within_alpha_rate",
        ),
        rows=tuple(rows),
    )


def sweep_data_size(
    values: np.ndarray,
    k: int,
    fractions: Sequence[float],
    alpha: float = 0.055,
    delta: float = 0.5,
) -> SweepResult:
    """Figure 4: calibrated sampling probability vs data size.

    The paper fixes ``α = 0.055, δ = 0.5`` and grows the dataset from 10%
    to 100%; the Theorem 3.3 rate decays like ``1/n`` while the expected
    transmitted sample volume stays flat.
    """
    values = np.asarray(values, dtype=np.float64)
    rows = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fractions must lie in (0, 1]")
        n = max(1, int(len(values) * fraction))
        p = required_sampling_rate(alpha, delta, k, n)
        rows.append((float(fraction), n, p, expected_sample_volume(n, p)))
    return SweepResult(
        name="fig4: sampling probability vs data size",
        headers=("fraction", "n", "p", "expected_samples"),
        rows=tuple(rows),
    )


def sweep_privacy_budget(
    columns: Mapping[str, np.ndarray],
    k: int,
    epsilons: Sequence[float],
    p: float = 0.4,
    num_queries: int = 10,
    trials: int = 3,
    seed: int = 42,
) -> SweepResult:
    """Figure 5: relative error vs privacy budget ε at ``p = 0.4``.

    For each dataset column (the five pollutant indexes) and each ε, the
    noisy answer ``γ̂ + Lap((1/p)/ε)`` is compared against the truth; the
    row records the workload's mean relative error averaged over trials.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"sampling probability must be in (0, 1], got {p}")
    estimator = RankCountingEstimator()
    rng = np.random.default_rng(seed)
    rows = []
    for name, values in columns.items():
        values = np.asarray(values, dtype=np.float64)
        nodes = _make_nodes(values, k)
        workload = make_workload(values, num_queries=num_queries, seed=seed)
        n = len(values)
        for epsilon in epsilons:
            if epsilon <= 0:
                raise ValueError("epsilons must be positive")
            scale = (1.0 / p) / epsilon
            errors = []
            for _ in range(trials):
                samples = _sample_nodes(nodes, p, rng)
                estimates = estimator.estimate_many(
                    samples, list(workload.ranges)
                )
                noise = sample_laplace(scale, rng, size=len(estimates))
                noisy = np.clip(estimates + noise, 0.0, float(n))
                errors.extend(
                    relative_error(float(value), truth)
                    for value, truth in zip(noisy, workload.truths)
                )
            rows.append((name, float(epsilon), float(np.mean(errors))))
    return SweepResult(
        name="fig5: relative error vs privacy budget (p=0.4)",
        headers=("dataset", "epsilon", "mean_rel_err"),
        rows=tuple(rows),
    )


def sweep_p_privacy(
    values: np.ndarray,
    k: int,
    ps: Sequence[float],
    epsilons: Sequence[float],
    num_queries: int = 10,
    trials: int = 3,
    seed: int = 42,
) -> SweepResult:
    """Figure 6: accuracy vs sampling probability under several ε budgets.

    The noise scale is ``(1/p)/ε`` -- the sensitivity of the sampled
    estimator is proportional to ``1/p`` (the paper's
    ``GS(γ̂) ∝ 1/p`` observation), so raising ``p`` shrinks both sampling
    error *and* noise.
    """
    values = np.asarray(values, dtype=np.float64)
    nodes = _make_nodes(values, k)
    workload = make_workload(values, num_queries=num_queries, seed=seed)
    estimator = RankCountingEstimator()
    rng = np.random.default_rng(seed)
    n = len(values)
    rows = []
    for epsilon in epsilons:
        if epsilon <= 0:
            raise ValueError("epsilons must be positive")
        for p in ps:
            scale = (1.0 / p) / epsilon
            errors = []
            for _ in range(trials):
                samples = _sample_nodes(nodes, p, rng)
                estimates = estimator.estimate_many(
                    samples, list(workload.ranges)
                )
                noise = sample_laplace(scale, rng, size=len(estimates))
                noisy = np.clip(estimates + noise, 0.0, float(n))
                errors.extend(
                    relative_error(float(value), truth)
                    for value, truth in zip(noisy, workload.truths)
                )
            rows.append((float(epsilon), float(p), float(np.mean(errors))))
    return SweepResult(
        name="fig6: relative error vs sampling probability under epsilon",
        headers=("epsilon", "p", "mean_rel_err"),
        rows=tuple(rows),
    )


def compare_estimators(
    values: np.ndarray,
    k: int,
    ps: Sequence[float],
    num_queries: int = 20,
    trials: int = 3,
    seed: int = 42,
) -> SweepResult:
    """Ablation A1: RankCounting vs BasicCounting error and variance bounds.

    Reproduces the Section III-A comparison: RankCounting's ``8k/p²``
    variance bound is range-independent, while BasicCounting's grows with
    the true count; the table reports measured max errors side by side
    with both bounds.
    """
    values = np.asarray(values, dtype=np.float64)
    nodes = _make_nodes(values, k)
    workload = make_workload(values, num_queries=num_queries, seed=seed)
    rank_est = RankCountingEstimator()
    basic_est = BasicCountingEstimator()
    rng = np.random.default_rng(seed)
    rows = []
    for p in ps:
        rank_errors = []
        basic_errors = []
        for _ in range(trials):
            samples = _sample_nodes(nodes, p, rng)
            for (low, high), truth in workload:
                rank = rank_est.estimate(samples, low, high)
                basic = basic_est.estimate(samples, low, high)
                rank_errors.append(relative_error(rank.clamped(), truth))
                basic_errors.append(relative_error(basic.clamped(), truth))
        rank_bound = 8.0 * k / (p * p)
        basic_bound = len(values) * (1.0 - p) / p
        rows.append(
            (
                float(p),
                float(np.max(rank_errors)),
                float(np.max(basic_errors)),
                rank_bound,
                basic_bound,
            )
        )
    return SweepResult(
        name="ablation: RankCounting vs BasicCounting",
        headers=(
            "p",
            "rank_max_rel_err",
            "basic_max_rel_err",
            "rank_var_bound",
            "basic_var_bound",
        ),
        rows=tuple(rows),
    )
