"""Analysis toolkit: metrics, experiment sweeps, ASCII reporting."""

from repro.analysis.bench_compare import (
    BenchComparison,
    MetricDiff,
    classify_metric,
    compare_bench,
    format_comparison,
)
from repro.analysis.claims import (
    CLAIMS,
    Claim,
    ClaimResult,
    Scale,
    claims_table,
    run_claims,
)
from repro.analysis.metrics import (
    QueryWorkload,
    make_workload,
    max_relative_error,
    mean_relative_error,
    relative_error,
)
from repro.analysis.reporting import (
    ascii_chart,
    format_series,
    format_table,
    format_value,
)
from repro.analysis.workloads import (
    band_workload,
    narrow_workload,
    shifted_workload,
    wide_workload,
)
from repro.analysis.sweeps import (
    SweepResult,
    compare_estimators,
    sweep_alpha_delta,
    sweep_data_size,
    sweep_p_privacy,
    sweep_privacy_budget,
    sweep_sampling_probability,
)

__all__ = [
    "BenchComparison",
    "MetricDiff",
    "classify_metric",
    "compare_bench",
    "format_comparison",
    "CLAIMS",
    "Claim",
    "ClaimResult",
    "Scale",
    "claims_table",
    "run_claims",
    "QueryWorkload",
    "make_workload",
    "max_relative_error",
    "mean_relative_error",
    "relative_error",
    "ascii_chart",
    "format_series",
    "format_table",
    "format_value",
    "SweepResult",
    "band_workload",
    "narrow_workload",
    "shifted_workload",
    "wide_workload",
    "compare_estimators",
    "sweep_alpha_delta",
    "sweep_data_size",
    "sweep_p_privacy",
    "sweep_privacy_budget",
    "sweep_sampling_probability",
]
