"""Named query-workload generators beyond the default quantile mix.

Different consumers stress different estimator regimes; these generators
make each regime a first-class, reproducible workload:

* :func:`band_workload` -- fixed AQI-style pollution bands (the paper's
  motivating queries: "moderate", "unhealthy", ...).
* :func:`narrow_workload` -- low-selectivity slivers where relative error
  is hardest (small true counts).
* :func:`wide_workload` -- high-selectivity ranges where BasicCounting's
  variance explodes but RankCounting's does not.
* :func:`shifted_workload` -- one band swept across the value domain
  (a dashboard panning through pollution levels).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import QueryWorkload, make_workload
from repro.estimators.exact import SortedColumn

__all__ = [
    "band_workload",
    "narrow_workload",
    "wide_workload",
    "shifted_workload",
]


def _finish(column: SortedColumn, ranges: List[Tuple[float, float]]) -> QueryWorkload:
    truths = [column.count(low, high) for low, high in ranges]
    return QueryWorkload(ranges=tuple(ranges), truths=tuple(truths))


def band_workload(
    values: np.ndarray,
    bands: Sequence[Tuple[float, float]] = (
        (0.0, 50.0),
        (50.0, 100.0),
        (100.0, 150.0),
        (150.0, 200.0),
    ),
) -> QueryWorkload:
    """Fixed value bands (default: the AQI-style pollution tiers)."""
    column = SortedColumn(values)
    if len(column) == 0:
        raise ValueError("cannot build a workload over an empty column")
    ranges = []
    for low, high in bands:
        if low > high:
            raise ValueError(f"band ({low}, {high}) is inverted")
        ranges.append((float(low), float(high)))
    return _finish(column, ranges)


def narrow_workload(
    values: np.ndarray,
    num_queries: int = 20,
    selectivity: float = 0.01,
    seed: int = 42,
) -> QueryWorkload:
    """Slivers of ~``selectivity`` mass at random positions."""
    if not 0.0 < selectivity <= 0.2:
        raise ValueError("narrow workloads need selectivity in (0, 0.2]")
    return make_workload(
        values,
        num_queries=num_queries,
        seed=seed,
        min_selectivity=selectivity / 2,
        max_selectivity=selectivity,
    )


def wide_workload(
    values: np.ndarray,
    num_queries: int = 20,
    seed: int = 42,
) -> QueryWorkload:
    """Ranges covering 70–98% of the data."""
    return make_workload(
        values,
        num_queries=num_queries,
        seed=seed,
        min_selectivity=0.7,
        max_selectivity=0.98,
    )


def shifted_workload(
    values: np.ndarray,
    band_selectivity: float = 0.2,
    steps: int = 16,
) -> QueryWorkload:
    """One fixed-mass band panned across the whole value domain."""
    if not 0.0 < band_selectivity < 1.0:
        raise ValueError("band_selectivity must be in (0, 1)")
    if steps <= 0:
        raise ValueError("steps must be positive")
    column = SortedColumn(values)
    if len(column) == 0:
        raise ValueError("cannot build a workload over an empty column")
    ranges = []
    positions = np.linspace(0.0, 1.0 - band_selectivity, steps)
    for start in positions:
        ranges.append(column.quantile_range(start, start + band_selectivity))
    return _finish(column, ranges)
