"""Programmatic verification of the paper's claims.

Each :class:`Claim` binds a statement from the paper to an executable
check; :func:`run_claims` executes them all at a configurable scale and
returns pass/fail verdicts with the measured evidence.  This is the
repository's one-shot reproduction certificate -- the CLI exposes it as
``python -m repro verify-claims`` and the test suite runs it small.

Checks are statistical where the claim is statistical; thresholds carry
generous Monte-Carlo slack so a passing run means the *shape* holds, not
that a particular RNG draw was lucky.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.analysis.metrics import make_workload, relative_error
from repro.datasets.partition import partition_even
from repro.estimators.base import NodeData
from repro.estimators.calibration import required_sampling_rate
from repro.estimators.rank import RankCountingEstimator
from repro.pricing.arbitrage import check_arbitrage_avoiding, find_averaging_attack
from repro.pricing.functions import InverseVariancePricing, PowerLawVariancePricing
from repro.pricing.variance_model import VarianceModel
from repro.privacy.amplification import amplified_epsilon
from repro.privacy.laplace import laplace_tail_within, sample_laplace
from repro.privacy.optimizer import optimize_privacy_plan

__all__ = ["Claim", "ClaimResult", "CLAIMS", "run_claims", "claims_table"]


@dataclass(frozen=True)
class ClaimResult:
    """Verdict for one claim: pass/fail plus the measured evidence."""

    claim_id: str
    section: str
    statement: str
    passed: bool
    evidence: str


@dataclass(frozen=True)
class Claim:
    """One verifiable paper claim."""

    claim_id: str
    section: str
    statement: str
    check: Callable[["Scale"], Tuple[bool, str]]

    def run(self, scale: "Scale") -> ClaimResult:
        """Execute the check at the given scale."""
        passed, evidence = self.check(scale)
        return ClaimResult(
            claim_id=self.claim_id,
            section=self.section,
            statement=self.statement,
            passed=passed,
            evidence=evidence,
        )


@dataclass(frozen=True)
class Scale:
    """Knobs shared by every check (kept small for tests, big for CLI)."""

    n: int = 4000
    k: int = 8
    trials: int = 1500
    seed: int = 2014

    def nodes_and_truth(self, low: float, high: float):
        """Seeded uniform node data plus the exact count of one query."""
        rng = np.random.default_rng(self.seed)
        values = rng.uniform(0.0, 100.0, self.n)
        nodes = [
            NodeData(node_id=i + 1, values=shard)
            for i, shard in enumerate(partition_even(values, self.k))
        ]
        truth = sum(node.exact_count(low, high) for node in nodes)
        return values, nodes, truth


# ----------------------------------------------------------------------
# individual checks
# ----------------------------------------------------------------------
def _check_unbiasedness(scale: Scale) -> Tuple[bool, str]:
    _, nodes, truth = scale.nodes_and_truth(20.0, 70.0)
    rng = np.random.default_rng(scale.seed + 1)
    estimator = RankCountingEstimator()
    p = 0.15
    draws = []
    for _ in range(scale.trials):
        samples = [node.sample(p, rng) for node in nodes]
        draws.append(estimator.estimate(samples, 20.0, 70.0).estimate)
    mean = float(np.mean(draws))
    se = float(np.std(draws) / np.sqrt(len(draws)))
    z = abs(mean - truth) / max(se, 1e-12)
    return z < 5.0, f"mean={mean:.2f} vs truth={truth}, |z|={z:.2f}"


def _check_variance_bound(scale: Scale) -> Tuple[bool, str]:
    _, nodes, _ = scale.nodes_and_truth(5.0, 95.0)
    rng = np.random.default_rng(scale.seed + 2)
    estimator = RankCountingEstimator()
    p = 0.1
    draws = [
        estimator.estimate(
            [node.sample(p, rng) for node in nodes], 5.0, 95.0
        ).estimate
        for _ in range(scale.trials)
    ]
    measured = float(np.var(draws))
    bound = 8.0 * scale.k / p**2
    return measured <= bound, f"Var={measured:.1f} <= 8k/p^2={bound:.1f}"


def _check_calibration_coverage(scale: Scale) -> Tuple[bool, str]:
    alpha, delta = 0.1, 0.5
    _, nodes, truth = scale.nodes_and_truth(20.0, 70.0)
    p = required_sampling_rate(alpha, delta, scale.k, scale.n)
    rng = np.random.default_rng(scale.seed + 3)
    estimator = RankCountingEstimator()
    hits = 0
    trials = max(200, scale.trials // 5)
    for _ in range(trials):
        samples = [node.sample(p, rng) for node in nodes]
        estimate = estimator.estimate(samples, 20.0, 70.0).estimate
        hits += abs(estimate - truth) <= alpha * scale.n
    rate = hits / trials
    return rate >= delta - 0.05, f"coverage={rate:.3f} >= delta={delta}"


def _check_amplification(scale: Scale) -> Tuple[bool, str]:
    eps, p = 1.0, 0.3
    eps_prime = amplified_epsilon(eps, p)
    expected = float(np.log(1 - p + p * np.exp(eps)))
    ok = abs(eps_prime - expected) < 1e-12 and eps_prime < eps
    return ok, f"eps'={eps_prime:.4f} < eps={eps} (formula exact)"


def _check_optimizer(scale: Scale) -> Tuple[bool, str]:
    alpha, delta, p = 0.1, 0.5, 0.3
    plan = optimize_privacy_plan(alpha, delta, p, scale.k, scale.n)
    tail = laplace_tail_within(plan.noise_scale, plan.noise_tolerance)
    ok = (
        0 < plan.alpha_prime < alpha
        and delta < plan.delta_prime < 1
        and tail >= delta / plan.delta_prime - 1e-9
        and plan.epsilon_prime < plan.epsilon
    )
    return ok, (
        f"alpha'={plan.alpha_prime:.4f}, delta'={plan.delta_prime:.4f}, "
        f"eps={plan.epsilon:.4f}, eps'={plan.epsilon_prime:.5f}"
    )


def _check_two_phase_accuracy(scale: Scale) -> Tuple[bool, str]:
    alpha, delta, p = 0.1, 0.5, 0.3
    _, nodes, truth = scale.nodes_and_truth(20.0, 70.0)
    plan = optimize_privacy_plan(alpha, delta, p, scale.k, scale.n)
    rng = np.random.default_rng(scale.seed + 4)
    estimator = RankCountingEstimator()
    hits = 0
    trials = max(200, scale.trials // 5)
    for _ in range(trials):
        samples = [node.sample(p, rng) for node in nodes]
        noisy = estimator.estimate(samples, 20.0, 70.0).estimate + float(
            sample_laplace(plan.noise_scale, rng)
        )
        hits += abs(noisy - truth) <= alpha * scale.n
    rate = hits / trials
    return rate >= delta - 0.05, f"coverage={rate:.3f} >= delta={delta}"


def _check_safe_pricing(scale: Scale) -> Tuple[bool, str]:
    pricing = InverseVariancePricing(VarianceModel(n=scale.n), base_price=1e6)
    report = check_arbitrage_avoiding(pricing)
    return report.arbitrage_avoiding, (
        f"violations={len(report.violations)}, attack="
        f"{report.attack is not None}"
    )


def _check_broken_pricing(scale: Scale) -> Tuple[bool, str]:
    pricing = PowerLawVariancePricing(
        VarianceModel(n=scale.n), base_price=1e6, exponent=2.0
    )
    attack = find_averaging_attack(pricing, 0.05, 0.8)
    ok = attack is not None and attack.total_price < attack.target_price
    evidence = "no attack found" if attack is None else (
        f"{attack.copies} copies at {attack.discount:.1%} discount"
    )
    return ok, evidence


def _check_communication_volume(scale: Scale) -> Tuple[bool, str]:
    from repro.core.service import PrivateRangeCountingService

    values, _, __ = scale.nodes_and_truth(0.0, 1.0)
    alpha, delta = 0.1, 0.5
    p = required_sampling_rate(alpha, delta, scale.k, scale.n)
    service = PrivateRangeCountingService.from_values(
        values, k=scale.k, seed=scale.seed
    )
    service.collect(p)
    shipped = service.communication_report()["sample_pairs"]
    expected = scale.n * p
    ok = 0.7 * expected < shipped < 1.3 * expected
    return ok, f"shipped={shipped} vs n*p={expected:.1f}"


def _check_error_decreases_with_p(scale: Scale) -> Tuple[bool, str]:
    values, nodes, _ = scale.nodes_and_truth(0.0, 1.0)
    workload = make_workload(values, num_queries=10, seed=scale.seed)
    estimator = RankCountingEstimator()
    rng = np.random.default_rng(scale.seed + 5)

    def mean_error(p: float) -> float:
        errors = []
        for _ in range(5):
            samples = [node.sample(p, rng) for node in nodes]
            for (low, high), truth in workload:
                estimate = estimator.estimate(samples, low, high).clamped()
                errors.append(relative_error(estimate, truth))
        return float(np.mean(errors))

    sparse, dense = mean_error(0.02), mean_error(0.4)
    return dense < sparse, f"err(p=0.02)={sparse:.4f} > err(p=0.4)={dense:.4f}"


def _check_error_decreases_with_epsilon(scale: Scale) -> Tuple[bool, str]:
    values, nodes, _ = scale.nodes_and_truth(0.0, 1.0)
    workload = make_workload(values, num_queries=10, seed=scale.seed)
    estimator = RankCountingEstimator()
    rng = np.random.default_rng(scale.seed + 6)
    p = 0.4

    def mean_error(epsilon: float) -> float:
        scale_ = (1.0 / p) / epsilon
        errors = []
        for _ in range(5):
            samples = [node.sample(p, rng) for node in nodes]
            for (low, high), truth in workload:
                noisy = estimator.estimate(samples, low, high).estimate
                noisy += float(sample_laplace(scale_, rng))
                noisy = min(max(noisy, 0.0), scale.n)
                errors.append(relative_error(noisy, truth))
        return float(np.mean(errors))

    tight, loose = mean_error(0.01), mean_error(4.0)
    return loose < tight, (
        f"err(eps=0.01)={tight:.4f} > err(eps=4)={loose:.4f}"
    )


def _check_heartbeat_packing(scale: Scale) -> Tuple[bool, str]:
    """At rates where n·p/k ≤ 16, shipments ride heartbeats for free."""
    from repro.core.service import PrivateRangeCountingService
    from repro.iot.messages import HEARTBEAT_CAPACITY

    values, _, __ = scale.nodes_and_truth(0.0, 1.0)
    p = 8.0 * scale.k / scale.n  # ~8 expected pairs per node
    service = PrivateRangeCountingService.from_values(
        values, k=scale.k, seed=scale.seed
    )
    service.collect(min(p, 1.0))
    per_node = [len(s) for s in service.station.samples()]
    packed = sum(1 for c in per_node if c <= HEARTBEAT_CAPACITY)
    ok = packed >= scale.k * 3 // 4
    return ok, f"{packed}/{scale.k} nodes within {HEARTBEAT_CAPACITY} pairs"


def _check_tree_extension(scale: Scale) -> Tuple[bool, str]:
    """Tree-collected samples feed the estimator identically (p = 1)."""
    from repro.iot.aggregation import TreeCollector
    from repro.iot.channel import Channel
    from repro.iot.device import SmartDevice
    from repro.iot.network import Network
    from repro.iot.topology import TreeTopology

    _, nodes, truth = scale.nodes_and_truth(20.0, 70.0)
    topology = TreeTopology.balanced(scale.k, fanout=2)
    network = Network(
        topology=topology,
        channel=Channel(rng=np.random.default_rng(scale.seed)),
    )
    devices = {
        node.node_id: SmartDevice(
            node_id=node.node_id,
            data=node,
            rng=np.random.default_rng(scale.seed + node.node_id),
        )
        for node in nodes
    }
    collector = TreeCollector(network=network, topology=topology,
                              devices=devices)
    collector.collect(1.0)
    estimate = RankCountingEstimator().estimate(
        collector.samples(), 20.0, 70.0
    ).estimate
    ok = abs(estimate - truth) < 1e-9
    return ok, f"tree estimate {estimate:.1f} == truth {truth} at p=1"


CLAIMS: Tuple[Claim, ...] = (
    Claim("C1", "Thm 3.1", "RankCounting is unbiased", _check_unbiasedness),
    Claim("C2", "Thm 3.2", "global variance is at most 8k/p²",
          _check_variance_bound),
    Claim("C3", "Thm 3.3", "the calibrated rate yields (α, δ)-range "
          "counting", _check_calibration_coverage),
    Claim("C4", "Lemma 3.4", "subsampling amplifies ε to "
          "ln(1 − p + p·e^ε) < ε", _check_amplification),
    Claim("C5", "Problem (3)", "the optimizer's plan satisfies every "
          "constraint with ε' < ε", _check_optimizer),
    Claim("C6", "§III-B", "the two-phase noisy release still meets "
          "(α, δ)", _check_two_phase_accuracy),
    Claim("C7", "Thm 4.2", "π = c/V passes all properties and resists the "
          "averaging adversary", _check_safe_pricing),
    Claim("C8", "Example 4.1", "a super-linear price sheet is arbitraged "
          "by buy-cheap-and-average", _check_broken_pricing),
    Claim("C9", "§III-A", "shipped sample volume matches n·p (√(8k)/α "
          "scaling)", _check_communication_volume),
    Claim("C10", "Fig 2", "query error decreases as p grows",
          _check_error_decreases_with_p),
    Claim("C11", "Fig 5", "query error decreases as ε grows",
          _check_error_decreases_with_epsilon),
    Claim("C12", "§III-A", "at strict calibrated rates shipments ride "
          "16-pair heartbeats for free", _check_heartbeat_packing),
    Claim("C13", "§III-A", "the flat-model algorithm extends to a general "
          "tree model unchanged", _check_tree_extension),
)


def run_claims(scale: "Scale | None" = None) -> List[ClaimResult]:
    """Run every claim check; returns verdicts in claim order."""
    scale = scale if scale is not None else Scale()
    return [claim.run(scale) for claim in CLAIMS]


def claims_table(results: List[ClaimResult]) -> str:
    """Render verdicts as the harness's ASCII table."""
    from repro.analysis.reporting import format_table

    return format_table(
        ["id", "section", "verdict", "evidence"],
        [
            (r.claim_id, r.section, "PASS" if r.passed else "FAIL",
             r.evidence)
            for r in results
        ],
    )
