"""Diff two ``BENCH_*.json`` artifacts with metric-aware tolerances.

The bench JSONs mix two very different kinds of numbers:

* **deterministic** metrics -- ε spent, drift, revenue, cache hits,
  routing stats, determinism checksums.  For a fixed seed and config
  these are pure functions of the code, so any change is a behavioural
  change and the gate is tight (relative tolerance ``rel_tol``, plus a
  tiny absolute floor for the ≈0 drift metrics).
* **timing** metrics -- qps, latency percentiles, wall-clock durations.
  These depend on the machine and the scheduler; CI boxes jitter by
  2x run to run.  They are compared only when a ``timing_tol`` factor
  is given, and ignored (reported, never failed) otherwise.

Anything that is neither (unrecognised numeric leaves) is treated as
deterministic: new metrics should fail loudly until classified, not
silently drift.

Used by the ``repro bench-compare`` CLI and the CI bench-smoke job,
which regenerates the smoke artifact on every push and compares it
against the checked-in baseline under ``benchmarks/baselines/``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "MetricDiff",
    "BenchComparison",
    "classify_metric",
    "compare_bench",
    "format_comparison",
]

#: Key fragments that mark a machine/scheduler-dependent measurement.
#: ``speedup`` (process/thread throughput ratio) and ``cores`` (host CPU
#: count) come from the workers phase and vary by box exactly like raw
#: timings do.
_TIMING_PATTERN = re.compile(
    r"(qps|throughput|duration|latency|_ms$|_s$|wall|elapsed|speedup"
    r"|^cores$)",
    re.IGNORECASE,
)

#: Absolute slack for deterministic metrics whose target is ≈ 0 (the
#: drift audits land at ±1e-20 from float summation order).
_ZERO_ATOL = 1e-9


def classify_metric(path: str) -> str:
    """``"timing"`` or ``"deterministic"`` for a dotted metric path."""
    leaf = path.rsplit(".", 1)[-1]
    if _TIMING_PATTERN.search(leaf):
        return "timing"
    return "deterministic"


@dataclass(frozen=True)
class MetricDiff:
    """One leaf-level comparison between baseline and candidate."""

    path: str
    kind: str  # "deterministic" | "timing" | "missing" | "added"
    baseline: Optional[float]
    candidate: Optional[float]
    ok: bool

    @property
    def rel_change(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None:
            return None
        scale = max(abs(self.baseline), _ZERO_ATOL)
        return (self.candidate - self.baseline) / scale


@dataclass(frozen=True)
class BenchComparison:
    """The full diff between two bench payloads."""

    benchmark: str
    diffs: Tuple[MetricDiff, ...]

    @property
    def failures(self) -> Tuple[MetricDiff, ...]:
        return tuple(d for d in self.diffs if not d.ok)

    @property
    def ok(self) -> bool:
        return not self.failures


def _numeric_leaves(node: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted_path, value)`` for every numeric leaf, sorted."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        yield prefix, float(node)
        return
    if isinstance(node, dict):
        for key in sorted(node):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _numeric_leaves(node[key], path)
    elif isinstance(node, (list, tuple)):
        for i, item in enumerate(node):
            yield from _numeric_leaves(item, f"{prefix}[{i}]")


def _within(baseline: float, candidate: float, rel_tol: float) -> bool:
    return abs(candidate - baseline) <= max(
        rel_tol * max(abs(baseline), abs(candidate)), _ZERO_ATOL
    )


def compare_bench(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    *,
    rel_tol: float = 1e-6,
    timing_tol: Optional[float] = None,
    ignore: Sequence[str] = (),
) -> BenchComparison:
    """Compare two bench payloads (the envelopes from ``read_bench_json``).

    Parameters
    ----------
    baseline, candidate:
        Full envelopes (``format``/``version``/``benchmark``/``results``)
        or bare results dicts; envelopes must describe the same benchmark.
    rel_tol:
        Relative tolerance for deterministic metrics.  The default is
        tight on purpose; cross-platform libm differences may need
        ``1e-4`` when baseline and candidate come from different hosts.
    timing_tol:
        Multiplicative noise band for timing metrics -- a timing metric
        fails when it changes by more than this *factor* in either
        direction (e.g. ``2.0`` allows halving/doubling).  ``None``
        (default) reports timing rows but never fails them.
    ignore:
        Dotted-path prefixes to skip entirely (e.g. ``("failover",)``:
        the fault-injection phase's counters depend on where the kill
        lands in the schedule, so they are not run-reproducible).
    """
    base_name = str(baseline.get("benchmark", ""))
    cand_name = str(candidate.get("benchmark", ""))
    if base_name and cand_name and base_name != cand_name:
        raise ValueError(
            f"cannot compare different benchmarks: "
            f"{base_name!r} vs {cand_name!r}"
        )
    base_results = baseline.get("results", baseline)
    cand_results = candidate.get("results", candidate)
    base_leaves = dict(_numeric_leaves(base_results))
    cand_leaves = dict(_numeric_leaves(cand_results))

    diffs: List[MetricDiff] = []
    for path in sorted(base_leaves.keys() | cand_leaves.keys()):
        if any(
            path == prefix or path.startswith(prefix + ".")
            for prefix in ignore
        ):
            continue
        base_value = base_leaves.get(path)
        cand_value = cand_leaves.get(path)
        if cand_value is None:
            # A metric the baseline had but the candidate dropped: a
            # schema regression, always a failure.
            diffs.append(MetricDiff(path, "missing", base_value, None, False))
            continue
        if base_value is None:
            # New metrics are fine -- the next baseline refresh adopts
            # them -- but surface them so the adoption is deliberate.
            diffs.append(MetricDiff(path, "added", None, cand_value, True))
            continue
        kind = classify_metric(path)
        if kind == "timing":
            if timing_tol is None:
                ok = True
            else:
                lo = min(base_value, cand_value)
                hi = max(base_value, cand_value)
                ok = hi <= lo * timing_tol + _ZERO_ATOL
        else:
            ok = _within(base_value, cand_value, rel_tol)
        diffs.append(MetricDiff(path, kind, base_value, cand_value, ok))
    return BenchComparison(
        benchmark=base_name or cand_name, diffs=tuple(diffs)
    )


def format_comparison(
    comparison: BenchComparison, *, verbose: bool = False
) -> str:
    """Human-readable report: failures always, full table on demand."""
    lines: List[str] = []
    counts: Dict[str, int] = {}
    for diff in comparison.diffs:
        counts[diff.kind] = counts.get(diff.kind, 0) + 1
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    name = comparison.benchmark or "<unnamed>"
    lines.append(f"bench-compare [{name}]: {len(comparison.diffs)} metrics ({summary})")
    rows = comparison.diffs if verbose else comparison.failures
    for diff in rows:
        status = "ok" if diff.ok else "FAIL"
        if diff.kind == "missing":
            detail = f"baseline={diff.baseline:.6g} missing from candidate"
        elif diff.kind == "added":
            detail = f"candidate={diff.candidate:.6g} not in baseline"
        else:
            change = diff.rel_change
            detail = (
                f"baseline={diff.baseline:.6g} candidate={diff.candidate:.6g} "
                f"({change:+.2%})"
            )
        lines.append(f"  {status:>4} [{diff.kind}] {diff.path}: {detail}")
    if not comparison.failures:
        lines.append("  all gated metrics within tolerance")
    return "\n".join(lines)
