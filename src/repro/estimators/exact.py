"""Exact range counting -- the ground truth every experiment compares against.

Definition 2.1 of the paper: ``γ(l, u, D) = |{x ∈ D : l ≤ x ≤ u}|``.  The
:class:`SortedColumn` index answers repeated exact queries in ``O(log n)``
via binary search over a sorted copy, and :func:`exact_count` is the one-shot
convenience form.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.estimators.base import NodeData, validate_range

__all__ = ["exact_count", "exact_count_nodes", "SortedColumn"]


def exact_count(values: np.ndarray, low: float, high: float) -> int:
    """Return ``γ(low, high, values)`` -- the exact inclusive range count."""
    validate_range(low, high)
    values = np.asarray(values, dtype=np.float64)
    return int(np.count_nonzero((values >= low) & (values <= high)))


def exact_count_nodes(nodes: Sequence[NodeData], low: float, high: float) -> int:
    """Exact global count over distributed node data (sums local counts)."""
    validate_range(low, high)
    return sum(node.exact_count(low, high) for node in nodes)


class SortedColumn:
    """A sorted immutable index over one value column for repeated queries.

    Building costs ``O(n log n)`` once; each :meth:`count` is two binary
    searches.  Experiment sweeps issue hundreds of queries against the same
    column, so this is the harness's ground-truth oracle.
    """

    def __init__(self, values: Iterable[float]):
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("values must be one-dimensional")
        self._sorted = np.sort(arr)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def values(self) -> np.ndarray:
        """The sorted value vector (read-only view)."""
        view = self._sorted.view()
        view.flags.writeable = False
        return view

    def count(self, low: float, high: float) -> int:
        """Exact inclusive count of values in ``[low, high]``."""
        validate_range(low, high)
        lo = int(np.searchsorted(self._sorted, low, side="left"))
        hi = int(np.searchsorted(self._sorted, high, side="right"))
        return hi - lo

    def quantile_range(self, q_low: float, q_high: float) -> "tuple[float, float]":
        """Value bounds ``(l, u)`` covering the ``[q_low, q_high]`` quantile band.

        Workload generators use this to create queries of controlled
        selectivity (e.g. the paper's "different ranges" of pollution
        levels).
        """
        if not 0.0 <= q_low <= q_high <= 1.0:
            raise ValueError("quantiles must satisfy 0 <= q_low <= q_high <= 1")
        if len(self._sorted) == 0:
            raise ValueError("cannot take quantiles of an empty column")
        low = float(np.quantile(self._sorted, q_low))
        high = float(np.quantile(self._sorted, q_high))
        return low, high
