"""Shared data model for sampling-based range-counting estimators.

The paper's system model (Section II-A, III-A): each of ``k`` nodes holds a
local dataset ``D_i`` and ships a Bernoulli(p) sample of it -- *with local
ranks attached* -- to the base station.  This module defines the three
objects that flow through that pipeline:

* :class:`NodeData` -- a node's raw local values, with the stable ascending
  rank assignment that makes duplicate values unambiguous.
* :class:`NodeSample` -- what actually crosses the network: sampled values,
  their local ranks, the node size ``n_i`` and the sampling rate ``p``.
* :class:`EstimateResult` -- an estimator's answer plus its variance bound,
  so downstream privacy planning and pricing can reason about accuracy.

Estimators implement the :class:`RangeCountingEstimator` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.errors import InvalidQueryError

__all__ = [
    "NodeData",
    "NodeSample",
    "EstimateResult",
    "RangeCountingEstimator",
    "validate_range",
]


def validate_range(low: float, high: float) -> None:
    """Raise :class:`InvalidQueryError` unless ``low <= high`` and both finite."""
    if not (np.isfinite(low) and np.isfinite(high)):
        raise InvalidQueryError(f"range bounds must be finite, got [{low}, {high}]")
    if low > high:
        raise InvalidQueryError(f"lower bound {low} exceeds upper bound {high}")


@dataclass
class NodeData:
    """Raw values held by one IoT node, with stable ascending ranks.

    Ranks are 1-based positions in the stable ascending sort of the values,
    so every element -- including duplicates -- has a distinct rank.  The
    rank of the first element (``fst``) is 1 and of the last (``lst``) is
    ``n_i``, exactly as in the paper.
    """

    node_id: int
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 1:
            raise ValueError("node values must be one-dimensional")
        if len(self.values) and not np.all(np.isfinite(self.values)):
            # NaNs break rank semantics (they sort unpredictably) and
            # infinities break range membership; reject at ingestion.
            raise ValueError("node values must be finite (no NaN/inf)")
        order = np.argsort(self.values, kind="stable")
        self._sorted_values = self.values[order]

    @property
    def size(self) -> int:
        """``n_i``: number of locally collected records."""
        return len(self.values)

    @property
    def sorted_values(self) -> np.ndarray:
        """Values in stable ascending order (rank ``j`` is element ``j-1``)."""
        return self._sorted_values

    def exact_count(self, low: float, high: float) -> int:
        """Ground-truth ``γ(low, high, D_i)`` via binary search."""
        validate_range(low, high)
        lo = int(np.searchsorted(self._sorted_values, low, side="left"))
        hi = int(np.searchsorted(self._sorted_values, high, side="right"))
        return hi - lo

    def sample(self, p: float, rng: np.random.Generator) -> "NodeSample":
        """Bernoulli(p)-sample the local data, attaching local ranks.

        Every element is kept independently with probability ``p``; kept
        elements are reported as ``(value, rank)`` pairs ordered by rank.
        This is the sampling step the device performs before transmitting
        (paper, "The RankCounting Estimator" paragraph).
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"sampling probability must be in [0, 1], got {p}")
        n = self.size
        if n == 0 or p == 0.0:
            kept = np.zeros(0, dtype=np.int64)
        elif p == 1.0:
            kept = np.arange(n, dtype=np.int64)
        else:
            mask = rng.random(n) < p
            kept = np.nonzero(mask)[0].astype(np.int64)
        return NodeSample(
            node_id=self.node_id,
            values=self._sorted_values[kept],
            ranks=kept + 1,
            node_size=n,
            p=p,
        )

    def top_up(
        self,
        existing: "NodeSample",
        new_p: float,
        rng: np.random.Generator,
    ) -> "NodeSample":
        """Extend ``existing`` (drawn at rate ``existing.p``) to rate ``new_p``.

        Implements the paper's re-collection step ("if the existing samples
        are unable to satisfy the query accuracy requirement, more samples
        should be drawn"): each element *not* already sampled is kept with
        the residual probability ``(new_p - p) / (1 - p)`` so the union is a
        Bernoulli(new_p) sample of the node data.
        """
        if existing.node_id != self.node_id:
            raise ValueError("existing sample belongs to a different node")
        if not existing.p <= new_p <= 1.0:
            raise ValueError(
                f"new rate {new_p} must lie in [{existing.p}, 1]"
            )
        if self.size == 0 or new_p == existing.p:
            return existing
        if existing.p >= 1.0:
            return existing
        residual = (new_p - existing.p) / (1.0 - existing.p)
        already = np.zeros(self.size, dtype=bool)
        already[existing.ranks - 1] = True
        fresh_mask = (~already) & (rng.random(self.size) < residual)
        kept = np.nonzero(already | fresh_mask)[0].astype(np.int64)
        return NodeSample(
            node_id=self.node_id,
            values=self._sorted_values[kept],
            ranks=kept + 1,
            node_size=self.size,
            p=new_p,
        )


@dataclass
class NodeSample:
    """A node's transmitted sample: values with local ranks.

    ``values`` and ``ranks`` are parallel arrays ordered by rank (hence also
    by value, since ranks come from a stable ascending sort).  ``node_size``
    is ``n_i``, which the node reports alongside its sample; ``p`` is the
    sampling rate in force when the sample was drawn.
    """

    node_id: int
    values: np.ndarray
    ranks: np.ndarray
    node_size: int
    p: float

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.ranks = np.asarray(self.ranks, dtype=np.int64)
        if len(self.values) != len(self.ranks):
            raise ValueError("values and ranks must be parallel arrays")
        if self.node_size < len(self.values):
            raise ValueError("sample cannot exceed the node size")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"sampling probability must be in [0, 1], got {self.p}")
        if len(self.ranks) > 0:
            if self.ranks.min() < 1 or self.ranks.max() > self.node_size:
                raise ValueError("ranks must lie in [1, node_size]")
            if np.any(np.diff(self.ranks) <= 0):
                raise ValueError("ranks must be strictly increasing")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def sample_size(self) -> int:
        """Number of transmitted ``(value, rank)`` pairs."""
        return len(self.values)


@dataclass(frozen=True)
class EstimateResult:
    """An estimator's output for one range query.

    Attributes
    ----------
    estimate:
        The (possibly fractional, possibly negative) estimated count.
    variance_bound:
        An a-priori upper bound on the estimator's variance, used by the
        privacy planner and the pricing layer.
    node_count:
        Number of nodes whose samples contributed (``k``).
    total_size:
        ``n`` -- the total number of records across all nodes.
    p:
        Sampling rate of the samples used.
    per_node:
        Optional per-node estimates (summing to ``estimate``).
    """

    estimate: float
    variance_bound: float
    node_count: int
    total_size: int
    p: float
    per_node: Optional[List[float]] = None

    def clamped(self) -> float:
        """The estimate projected onto the valid count range ``[0, n]``.

        Unbiasedness is stated for the raw estimator; for *reporting*, a
        count below zero or above ``n`` is never closer to the truth than
        the clamp, so user-facing answers use this value.
        """
        return float(min(max(self.estimate, 0.0), float(self.total_size)))


class RangeCountingEstimator(Protocol):
    """Protocol all sampling-based range-counting estimators implement."""

    #: Human-readable estimator name used in reports and benches.
    name: str

    def estimate(
        self, samples: Sequence[NodeSample], low: float, high: float
    ) -> EstimateResult:
        """Estimate ``γ(low, high, D)`` from per-node samples."""
        ...
