"""Rank-based cumulative counts and quantile estimation from one sample.

The paper's own substrate work (He, Cai, Cheng, *Approximate aggregation
for tracking quantiles and range countings in wireless sensor networks*,
TCS 2015 -- reference [6]) tracks quantiles from the same rank-annotated
samples used for range counting.  This module adds that companion query
type so one collected sample serves both:

* :func:`cumulative_node_estimate` -- unbiased estimate of the *cumulative*
  count ``|{x ∈ D_i : x ≤ v}|``.  It is the one-sided special case of the
  RankCounting rule (the lower boundary sits below all data, so only the
  successor witness matters), hence unbiasedness and the per-node ``8/p²``
  variance bound carry over from Theorem 3.1 with room to spare.
* :func:`estimate_cumulative` -- the global sum across nodes.
* :func:`estimate_quantile` -- the smallest sampled value whose estimated
  global cumulative count reaches ``q·n``; by the ``(α, δ)`` guarantee on
  counts, its *rank* error is within ``α·n`` with probability ``δ``.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.estimators.base import NodeSample

__all__ = [
    "cumulative_node_estimate",
    "estimate_cumulative",
    "estimate_quantile",
]


def cumulative_node_estimate(sample: NodeSample, value: float) -> float:
    """Unbiased estimate of ``|{x ∈ D_i : x ≤ value}|`` from one sample.

    One-sided RankCounting: if a sampled element strictly above ``value``
    exists (the successor, minimal rank ``r_s``), the estimate is
    ``r_s − 1/p``; otherwise every element might be ≤ ``value`` and the
    estimate is ``n_i``.
    """
    if not math.isfinite(value):
        raise ValueError(f"value must be finite, got {value}")
    n_i = sample.node_size
    if n_i == 0:
        return 0.0
    if sample.p <= 0.0:
        raise ValueError("sampling probability must be positive to estimate")
    idx = int(np.searchsorted(sample.values, value, side="right"))
    if idx < len(sample.values):
        return float(sample.ranks[idx]) - 1.0 / sample.p
    return float(n_i)


def estimate_cumulative(samples: Sequence[NodeSample], value: float) -> float:
    """Global cumulative-count estimate ``Σ_i |{x ∈ D_i : x ≤ value}|``."""
    if not samples:
        raise ValueError("at least one node sample is required")
    return sum(cumulative_node_estimate(s, value) for s in samples)


def estimate_quantile(samples: Sequence[NodeSample], q: float) -> float:
    """Estimate the ``q``-quantile of the distributed dataset.

    Returns the smallest *sampled* value whose estimated global cumulative
    count reaches ``q·n``.  The per-node cumulative estimate is monotone in
    the probe value, so a binary search over the pooled sorted sample
    suffices.  Falls back to the largest sampled value when even it does
    not reach the target (possible for ``q`` near 1 under sampling noise).

    Raises
    ------
    ValueError
        For ``q`` outside ``[0, 1]``, an empty sample pool, or empty data.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if not samples:
        raise ValueError("at least one node sample is required")
    n = sum(s.node_size for s in samples)
    if n == 0:
        raise ValueError("cannot take a quantile of empty data")
    pooled: List[float] = sorted(
        float(v) for s in samples for v in s.values
    )
    if not pooled:
        raise ValueError("no sampled values available; increase p")
    target = q * n
    lo, hi = 0, len(pooled) - 1
    if estimate_cumulative(samples, pooled[hi]) < target:
        return pooled[hi]
    while lo < hi:
        mid = (lo + hi) // 2
        if estimate_cumulative(samples, pooled[mid]) >= target:
            hi = mid
        else:
            lo = mid + 1
    return pooled[lo]
