"""Sampling-based range-counting estimators (paper Section III-A).

* :class:`RankCountingEstimator` -- the paper's contribution: rank-assisted,
  unbiased, variance at most ``8k/p²`` independent of the queried range.
* :class:`BasicCountingEstimator` -- the Horvitz–Thompson baseline with
  variance ``γ(1 − p)/p``.
* :mod:`repro.estimators.calibration` -- Theorem 3.3 sampling-rate algebra.
* :mod:`repro.estimators.variance` -- Chebyshev machinery and the delivered
  variance model ``V(α, δ)`` used by pricing.
"""

from repro.estimators.base import (
    EstimateResult,
    NodeData,
    NodeSample,
    RangeCountingEstimator,
    validate_range,
)
from repro.estimators.basic import BasicCountingEstimator, basic_counting_variance
from repro.estimators.calibration import (
    achieved_delta,
    expected_sample_volume,
    expected_transmitted_samples,
    min_feasible_alpha,
    required_sampling_rate,
    validate_accuracy,
)
from repro.estimators.exact import SortedColumn, exact_count, exact_count_nodes
from repro.estimators.quantile import (
    cumulative_node_estimate,
    estimate_cumulative,
    estimate_quantile,
)
from repro.estimators.rank import RankCountingEstimator, rank_counting_node_estimate
from repro.estimators.stratified import (
    StratifiedCountingEstimator,
    StratifiedNodeSample,
    allocate_rates,
    stratify_node,
)
from repro.estimators.variance import (
    chebyshev_confidence,
    chebyshev_tolerance,
    delivered_variance,
    empirical_max_relative_error,
    empirical_variance,
    rank_counting_variance_bound,
)

__all__ = [
    "EstimateResult",
    "NodeData",
    "NodeSample",
    "RangeCountingEstimator",
    "validate_range",
    "BasicCountingEstimator",
    "basic_counting_variance",
    "cumulative_node_estimate",
    "estimate_cumulative",
    "estimate_quantile",
    "RankCountingEstimator",
    "rank_counting_node_estimate",
    "StratifiedCountingEstimator",
    "StratifiedNodeSample",
    "allocate_rates",
    "stratify_node",
    "SortedColumn",
    "exact_count",
    "exact_count_nodes",
    "required_sampling_rate",
    "achieved_delta",
    "min_feasible_alpha",
    "expected_sample_volume",
    "expected_transmitted_samples",
    "validate_accuracy",
    "chebyshev_confidence",
    "chebyshev_tolerance",
    "delivered_variance",
    "empirical_variance",
    "empirical_max_relative_error",
    "rank_counting_variance_bound",
]
