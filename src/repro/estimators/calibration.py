"""Sampling-rate calibration: Theorem 3.3 and its inverses.

Theorem 3.3: with ``k`` nodes and ``n`` records, if the sampling rate
satisfies ``p ≥ (√(2k) / (αn)) · (2 / √(1 − δ))`` then the RankCounting
estimate is an ``(α, δ)``-range counting.  The broker uses this in two
directions:

* **forward** (:func:`required_sampling_rate`): given an accuracy target,
  how densely must devices sample?
* **inverse** (:func:`achieved_delta`, :func:`min_feasible_alpha`): given
  samples already collected at rate ``p`` (the "one sample, multiple
  queries" regime), which intermediate targets ``(α', δ')`` does the sample
  support?  This inverse is what the privacy optimizer sweeps.

The module also exposes the paper's communication-cost quantities:
``|S| = n·p`` expected transmitted samples overall and ``√(8k)/α`` for a
calibrated rate.
"""

from __future__ import annotations

import math

from repro.errors import CalibrationError

__all__ = [
    "required_sampling_rate",
    "achieved_delta",
    "min_feasible_alpha",
    "expected_sample_volume",
    "expected_transmitted_samples",
    "validate_accuracy",
]


def validate_accuracy(alpha: float, delta: float) -> None:
    """Validate an ``(α, δ)`` accuracy pair for calibration purposes.

    Calibration needs ``0 < α ≤ 1`` (a zero tolerance forces exact
    counting) and ``0 ≤ δ < 1`` (a probability-1 guarantee is impossible
    for any sampling estimator).
    """
    if not 0.0 < alpha <= 1.0:
        raise CalibrationError(f"alpha must be in (0, 1], got {alpha}")
    if not 0.0 <= delta < 1.0:
        raise CalibrationError(f"delta must be in [0, 1), got {delta}")


def required_sampling_rate(alpha: float, delta: float, k: int, n: int) -> float:
    """Theorem 3.3's forward rate: ``p = (√(2k)/(αn)) · (2/√(1 − δ))``.

    The value is clipped to 1.0; a result of exactly 1.0 means the accuracy
    target effectively demands full data collection.
    """
    validate_accuracy(alpha, delta)
    if k <= 0:
        raise CalibrationError("k must be a positive node count")
    if n <= 0:
        raise CalibrationError("n must be a positive record count")
    rate = (math.sqrt(2.0 * k) / (alpha * n)) * (2.0 / math.sqrt(1.0 - delta))
    return min(1.0, rate)


def achieved_delta(p: float, alpha: float, k: int, n: int) -> float:
    """Invert Theorem 3.3: the δ′ guaranteed by existing samples at rate ``p``.

    Setting ``(√(2k)/(α'n)) · (2/√(1 − δ')) = p`` and solving gives
    ``δ' = 1 − 8k / (α'·n·p)²``.  The raw value is returned; it is negative
    when the sample is too sparse to certify tolerance ``α'`` at all, and
    callers must check it against their δ target.
    """
    validate_accuracy(alpha, 0.0)
    if not 0.0 < p <= 1.0:
        raise CalibrationError(f"sampling probability must be in (0, 1], got {p}")
    if k <= 0:
        raise CalibrationError("k must be a positive node count")
    if n <= 0:
        raise CalibrationError("n must be a positive record count")
    return 1.0 - 8.0 * k / ((alpha * n * p) ** 2)


def min_feasible_alpha(p: float, k: int, n: int, delta: float = 0.0) -> float:
    """Smallest tolerance α′ certifiable at rate ``p`` with confidence δ.

    From ``achieved_delta(p, α') > δ``:
    ``α' > √(8k / (1 − δ)) / (n·p)``.  Returns that open lower bound.
    """
    if not 0.0 < p <= 1.0:
        raise CalibrationError(f"sampling probability must be in (0, 1], got {p}")
    if not 0.0 <= delta < 1.0:
        raise CalibrationError(f"delta must be in [0, 1), got {delta}")
    if k <= 0:
        raise CalibrationError("k must be a positive node count")
    if n <= 0:
        raise CalibrationError("n must be a positive record count")
    return math.sqrt(8.0 * k / (1.0 - delta)) / (n * p)


def expected_sample_volume(n: int, p: float) -> float:
    """Expected number of transmitted samples, ``|S| = n·p``."""
    if n < 0:
        raise CalibrationError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise CalibrationError(f"sampling probability must be in [0, 1], got {p}")
    return n * p


def expected_transmitted_samples(alpha: float, k: int) -> float:
    """Paper's communication overhead at the calibrated rate: ``√(8k)/α``.

    With ``p = √(8k)/(αn)`` (the constant-probability calibration), the
    expected sample volume ``n·p`` is independent of ``n``.
    """
    if not 0.0 < alpha <= 1.0:
        raise CalibrationError(f"alpha must be in (0, 1], got {alpha}")
    if k <= 0:
        raise CalibrationError("k must be a positive node count")
    return math.sqrt(8.0 * k) / alpha
