"""Variance bounds and Chebyshev machinery shared by planner and pricing.

Three quantities connect the estimator layer to privacy and pricing:

* ``Var[γ̂(l, u, S)] ≤ 8k/p²`` -- Theorem 3.2's bound for RankCounting.
* Chebyshev's inequality turns a variance into an ``(α, δ)`` accuracy
  statement: ``Pr[|γ̂ − γ| ≤ t] ≥ 1 − Var/t²``.
* The Chebyshev-calibrated "delivered variance" ``V(α, δ) = (αn)²(1 − δ)``
  is the largest variance for which Chebyshev still certifies the
  ``(α, δ)`` guarantee; the pricing layer treats it as the product's
  quality level.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "rank_counting_variance_bound",
    "chebyshev_confidence",
    "chebyshev_tolerance",
    "delivered_variance",
    "empirical_variance",
    "empirical_max_relative_error",
]


def rank_counting_variance_bound(k: int, p: float) -> float:
    """Theorem 3.2's global variance bound ``8k / p²``."""
    if k <= 0:
        raise ValueError("k must be a positive node count")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"sampling probability must be in (0, 1], got {p}")
    return 8.0 * k / (p * p)


def chebyshev_confidence(variance: float, tolerance: float) -> float:
    """Lower bound on ``Pr[|X − E X| ≤ tolerance]`` given ``Var X``.

    Returns ``max(0, 1 − variance / tolerance²)``; 0 when the bound is
    vacuous.
    """
    if variance < 0:
        raise ValueError("variance must be non-negative")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    return max(0.0, 1.0 - variance / (tolerance * tolerance))


def chebyshev_tolerance(variance: float, delta: float) -> float:
    """Smallest tolerance ``t`` with Chebyshev confidence at least ``delta``.

    Solving ``1 − Var/t² = δ`` gives ``t = sqrt(Var / (1 − δ))``.
    """
    if variance < 0:
        raise ValueError("variance must be non-negative")
    if not 0.0 <= delta < 1.0:
        raise ValueError(f"delta must be in [0, 1), got {delta}")
    return math.sqrt(variance / (1.0 - delta))


def delivered_variance(alpha: float, delta: float, n: int) -> float:
    """Chebyshev-calibrated variance of an ``(α, δ)`` product: ``(αn)²(1−δ)``.

    This is the variance model ``V(α, δ)`` used throughout Section IV: the
    largest variance for which Chebyshev certifies
    ``Pr[|err| ≤ αn] ≥ δ``.  It decreases in ``δ`` and increases in ``α``,
    matching the paper's monotonicity discussion.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if not 0.0 <= delta < 1.0:
        raise ValueError(f"delta must be in [0, 1), got {delta}")
    if n <= 0:
        raise ValueError("n must be a positive record count")
    return (alpha * n) ** 2 * (1.0 - delta)


def empirical_variance(estimates: Sequence[float]) -> float:
    """Unbiased sample variance of repeated estimates (ddof=1)."""
    arr = np.asarray(estimates, dtype=np.float64)
    if len(arr) < 2:
        raise ValueError("need at least two estimates for a sample variance")
    return float(arr.var(ddof=1))


def empirical_max_relative_error(
    estimates: Sequence[float],
    truths: Sequence[float],
) -> float:
    """Max relative error across paired (estimate, truth) observations.

    The paper's evaluation metric (Figures 2, 3): relative error of each
    query is ``|γ̂ − γ| / γ``; zero-truth queries fall back to normalizing
    by 1 so they still register absolute deviation.
    """
    est = np.asarray(estimates, dtype=np.float64)
    tru = np.asarray(truths, dtype=np.float64)
    if est.shape != tru.shape:
        raise ValueError("estimates and truths must have identical shape")
    if len(est) == 0:
        raise ValueError("need at least one observation")
    denom = np.where(tru == 0, 1.0, np.abs(tru))
    return float(np.max(np.abs(est - tru) / denom))
