"""RankCounting -- the paper's rank-assisted range-counting estimator.

Section III-A, "The RankCounting Estimator".  Each node Bernoulli(p)-samples
its data and transmits ``(value, local rank)`` pairs.  For a query
``[l, u]`` the estimator looks only at the *boundary* samples:

* ``p(l, i)`` -- the sampled element closest below ``l`` (the predecessor);
* ``s(u, i)`` -- the sampled element closest above ``u`` (the successor);

and reconstructs the in-range count from their ranks, applying a ``1/p``
correction per existing boundary witness:

====================  =============================================
case                  estimate of ``γ(l, u, i)``
====================  =============================================
both exist            ``γ(p(l), s(u), i) − 2/p`` = ``r_s − r_p + 1 − 2/p``
only predecessor      ``γ(p(l), lst, i) − 1/p`` = ``n_i − r_p + 1 − 1/p``
only successor        ``γ(fst, s(u), i) − 1/p`` = ``r_s − 1/p``
neither               ``γ(fst, lst, i)`` = ``n_i``
====================  =============================================

**Tie handling.**  Ranks come from a *stable* ascending sort, so duplicates
get distinct consecutive ranks and every rank-interval count is exact.  The
predecessor is chosen among sampled elements with value strictly below ``l``
(the maximum-rank one), the successor among values strictly above ``u``
(the minimum-rank one); elements equal to a bound are inside the range.
With ``m`` elements strictly below ``l``, the boundary gap
``r(l) − r_p`` is then a Geometric(p) variable truncated at ``m`` with an
atom of mass ``(1 − p)^m`` at the no-witness case -- precisely the
distribution that makes the four-case estimator unbiased (Theorem 3.1) with
per-node variance at most ``8/p²`` and global variance at most ``8k/p²``
(Theorem 3.2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidQueryError
from repro.estimators.base import EstimateResult, NodeSample, validate_range

__all__ = ["RankCountingEstimator", "rank_counting_node_estimate"]


def rank_counting_node_estimate(sample: NodeSample, low: float, high: float) -> float:
    """Apply the four-case RankCounting rule to one node sample.

    Returns the (possibly fractional or negative) estimate of
    ``γ(low, high, D_i)``.  Requires ``sample.p > 0`` unless the node is
    known to be empty, in which case the answer is exactly 0.
    """
    validate_range(low, high)
    n_i = sample.node_size
    if n_i == 0:
        return 0.0
    p = sample.p
    if p <= 0.0:
        raise ValueError("sampling probability must be positive to estimate")

    values = sample.values
    ranks = sample.ranks

    # Sampled values are rank-ordered, hence value-ordered: binary search
    # locates the boundary witnesses.  ``idx_low`` counts sampled values
    # strictly below ``low``; ``idx_high`` counts those <= ``high``.
    idx_low = int(np.searchsorted(values, low, side="left"))
    idx_high = int(np.searchsorted(values, high, side="right"))

    has_pred = idx_low > 0
    has_succ = idx_high < len(values)

    if has_pred and has_succ:
        r_pred = int(ranks[idx_low - 1])
        r_succ = int(ranks[idx_high])
        return (r_succ - r_pred + 1) - 2.0 / p
    if has_pred:
        r_pred = int(ranks[idx_low - 1])
        return (n_i - r_pred + 1) - 1.0 / p
    if has_succ:
        r_succ = int(ranks[idx_high])
        return float(r_succ) - 1.0 / p
    return float(n_i)


class RankCountingEstimator:
    """The paper's estimator: per-node four-case rule, summed over nodes.

    The global estimate ``γ̂(l, u, S) = Σ_i γ̂(l, u, i)`` is unbiased for
    ``γ(l, u, D)`` with variance at most ``8k/p²`` (Theorem 3.2) -- a bound
    that, unlike BasicCounting's ``γ(1 − p)/p``, does not grow with the
    queried range.
    """

    name = "RankCounting"

    def estimate(
        self, samples: Sequence[NodeSample], low: float, high: float
    ) -> EstimateResult:
        """Estimate ``γ(low, high, D)`` from per-node rank samples."""
        validate_range(low, high)
        if not samples:
            raise ValueError("at least one node sample is required")
        non_empty = [s for s in samples if s.node_size > 0]
        p = non_empty[0].p if non_empty else samples[0].p
        if any(abs(s.p - p) > 1e-12 for s in non_empty):
            raise ValueError("all node samples must share one sampling rate")
        if non_empty and p <= 0.0:
            raise ValueError("sampling probability must be positive to estimate")

        per_node: List[float] = [
            rank_counting_node_estimate(s, low, high) for s in samples
        ]
        k = len(samples)
        total_size = sum(s.node_size for s in samples)
        variance_bound = 8.0 * k / (p * p) if p > 0 else 0.0
        return EstimateResult(
            estimate=float(sum(per_node)),
            variance_bound=variance_bound,
            node_count=k,
            total_size=total_size,
            p=p,
            per_node=per_node,
        )

    def estimate_many(
        self,
        samples: Sequence[NodeSample],
        ranges: Sequence[Tuple[float, float]],
    ) -> np.ndarray:
        """Vectorized batch estimation over many ``(low, high)`` ranges.

        Returns one estimate per range, each exactly equal to what
        :meth:`estimate` would produce -- the batch form exists because
        workload sweeps issue hundreds of queries against one sample set,
        and per-node binary searches vectorize cleanly over the query
        axis.
        """
        if not samples:
            raise ValueError("at least one node sample is required")
        if len(ranges) == 0:
            return np.zeros(0, dtype=np.float64)
        lows = np.asarray([r[0] for r in ranges], dtype=np.float64)
        highs = np.asarray([r[1] for r in ranges], dtype=np.float64)
        if not (np.all(np.isfinite(lows)) and np.all(np.isfinite(highs))):
            raise InvalidQueryError("range bounds must be finite")
        if np.any(lows > highs):
            raise InvalidQueryError("every range needs low <= high")

        # Same shared-rate validation as the scalar :meth:`estimate`, so a
        # mixed-p sample list fails identically on both paths.
        non_empty = [s for s in samples if s.node_size > 0]
        shared_p = non_empty[0].p if non_empty else samples[0].p
        if any(abs(s.p - shared_p) > 1e-12 for s in non_empty):
            raise ValueError("all node samples must share one sampling rate")
        if non_empty and shared_p <= 0.0:
            raise ValueError("sampling probability must be positive to estimate")

        totals = np.zeros(len(ranges), dtype=np.float64)
        for sample in samples:
            n_i = sample.node_size
            if n_i == 0:
                continue
            p = sample.p
            values = sample.values
            ranks = sample.ranks
            if len(values) == 0:
                # No witnesses possible: the "neither" case for every range.
                totals += float(n_i)
                continue
            idx_low = np.searchsorted(values, lows, side="left")
            idx_high = np.searchsorted(values, highs, side="right")
            has_pred = idx_low > 0
            has_succ = idx_high < len(values)

            estimates = np.full(len(ranges), float(n_i))
            r_pred = np.where(has_pred, ranks[np.maximum(idx_low - 1, 0)], 0)
            r_succ = np.where(
                has_succ, ranks[np.minimum(idx_high, len(values) - 1)], 0
            )

            both = has_pred & has_succ
            pred_only = has_pred & ~has_succ
            succ_only = ~has_pred & has_succ
            estimates[both] = (
                r_succ[both] - r_pred[both] + 1 - 2.0 / p
            )
            estimates[pred_only] = (n_i - r_pred[pred_only] + 1) - 1.0 / p
            estimates[succ_only] = r_succ[succ_only] - 1.0 / p
            totals += estimates
        return totals
