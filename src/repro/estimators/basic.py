"""BasicCounting -- the paper's baseline Horvitz–Thompson estimator.

Section III-A: "A straightforward estimation (denoted as BasicCounting) to
the range counting is ``γ_B(l, u, S) = |{x ∈ S : l ≤ x ≤ u}| / p``.  This
estimator is unbiased and its variance is ``γ(l, u, D)(1 − p)/p``, which may
grow to ``|D|(1 − p)/p`` when a large range is queried."

The estimator needs only the sampled *values* (ranks are ignored), so its
message cost per transmitted element is lower, but its variance scales with
the true count -- the exact weakness RankCounting removes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidQueryError
from repro.estimators.base import EstimateResult, NodeSample, validate_range

__all__ = ["BasicCountingEstimator", "basic_counting_variance"]


def basic_counting_variance(true_count: int, p: float) -> float:
    """Exact variance of BasicCounting: ``γ(l, u, D) · (1 − p) / p``.

    Each in-range element contributes an independent Bernoulli(p)/p term
    with variance ``(1 − p)/p``; the estimator sums ``γ`` of them.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"sampling probability must be in (0, 1], got {p}")
    if true_count < 0:
        raise ValueError("true_count must be non-negative")
    return true_count * (1.0 - p) / p


class BasicCountingEstimator:
    """Horvitz–Thompson range counting from Bernoulli(p) samples."""

    name = "BasicCounting"

    def estimate(
        self, samples: Sequence[NodeSample], low: float, high: float
    ) -> EstimateResult:
        """Estimate ``γ(low, high, D)`` as the scaled in-range sample count.

        All samples must share one sampling rate ``p > 0``; the worst-case
        variance bound reported is ``n(1 − p)/p`` (the paper's ``|D|``
        bound), since the true count is unknown to the estimator.
        """
        validate_range(low, high)
        if not samples:
            raise ValueError("at least one node sample is required")
        p = samples[0].p
        if any(abs(s.p - p) > 1e-12 for s in samples):
            raise ValueError("all node samples must share one sampling rate")
        if p <= 0.0:
            raise ValueError("sampling probability must be positive to estimate")

        per_node: List[float] = []
        for sample in samples:
            in_range = int(
                np.count_nonzero((sample.values >= low) & (sample.values <= high))
            )
            per_node.append(in_range / p)

        total_size = sum(s.node_size for s in samples)
        return EstimateResult(
            estimate=float(sum(per_node)),
            variance_bound=total_size * (1.0 - p) / p,
            node_count=len(samples),
            total_size=total_size,
            p=p,
            per_node=per_node,
        )

    def estimate_many(
        self,
        samples: Sequence[NodeSample],
        ranges: Sequence[Tuple[float, float]],
    ) -> np.ndarray:
        """Vectorized batch estimation, pointwise equal to :meth:`estimate`.

        Sampled values are sorted (they inherit the rank order), so each
        node's in-range count per query is two binary searches.
        """
        if not samples:
            raise ValueError("at least one node sample is required")
        if len(ranges) == 0:
            return np.zeros(0, dtype=np.float64)
        lows = np.asarray([r[0] for r in ranges], dtype=np.float64)
        highs = np.asarray([r[1] for r in ranges], dtype=np.float64)
        if not (np.all(np.isfinite(lows)) and np.all(np.isfinite(highs))):
            raise InvalidQueryError("range bounds must be finite")
        if np.any(lows > highs):
            raise InvalidQueryError("every range needs low <= high")
        p = samples[0].p
        if any(abs(s.p - p) > 1e-12 for s in samples):
            raise ValueError("all node samples must share one sampling rate")
        if p <= 0.0:
            raise ValueError("sampling probability must be positive to estimate")

        totals = np.zeros(len(ranges), dtype=np.float64)
        for sample in samples:
            values = sample.values
            if len(values) == 0:
                continue
            lo_idx = np.searchsorted(values, lows, side="left")
            hi_idx = np.searchsorted(values, highs, side="right")
            totals += (hi_idx - lo_idx) / p
        return totals
