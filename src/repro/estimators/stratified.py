"""Stratified Bernoulli sampling -- an alternative design ablation.

The paper's devices sample every element at one rate ``p``.  Workload
regime analysis (ablation A7) shows relative error is dominated by sparse
value bands: a band holding 1% of the data gets 1% of the sample.  A
stratified design fixes that by giving each value *stratum* its own rate
``p_s`` and applying per-stratum Horvitz–Thompson estimation:

    γ̂(l, u) = Σ_s |{x ∈ S_s : l ≤ x ≤ u}| / p_s,

which is unbiased with variance ``Σ_s γ_s(1 − p_s)/p_s`` (``γ_s`` the
in-range count inside stratum ``s``).  Under *equal* allocation, sparse
strata are heavily over-sampled, collapsing their relative error at the
same total shipment budget -- the trade-off the A9 ablation measures.

This module is self-contained (its sample type differs from
:class:`~repro.estimators.base.NodeSample`, carrying per-stratum rates)
and is deliberately *not* wired into the broker: it is a design-space
probe, not part of the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.estimators.base import validate_range

__all__ = [
    "StratifiedNodeSample",
    "stratify_node",
    "allocate_rates",
    "StratifiedCountingEstimator",
]


@dataclass
class StratifiedNodeSample:
    """One node's stratified sample.

    ``edges`` are the ``S+1`` stratum boundaries (ascending; elements are
    assigned by half-open bins, the last closed).  ``rates[s]`` is the
    Bernoulli rate used inside stratum ``s``; ``stratum_sizes[s]`` the
    node's total element count there.  ``values``/``strata`` are parallel
    per-sampled-element arrays.
    """

    node_id: int
    edges: Tuple[float, ...]
    rates: Tuple[float, ...]
    stratum_sizes: Tuple[int, ...]
    values: np.ndarray
    strata: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.strata = np.asarray(self.strata, dtype=np.int64)
        strata_count = len(self.edges) - 1
        if strata_count < 1:
            raise ValueError("need at least two edges")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError("edges must be strictly increasing")
        if len(self.rates) != strata_count:
            raise ValueError("one rate per stratum required")
        if len(self.stratum_sizes) != strata_count:
            raise ValueError("one size per stratum required")
        for rate in self.rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rates must be in [0, 1], got {rate}")
        if len(self.values) != len(self.strata):
            raise ValueError("values and strata must be parallel")
        if len(self.strata) and (
            self.strata.min() < 0 or self.strata.max() >= strata_count
        ):
            raise ValueError("stratum ids out of range")

    @property
    def node_size(self) -> int:
        """Total elements held by the node."""
        return int(sum(self.stratum_sizes))

    @property
    def sample_size(self) -> int:
        """Transmitted element count."""
        return len(self.values)


def _assign_strata(values: np.ndarray, edges: Sequence[float]) -> np.ndarray:
    """Bin values into strata (half-open bins, last closed)."""
    idx = np.searchsorted(np.asarray(edges[1:-1], dtype=np.float64),
                          values, side="right")
    return idx.astype(np.int64)


def stratify_node(
    node_id: int,
    values: np.ndarray,
    edges: Sequence[float],
    rates: Sequence[float],
    rng: np.random.Generator,
) -> StratifiedNodeSample:
    """Draw a stratified Bernoulli sample of one node's data.

    Values outside ``[edges[0], edges[-1]]`` land in the first/last
    stratum (clamped binning), so the strata always partition the data.
    """
    values = np.asarray(values, dtype=np.float64)
    strata = _assign_strata(values, edges)
    rates_arr = np.asarray(rates, dtype=np.float64)
    keep = rng.random(len(values)) < rates_arr[strata]
    sizes = np.bincount(strata, minlength=len(edges) - 1)
    return StratifiedNodeSample(
        node_id=node_id,
        edges=tuple(float(e) for e in edges),
        rates=tuple(float(r) for r in rates),
        stratum_sizes=tuple(int(c) for c in sizes),
        values=values[keep],
        strata=strata[keep],
    )


def allocate_rates(
    stratum_sizes: Sequence[int],
    budget: float,
    mode: str = "proportional",
) -> List[float]:
    """Split an expected-sample ``budget`` into per-stratum rates.

    ``proportional`` reproduces uniform Bernoulli (every stratum gets rate
    ``budget/N``); ``equal`` gives each stratum the same expected *count*,
    over-sampling sparse strata; ``sqrt`` interpolates (allocation
    proportional to ``√size``, the Neyman allocation under equal
    within-stratum variance scales).  Rates are clipped to 1.
    """
    sizes = [int(s) for s in stratum_sizes]
    if any(s < 0 for s in sizes):
        raise ValueError("stratum sizes must be non-negative")
    total = sum(sizes)
    if total == 0:
        raise ValueError("cannot allocate over empty strata")
    if budget <= 0:
        raise ValueError("budget must be positive")
    if mode == "proportional":
        rate = min(1.0, budget / total)
        return [rate] * len(sizes)
    if mode == "equal":
        occupied = sum(1 for s in sizes if s > 0)
        per_stratum = budget / occupied
        return [min(1.0, per_stratum / s) if s > 0 else 0.0 for s in sizes]
    if mode == "sqrt":
        weights = [np.sqrt(s) for s in sizes]
        weight_total = sum(weights)
        return [
            min(1.0, budget * w / weight_total / s) if s > 0 else 0.0
            for s, w in zip(sizes, weights)
        ]
    raise ValueError(f"unknown allocation mode {mode!r}")


class StratifiedCountingEstimator:
    """Per-stratum Horvitz–Thompson range counting."""

    name = "StratifiedCounting"

    def estimate(
        self,
        samples: Sequence[StratifiedNodeSample],
        low: float,
        high: float,
    ) -> float:
        """Unbiased estimate of ``γ(low, high, D)``.

        Strata with rate 0 must be empty of in-range elements to remain
        estimable; a zero-rate non-empty stratum raises, since no unbiased
        estimate exists for data that can never be sampled.
        """
        validate_range(low, high)
        if not samples:
            raise ValueError("at least one node sample is required")
        total = 0.0
        for sample in samples:
            in_range = (sample.values >= low) & (sample.values <= high)
            for s, rate in enumerate(sample.rates):
                count = int(np.count_nonzero(in_range & (sample.strata == s)))
                if count == 0:
                    continue
                if rate <= 0.0:
                    raise ValueError(
                        f"stratum {s} has sampled data but rate 0"
                    )
                total += count / rate
        return total

    def variance(
        self,
        samples: Sequence[StratifiedNodeSample],
        per_stratum_range_counts: Sequence[Sequence[int]],
    ) -> float:
        """Exact variance given true per-node, per-stratum in-range counts.

        ``Var = Σ_i Σ_s γ_{i,s}·(1 − p_s)/p_s`` -- used by tests and the
        A9 ablation, where ground truth is available.
        """
        total = 0.0
        for sample, counts in zip(samples, per_stratum_range_counts):
            for rate, gamma in zip(sample.rates, counts):
                if gamma == 0:
                    continue
                if rate <= 0.0:
                    raise ValueError("non-empty stratum with rate 0")
                total += gamma * (1.0 - rate) / rate
        return total
