"""Per-request deadlines, propagated through every fan-out layer.

A :class:`Deadline` is an absolute expiry on an injectable clock.  The
gateway stamps one on each request at submit time; brokers and worker
pools call :func:`check_deadline` at their pre-commit checkpoints so a
request that cannot finish in time fails fast *before* any journal
write, ledger charge, or ε spend — preserving the
:class:`~repro.errors.DeadlineExceededError` never-billed invariant.

Propagation is via a thread-local scope rather than a parameter threaded
through every signature: :func:`deadline_scope` installs the deadline
around a dispatch, and code anywhere below (same thread) reads it with
:func:`current_deadline`.  Scatter-gather executors that hop threads
re-enter the scope explicitly with the captured deadline.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import DeadlineExceededError

__all__ = [
    "Deadline",
    "ManualClock",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
]


class ManualClock:
    """A monotonic clock that only moves when told to.

    Deterministic drills hand this to the gateway (and to breakers) so
    "time" advances exclusively at scheduled fault events — deadline
    misses then land on exactly the same requests in every same-seed
    run, independent of host speed.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._now = start

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError(f"cannot advance by {seconds}")
        with self._lock:
            self._now += seconds


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry instant on an injectable clock.

    The clock is any zero-argument callable returning monotonic seconds;
    production uses ``time.monotonic``, deterministic drills inject a
    logical clock so deadline misses land on exactly the same requests
    in every same-seed run.
    """

    expires_at: float
    clock: Callable[[], float] = field(default=time.monotonic, compare=False)

    @classmethod
    def after(
        cls, ttl: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``ttl`` seconds from now on ``clock``."""
        if ttl < 0.0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        return cls(expires_at=clock() + ttl, clock=clock)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - self.clock()

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self.clock() > self.expires_at


_STATE = threading.local()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[None]:
    """Install ``deadline`` for the current thread for the block's span.

    ``None`` is a true no-op (the previous scope, if any, stays active),
    so callers can pass an optional deadline through unconditionally.
    Scopes nest; the innermost non-``None`` deadline wins.
    """
    if deadline is None:
        yield
        return
    previous = getattr(_STATE, "deadline", None)
    _STATE.deadline = deadline
    try:
        yield
    finally:
        _STATE.deadline = previous


def current_deadline() -> Optional[Deadline]:
    """The innermost deadline installed on this thread, if any."""
    deadline = getattr(_STATE, "deadline", None)
    return deadline if isinstance(deadline, Deadline) else None


def check_deadline(stage: str) -> None:
    """Raise :class:`DeadlineExceededError` if the scoped deadline passed.

    ``stage`` names the checkpoint (e.g. ``"broker.journal"``) so the
    error message tells the operator how far the request got before it
    was cut.  Every call site sits *before* the layer's journal/charge
    sequence, so a raised check never strands partial accounting.
    """
    deadline = current_deadline()
    if deadline is not None and deadline.expired():
        raise DeadlineExceededError(
            f"deadline exceeded at {stage} "
            f"({-deadline.remaining():.6f}s past expiry); request not billed"
        )
