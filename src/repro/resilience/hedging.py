"""Latency-percentile hedging triggers for straggler sub-queries.

The policy tracks a rolling latency window per shard lane and answers
one question: *how long should the gather wait before re-issuing this
sub-query on the bypass lane?*  Cold lanes (fewer than ``min_samples``
observations) return ``None`` — hedging stays off until there is enough
signal to tell a straggler from normal variance, which also keeps
deterministic drills hedge-free during warm-up.

Exactly-once semantics live at the call site (``ClusterBroker``): both
lanes race for a single claim before touching the broker, so the loser
is cancelled without advancing RNG, journal, or ledger state.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["HedgePolicy", "HedgeLostRace"]


class HedgeLostRace(Exception):
    """Internal control flow: this lane lost the exactly-once claim.

    Raised by a hedged lane that was cancelled or beaten to the claim
    before touching the broker — the lane has had **no** side effects
    (no RNG draw, no journal append, no charge).  Deliberately not a
    :class:`~repro.errors.ReproError`: it must never escape the hedging
    call site into consumer-visible error handling.
    """


class HedgePolicy:
    """Per-key rolling latency quantiles driving hedge timeouts."""

    def __init__(
        self,
        window: int = 64,
        quantile: float = 0.95,
        multiplier: float = 2.0,
        min_samples: int = 8,
        floor: float = 0.001,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if floor <= 0.0:
            raise ValueError(f"floor must be > 0, got {floor}")
        self.window = window
        self.quantile = quantile
        self.multiplier = multiplier
        self.min_samples = min_samples
        self.floor = floor
        self._lock = threading.Lock()
        self._latencies: Dict[str, Deque[float]] = {}
        self.hedges_fired = 0
        self.hedges_won = 0

    def observe(self, key: str, latency: float) -> None:
        """Record one completed sub-query latency for ``key``."""
        if not math.isfinite(latency) or latency < 0.0:
            return
        with self._lock:
            lane = self._latencies.get(key)
            if lane is None:
                lane = deque(maxlen=self.window)
                self._latencies[key] = lane
            lane.append(latency)

    def hedge_after(self, key: str) -> Optional[float]:
        """Seconds to wait before hedging ``key``; ``None`` while cold."""
        with self._lock:
            lane = self._latencies.get(key)
            if lane is None or len(lane) < self.min_samples:
                return None
            ordered = sorted(lane)
        # nearest-rank quantile over the rolling window
        rank = min(len(ordered) - 1, int(math.ceil(self.quantile * len(ordered))) - 1)
        return max(self.floor, ordered[max(rank, 0)] * self.multiplier)

    def record_hedge(self, won: bool) -> None:
        """Count a fired hedge and whether the hedge lane won the race."""
        with self._lock:
            self.hedges_fired += 1
            if won:
                self.hedges_won += 1
