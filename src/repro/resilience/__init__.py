"""Cross-layer overload resilience for the trading pipeline.

The serving gateway admits requests against an ``(α, δ)`` contract, but
the contract is only worth anything if the answer arrives while the
consumer still wants it.  This package holds the four mechanisms that
keep the marketplace honest under overload:

``deadline``
    A per-request :class:`~repro.resilience.deadline.Deadline` carried
    from ``ServingGateway.submit`` through the cluster/streaming fan-out
    into worker pipe requests, so every layer can fail fast *before*
    billing or spending ε.
``breaker``
    Per-shard circuit breakers (closed / open / half-open) driven by
    rolling error and latency windows, so a limping shard is cut out and
    probed instead of dragging every batch's p99.
``hedging``
    Latency-percentile hedging of straggler sub-queries with
    exactly-once merge semantics — the losing lane is cancelled before
    it touches RNG, books, or journal.
``brownout``
    A privacy-honest degradation ladder: cache-only ε=0 replays → widen
    α within the tier band (cheaper ε′, priced accordingly) → degrade
    reported δ → shed with a typed retry-after.  Every rung is metered
    and the delivered ``(α, δ)`` is the one reported and billed.
"""

from repro.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.resilience.brownout import (
    BrownoutConfig,
    BrownoutController,
    BrownoutDecision,
    OverloadSignals,
)
from repro.resilience.deadline import (
    Deadline,
    ManualClock,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.hedging import HedgePolicy

__all__ = [
    "Deadline",
    "ManualClock",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
    "CircuitBreaker",
    "BreakerConfig",
    "HedgePolicy",
    "BrownoutController",
    "BrownoutConfig",
    "BrownoutDecision",
    "OverloadSignals",
]
