"""Per-shard circuit breakers over rolling error/latency windows.

A breaker guards one shard lane (primary or replica).  It is *advisory
about routing, never about accounting*: tripping a breaker changes which
lane serves a sub-query, but the brokers that consult it still produce
bit-identical answers for whichever lane runs — so same-seed drill
checksums are unaffected by breaker state.

States follow the classic three-way machine:

``closed``
    Normal service.  Failures and slow calls accumulate in a rolling
    window; when the bad fraction crosses ``failure_threshold`` (with at
    least ``min_calls`` observations) the breaker opens.
``open``
    The lane is cut out.  After ``cooldown`` seconds on the injected
    clock the next ``allow()`` admits a single half-open probe.
``half_open``
    Exactly one probe in flight.  Success closes the breaker and clears
    the window; failure (or a slow probe) re-opens it for another
    cooldown.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Tuple

__all__ = ["BreakerConfig", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one :class:`CircuitBreaker`.

    ``latency_threshold`` classifies a successful-but-slow call as bad
    for the purposes of the rolling window — the breaker exists mainly
    to stop a *limping* shard, which returns correct answers late rather
    than erroring.
    """

    window: int = 32
    failure_threshold: float = 0.5
    min_calls: int = 4
    latency_threshold: float = 0.050
    cooldown: float = 1.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        if self.min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {self.min_calls}")
        if self.latency_threshold <= 0.0:
            raise ValueError(
                f"latency_threshold must be > 0, got {self.latency_threshold}"
            )
        if self.cooldown < 0.0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")


class CircuitBreaker:
    """One closed/open/half-open breaker with an injectable clock."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: rolling (ok, latency) observations, newest last
        self._window: Deque[Tuple[bool, float]] = deque(
            maxlen=self.config.window
        )
        self.open_count = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether the guarded lane may serve the next sub-query.

        From ``open``, the first call after the cooldown transitions to
        ``half_open`` and admits exactly one probe; concurrent callers
        during the probe are refused.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self.clock() - self._opened_at >= self.config.cooldown:
                    self._state = HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            # half-open: one probe only
            if not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self, latency: float) -> None:
        """Record a completed call; slow successes count as bad."""
        ok = latency < self.config.latency_threshold
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_in_flight = False
                if ok:
                    self._state = CLOSED
                    self._window.clear()
                else:
                    self._reopen_locked()
                return
            self._window.append((ok, latency))
            self._maybe_open_locked()

    def record_failure(self) -> None:
        """Record an errored call (delivery failure, crash, timeout)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_in_flight = False
                self._reopen_locked()
                return
            self._window.append((False, float("inf")))
            self._maybe_open_locked()

    def record_slow(self) -> None:
        """Record a call that lost a hedge race — slow by observation."""
        self.record_success(float("inf"))

    def _maybe_open_locked(self) -> None:
        if self._state != CLOSED or len(self._window) < self.config.min_calls:
            return
        bad = sum(1 for ok, _ in self._window if not ok)
        if bad / len(self._window) >= self.config.failure_threshold:
            self._reopen_locked()

    def _reopen_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self.clock()
        self._window.clear()
        self.open_count += 1
