"""The privacy-honest brownout ladder.

Under sustained overload the gateway degrades service in explicit,
metered rungs instead of letting queue time silently blow every
deadline.  Each rung is *privacy-honest*: the ``(α, δ)`` the consumer
receives is the one actually planned, delivered, and billed — a weaker
contract is cheaper (smaller ε′, lower price), never a silent lie.

Ladder (one level per rung, strictly increasing severity):

====== ================= ==================================================
level  rung              effect on a fresh (non-cached) request
====== ================= ==================================================
0      ``none``          normal service
1      ``cache``         cache replays preferred (ε = 0); misses unchanged
2      ``widen_alpha``   α ← min(α · widen_factor, alpha_max); re-quoted
3      ``degrade_delta`` widened α *and* δ ← degraded via the replica-
                         confidence factor; planned at the weaker target
4      ``shed``          refuse with :class:`~repro.errors.BrownoutShedError`
====== ================= ==================================================

Level transitions use hysteresis — ``enter_after`` consecutive
observations above a rung's pressure threshold to climb one level,
``exit_after`` below to descend — so a single queue spike does not flap
the ladder.  Deterministic drills pin the level with :meth:`force`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.query import AccuracySpec

__all__ = [
    "OverloadSignals",
    "BrownoutConfig",
    "BrownoutDecision",
    "BrownoutController",
    "RUNGS",
]

#: rung name per ladder level, index == level
RUNGS: Tuple[str, ...] = ("none", "cache", "widen_alpha", "degrade_delta", "shed")


@dataclass(frozen=True)
class OverloadSignals:
    """One sample of the gateway's overload indicators, each in [0, 1].

    ``queue_fraction`` is queue depth over capacity,
    ``breaker_open_fraction`` the share of shard lanes with an open
    breaker, and ``deadline_miss_rate`` the recent fraction of dispatches
    that expired in queue.
    """

    queue_fraction: float = 0.0
    breaker_open_fraction: float = 0.0
    deadline_miss_rate: float = 0.0

    @property
    def pressure(self) -> float:
        """The ladder's scalar input: the worst of the three signals."""
        return max(
            self.queue_fraction,
            self.breaker_open_fraction,
            self.deadline_miss_rate,
        )


@dataclass(frozen=True)
class BrownoutConfig:
    """Thresholds and degradation parameters for the ladder.

    ``thresholds[i]`` is the pressure at which level ``i + 1`` becomes
    the target.  ``widen_factor``/``alpha_max`` bound the α rung inside
    the tier's admission band; ``delta_confidence`` is the same factor
    the cluster layer uses for replica failovers
    (:func:`repro.cluster.planning.degraded_delta`).
    """

    thresholds: Tuple[float, float, float, float] = (0.25, 0.50, 0.75, 0.90)
    enter_after: int = 2
    exit_after: int = 8
    widen_factor: float = 1.5
    alpha_max: float = 0.5
    delta_confidence: float = 0.9
    retry_after: float = 0.1

    def __post_init__(self) -> None:
        if len(self.thresholds) != len(RUNGS) - 1:
            raise ValueError(
                f"need {len(RUNGS) - 1} thresholds, got {len(self.thresholds)}"
            )
        if list(self.thresholds) != sorted(self.thresholds):
            raise ValueError("thresholds must be non-decreasing")
        if self.enter_after < 1 or self.exit_after < 1:
            raise ValueError("hysteresis counts must be >= 1")
        if self.widen_factor < 1.0:
            raise ValueError(f"widen_factor must be >= 1, got {self.widen_factor}")
        if not 0.0 < self.alpha_max < 1.0:
            raise ValueError(f"alpha_max must be in (0, 1), got {self.alpha_max}")
        if not 0.0 < self.delta_confidence <= 1.0:
            raise ValueError(
                f"delta_confidence must be in (0, 1], got {self.delta_confidence}"
            )
        if self.retry_after < 0.0:
            raise ValueError(f"retry_after must be >= 0, got {self.retry_after}")


@dataclass(frozen=True)
class BrownoutDecision:
    """What the ladder did to one fresh request.

    ``served`` is the spec to actually plan/price/deliver (``None`` only
    for the ``shed`` rung).  ``requested`` echoes the original spec when
    the served one differs, for answer provenance.
    """

    level: int
    rung: str
    served: Optional[AccuracySpec]
    requested: Optional[AccuracySpec] = None


class BrownoutController:
    """Hysteresis-driven ladder position plus per-request decisions."""

    def __init__(self, config: Optional[BrownoutConfig] = None) -> None:
        self.config = config or BrownoutConfig()
        self._lock = threading.Lock()
        self._level = 0
        self._pinned = False
        self._above_streak = 0
        self._below_streak = 0
        self.decisions = {rung: 0 for rung in RUNGS}

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    def force(self, level: int) -> None:
        """Pin the ladder at ``level`` (drills); ``observe`` is ignored."""
        if not 0 <= level < len(RUNGS):
            raise ValueError(f"level must be in [0, {len(RUNGS) - 1}], got {level}")
        with self._lock:
            self._level = level
            self._pinned = True
            self._above_streak = 0
            self._below_streak = 0

    def release(self) -> None:
        """Unpin a forced level; ``observe`` resumes control."""
        with self._lock:
            self._pinned = False

    def observe(self, signals: OverloadSignals) -> int:
        """Feed one overload sample; returns the (possibly new) level.

        The ladder moves at most one rung per observation: up after
        ``enter_after`` consecutive samples whose pressure clears the
        next rung's threshold, down after ``exit_after`` consecutive
        samples below the current rung's.
        """
        with self._lock:
            if self._pinned:
                return self._level
            pressure = signals.pressure
            can_climb = (
                self._level < len(RUNGS) - 1
                and pressure >= self.config.thresholds[self._level]
            )
            can_descend = (
                self._level > 0
                and pressure < self.config.thresholds[self._level - 1]
            )
            if can_climb:
                self._above_streak += 1
                self._below_streak = 0
                if self._above_streak >= self.config.enter_after:
                    self._level += 1
                    self._above_streak = 0
            elif can_descend:
                self._below_streak += 1
                self._above_streak = 0
                if self._below_streak >= self.config.exit_after:
                    self._level -= 1
                    self._below_streak = 0
            else:
                self._above_streak = 0
                self._below_streak = 0
            return self._level

    def maybe_shed(self) -> Optional[float]:
        """Submit-time fast path: retry-after seconds at the shed rung,
        ``None`` below it.  Counts the shed decision when it fires."""
        with self._lock:
            if self._level < len(RUNGS) - 1:
                return None
            self.decisions["shed"] = self.decisions.get("shed", 0) + 1
            return self.config.retry_after

    def decide(self, spec: AccuracySpec) -> BrownoutDecision:
        """The ladder's treatment of one fresh (cache-missed) request.

        Widening never *tightens* a contract: if the tier's α already
        exceeds ``alpha_max`` the spec passes through unchanged, and δ
        degradation always lowers δ.  The served spec re-enters the
        normal quote → admit → plan path, so pricing and ε′ follow the
        delivered contract automatically.
        """
        with self._lock:
            level = self._level
        rung = RUNGS[level]
        if level >= 4:
            self._count(rung)
            return BrownoutDecision(level=level, rung=rung, served=None)
        if level <= 1:
            # level 1 ("cache") only biases replay preference at the
            # gateway; a fresh request is served at full contract.
            self._count("none" if level == 0 else rung)
            return BrownoutDecision(level=level, rung=rung, served=spec)
        alpha = min(max(spec.alpha * self.config.widen_factor, spec.alpha),
                    max(self.config.alpha_max, spec.alpha))
        delta = spec.delta
        if level >= 3:
            delta = spec.delta * self.config.delta_confidence
        served = AccuracySpec(alpha=alpha, delta=delta)
        if served == spec:
            self._count("none")
            return BrownoutDecision(level=level, rung="none", served=spec)
        self._count(rung)
        return BrownoutDecision(
            level=level, rung=rung, served=served, requested=spec
        )

    def _count(self, rung: str) -> None:
        with self._lock:
            self.decisions[rung] = self.decisions.get(rung, 0) + 1
