"""Billing ledger: the broker's transaction log and revenue accounting.

The marketplace (Section II-A) charges each consumer ``π(α, δ)`` per
answered query.  :class:`BillingLedger` records every sale immutably so the
broker can audit revenue per consumer, per dataset, and over time, and so
the arbitrage benches can total an adversary's actual spending.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import LedgerError

__all__ = ["Transaction", "BillingLedger"]


@dataclass(frozen=True)
class Transaction:
    """One completed sale of an ``(α, δ)`` product."""

    transaction_id: int
    consumer: str
    dataset: str
    alpha: float
    delta: float
    price: float
    epsilon_prime: float

    def __post_init__(self) -> None:
        if self.price < 0:
            raise LedgerError("price must be non-negative")
        if self.epsilon_prime < 0:
            raise LedgerError("epsilon_prime must be non-negative")


@dataclass
class BillingLedger:
    """Append-only transaction log with aggregate views."""

    _transactions: List[Transaction] = field(default_factory=list)
    _ids: "itertools.count[int]" = field(default_factory=lambda: itertools.count(1))

    def record(
        self,
        consumer: str,
        dataset: str,
        alpha: float,
        delta: float,
        price: float,
        epsilon_prime: float,
    ) -> Transaction:
        """Append a sale and return the immutable transaction record."""
        txn = Transaction(
            transaction_id=next(self._ids),
            consumer=consumer,
            dataset=dataset,
            alpha=alpha,
            delta=delta,
            price=price,
            epsilon_prime=epsilon_prime,
        )
        self._transactions.append(txn)
        return txn

    def record_many(
        self, sales: "List[Dict[str, object]]"
    ) -> "List[Transaction]":
        """Append one transaction per entry of ``sales``, in order.

        Each entry supplies the keyword arguments of :meth:`record`
        (``consumer``, ``dataset``, ``alpha``, ``delta``, ``price``,
        ``epsilon_prime``).  Ids are assigned sequentially, so the ledger
        ends up identical to recording each sale individually -- this is
        the broker's bulk path for batched answers.
        """
        txns = [
            Transaction(transaction_id=next(self._ids), **sale)
            for sale in sales
        ]
        self._transactions.extend(txns)
        return txns

    def __len__(self) -> int:
        return len(self._transactions)

    @property
    def transactions(self) -> Tuple[Transaction, ...]:
        """Immutable view of every recorded sale, oldest first."""
        return tuple(self._transactions)

    def total_revenue(self) -> float:
        """Sum of all sale prices."""
        return sum(t.price for t in self._transactions)

    def revenue_by_consumer(self) -> Dict[str, float]:
        """Total spend per consumer name."""
        totals: Dict[str, float] = {}
        for t in self._transactions:
            totals[t.consumer] = totals.get(t.consumer, 0.0) + t.price
        return totals

    def revenue_by_dataset(self) -> Dict[str, float]:
        """Total revenue per dataset key."""
        totals: Dict[str, float] = {}
        for t in self._transactions:
            totals[t.dataset] = totals.get(t.dataset, 0.0) + t.price
        return totals

    def spend_of(self, consumer: str) -> float:
        """Total spend of one consumer."""
        return sum(t.price for t in self._transactions if t.consumer == consumer)

    def purchases_of(self, consumer: str) -> Tuple[Transaction, ...]:
        """All transactions of one consumer, oldest first."""
        return tuple(t for t in self._transactions if t.consumer == consumer)
