"""Billing ledger: the broker's transaction log and revenue accounting.

The marketplace (Section II-A) charges each consumer ``π(α, δ)`` per
answered query.  :class:`BillingLedger` records every sale immutably so the
broker can audit revenue per consumer, per dataset, and over time, and so
the arbitrage benches can total an adversary's actual spending.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Protocol, Sequence, Tuple

from repro.errors import LedgerError

__all__ = ["Transaction", "BillingLedger", "TradeRecord"]


class TradeRecord(Protocol):
    """Structural view of a journaled trade (``repro.durability`` entry).

    Declared locally so the strictly-typed pricing layer never imports the
    durability package: any object exposing these attributes — in practice
    :class:`repro.durability.journal.JournalEntry` — can be replayed.
    """

    @property
    def answer_id(self) -> int: ...

    @property
    def kind(self) -> str: ...

    @property
    def consumer(self) -> str: ...

    @property
    def dataset(self) -> str: ...

    @property
    def alpha(self) -> float: ...

    @property
    def delta(self) -> float: ...

    @property
    def price(self) -> float: ...

    @property
    def epsilon_prime(self) -> float: ...

    @property
    def label(self) -> str: ...


@dataclass(frozen=True)
class Transaction:
    """One completed sale of an ``(α, δ)`` product."""

    transaction_id: int
    consumer: str
    dataset: str
    alpha: float
    delta: float
    price: float
    epsilon_prime: float

    def __post_init__(self) -> None:
        if self.price < 0:
            raise LedgerError("price must be non-negative")
        if self.epsilon_prime < 0:
            raise LedgerError("epsilon_prime must be non-negative")


@dataclass
class BillingLedger:
    """Append-only transaction log with aggregate views.

    Aggregates (total revenue, per-consumer and per-dataset totals) are
    maintained incrementally on every append, so the serving layer's
    admission checks stay O(1) regardless of ledger length.
    """

    _transactions: List[Transaction] = field(default_factory=list)
    _ids: "itertools.count[int]" = field(default_factory=lambda: itertools.count(1))

    def __post_init__(self) -> None:
        self._total_revenue: float = 0.0
        self._revenue_by_consumer: Dict[str, float] = {}
        self._revenue_by_dataset: Dict[str, float] = {}
        # Highest journal answer_id already folded into this ledger; the
        # idempotency floor for replay_journal (0 = nothing replayed yet).
        self._journal_high_water: int = 0
        for txn in self._transactions:
            self._index(txn)

    def _index(self, txn: Transaction) -> None:
        """Fold one appended transaction into the running aggregates."""
        self._total_revenue += txn.price
        self._revenue_by_consumer[txn.consumer] = (
            self._revenue_by_consumer.get(txn.consumer, 0.0) + txn.price
        )
        self._revenue_by_dataset[txn.dataset] = (
            self._revenue_by_dataset.get(txn.dataset, 0.0) + txn.price
        )

    def _append(self, txn: Transaction) -> None:
        """The single write path: append and index (used by loaders too)."""
        self._transactions.append(txn)
        self._index(txn)

    def record(
        self,
        consumer: str,
        dataset: str,
        alpha: float,
        delta: float,
        price: float,
        epsilon_prime: float,
    ) -> Transaction:
        """Append a sale and return the immutable transaction record."""
        txn = Transaction(
            transaction_id=next(self._ids),
            consumer=consumer,
            dataset=dataset,
            alpha=alpha,
            delta=delta,
            price=price,
            epsilon_prime=epsilon_prime,
        )
        self._append(txn)
        return txn

    def record_many(
        self, sales: "Sequence[Mapping[str, Any]]"
    ) -> "List[Transaction]":
        """Append one transaction per entry of ``sales``, in order.

        Each entry supplies the keyword arguments of :meth:`record`
        (``consumer``, ``dataset``, ``alpha``, ``delta``, ``price``,
        ``epsilon_prime``).  Ids are assigned sequentially, so the ledger
        ends up identical to recording each sale individually -- this is
        the broker's bulk path for batched answers.
        """
        txns = [
            Transaction(transaction_id=next(self._ids), **dict(sale))
            for sale in sales
        ]
        for txn in txns:
            self._append(txn)
        return txns

    def __len__(self) -> int:
        return len(self._transactions)

    @property
    def transactions(self) -> Tuple[Transaction, ...]:
        """Immutable view of every recorded sale, oldest first."""
        return tuple(self._transactions)

    def total_revenue(self) -> float:
        """Sum of all sale prices (maintained incrementally, O(1))."""
        return self._total_revenue

    def revenue_by_consumer(self) -> Dict[str, float]:
        """Total spend per consumer name."""
        return dict(self._revenue_by_consumer)

    def revenue_by_dataset(self) -> Dict[str, float]:
        """Total revenue per dataset key."""
        return dict(self._revenue_by_dataset)

    def spend_of(self, consumer: str) -> float:
        """Total spend of one consumer (O(1); the admission hot path)."""
        return self._revenue_by_consumer.get(consumer, 0.0)

    def purchases_of(self, consumer: str) -> Tuple[Transaction, ...]:
        """All transactions of one consumer, oldest first."""
        return tuple(t for t in self._transactions if t.consumer == consumer)

    # ------------------------------------------------------------------ #
    # Durability: snapshot / restore / journal replay                    #
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """Serializable copy of the full ledger state.

        Captures the transaction log, the *next* transaction id, and the
        journal high-water mark, so :meth:`restore` followed by
        :meth:`replay_journal` of the journal suffix reproduces the live
        ledger bit for bit — including transaction ids.
        """
        return {
            "transactions": [
                {
                    "transaction_id": t.transaction_id,
                    "consumer": t.consumer,
                    "dataset": t.dataset,
                    "alpha": t.alpha,
                    "delta": t.delta,
                    "price": t.price,
                    "epsilon_prime": t.epsilon_prime,
                }
                for t in self._transactions
            ],
            # The id counter only advances by appending, so the next id is
            # always one past the newest transaction.
            "next_transaction_id": (
                self._transactions[-1].transaction_id + 1
                if self._transactions
                else 1
            ),
            "journal_high_water": self._journal_high_water,
        }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Replace this ledger's state with a :meth:`snapshot` copy."""
        transactions = [
            Transaction(**dict(payload)) for payload in snapshot["transactions"]
        ]
        next_id = int(snapshot["next_transaction_id"])
        self._transactions = list(transactions)
        self._ids = itertools.count(next_id)
        self._total_revenue = 0.0
        self._revenue_by_consumer = {}
        self._revenue_by_dataset = {}
        self._journal_high_water = int(snapshot["journal_high_water"])
        for txn in self._transactions:
            self._index(txn)

    def replay_journal(self, entries: "Iterable[TradeRecord]") -> int:
        """Re-apply journaled trades this ledger has not yet seen.

        Entries at or below the journal high-water mark are skipped, so
        replaying the same journal twice — or replaying a full journal on
        top of a snapshot that already contains its prefix — records each
        sale exactly once (the *never double-charges* half of recovery).
        Transactions are recorded through the normal write path, so the
        rebuilt ledger's transaction ids match the uninterrupted run's.
        Returns the number of entries applied.
        """
        applied = 0
        previous = 0
        for entry in entries:
            if entry.answer_id <= previous:
                raise LedgerError(
                    f"journal replay out of order: answer_id "
                    f"{entry.answer_id} after {previous}"
                )
            previous = entry.answer_id
            if entry.answer_id <= self._journal_high_water:
                continue
            self.record(
                consumer=entry.consumer,
                dataset=entry.dataset,
                alpha=entry.alpha,
                delta=entry.delta,
                price=entry.price,
                epsilon_prime=entry.epsilon_prime,
            )
            self._journal_high_water = entry.answer_id
            applied += 1
        return applied
