"""Billing ledger: the broker's transaction log and revenue accounting.

The marketplace (Section II-A) charges each consumer ``π(α, δ)`` per
answered query.  :class:`BillingLedger` records every sale immutably so the
broker can audit revenue per consumer, per dataset, and over time, and so
the arbitrage benches can total an adversary's actual spending.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import LedgerError

__all__ = ["Transaction", "BillingLedger"]


@dataclass(frozen=True)
class Transaction:
    """One completed sale of an ``(α, δ)`` product."""

    transaction_id: int
    consumer: str
    dataset: str
    alpha: float
    delta: float
    price: float
    epsilon_prime: float

    def __post_init__(self) -> None:
        if self.price < 0:
            raise LedgerError("price must be non-negative")
        if self.epsilon_prime < 0:
            raise LedgerError("epsilon_prime must be non-negative")


@dataclass
class BillingLedger:
    """Append-only transaction log with aggregate views.

    Aggregates (total revenue, per-consumer and per-dataset totals) are
    maintained incrementally on every append, so the serving layer's
    admission checks stay O(1) regardless of ledger length.
    """

    _transactions: List[Transaction] = field(default_factory=list)
    _ids: "itertools.count[int]" = field(default_factory=lambda: itertools.count(1))

    def __post_init__(self) -> None:
        self._total_revenue: float = 0.0
        self._revenue_by_consumer: Dict[str, float] = {}
        self._revenue_by_dataset: Dict[str, float] = {}
        for txn in self._transactions:
            self._index(txn)

    def _index(self, txn: Transaction) -> None:
        """Fold one appended transaction into the running aggregates."""
        self._total_revenue += txn.price
        self._revenue_by_consumer[txn.consumer] = (
            self._revenue_by_consumer.get(txn.consumer, 0.0) + txn.price
        )
        self._revenue_by_dataset[txn.dataset] = (
            self._revenue_by_dataset.get(txn.dataset, 0.0) + txn.price
        )

    def _append(self, txn: Transaction) -> None:
        """The single write path: append and index (used by loaders too)."""
        self._transactions.append(txn)
        self._index(txn)

    def record(
        self,
        consumer: str,
        dataset: str,
        alpha: float,
        delta: float,
        price: float,
        epsilon_prime: float,
    ) -> Transaction:
        """Append a sale and return the immutable transaction record."""
        txn = Transaction(
            transaction_id=next(self._ids),
            consumer=consumer,
            dataset=dataset,
            alpha=alpha,
            delta=delta,
            price=price,
            epsilon_prime=epsilon_prime,
        )
        self._append(txn)
        return txn

    def record_many(
        self, sales: "Sequence[Mapping[str, Any]]"
    ) -> "List[Transaction]":
        """Append one transaction per entry of ``sales``, in order.

        Each entry supplies the keyword arguments of :meth:`record`
        (``consumer``, ``dataset``, ``alpha``, ``delta``, ``price``,
        ``epsilon_prime``).  Ids are assigned sequentially, so the ledger
        ends up identical to recording each sale individually -- this is
        the broker's bulk path for batched answers.
        """
        txns = [
            Transaction(transaction_id=next(self._ids), **dict(sale))
            for sale in sales
        ]
        for txn in txns:
            self._append(txn)
        return txns

    def __len__(self) -> int:
        return len(self._transactions)

    @property
    def transactions(self) -> Tuple[Transaction, ...]:
        """Immutable view of every recorded sale, oldest first."""
        return tuple(self._transactions)

    def total_revenue(self) -> float:
        """Sum of all sale prices (maintained incrementally, O(1))."""
        return self._total_revenue

    def revenue_by_consumer(self) -> Dict[str, float]:
        """Total spend per consumer name."""
        return dict(self._revenue_by_consumer)

    def revenue_by_dataset(self) -> Dict[str, float]:
        """Total revenue per dataset key."""
        return dict(self._revenue_by_dataset)

    def spend_of(self, consumer: str) -> float:
        """Total spend of one consumer (O(1); the admission hot path)."""
        return self._revenue_by_consumer.get(consumer, 0.0)

    def purchases_of(self, consumer: str) -> Tuple[Transaction, ...]:
        """All transactions of one consumer, oldest first."""
        return tuple(t for t in self._transactions if t.consumer == consumer)
