"""Pricing functions for traded ``(α, δ)``-range-counting products.

Theorem 4.2 characterizes arbitrage-avoiding prices: ``π`` must be a
function of the delivered variance (``π = ψ(V)``), and its relative changes
must track the relative changes of ``V`` from both sides (properties 2 and
3).  Algebraically the two properties state that ``V·ψ(V)`` is
non-increasing *and* non-decreasing in ``V`` -- i.e. constant -- so the
arbitrage-avoiding family is exactly the inverse-variance prices

    π(α, δ) = c / V(α, δ).

This module implements that family (:class:`InverseVariancePricing`)
together with deliberately *broken* families used as foils in tests and the
A2 ablation bench:

* :class:`PowerLawVariancePricing` -- ``c·V^{−s}``; violates property 2 for
  ``s < 1`` and property 3 (plus the averaging attack) for ``s > 1``.
* :class:`LinearAccuracyPricing` -- an intuitive "pay per accuracy" sheet
  that is not even a function of ``V``.
* :class:`TieredPricing` -- a stepped price book; constant inside a tier,
  so relative price change is 0 while variance changes.
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import PricingError
from repro.pricing.variance_model import VarianceModel

__all__ = [
    "PricingFunction",
    "InverseVariancePricing",
    "PowerLawVariancePricing",
    "LinearAccuracyPricing",
    "TieredPricing",
]


class PricingFunction(abc.ABC):
    """Interface of a price sheet over ``(α, δ)`` products.

    Concrete classes are bound to a :class:`VarianceModel` so prices and
    variances are always expressed against the same dataset size.
    """

    def __init__(self, variance_model: VarianceModel) -> None:
        self.variance_model = variance_model

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable name used in reports and benches."""

    @abc.abstractmethod
    def price(self, alpha: float, delta: float) -> float:
        """Quoted price for an ``(α, δ)`` product; must be positive."""

    def price_of_variance(self, variance: float) -> float:
        """Price as a function of delivered variance, when well-defined.

        Default implementation prices the ``(α, δ)`` pair at δ = 0 whose
        variance matches; subclasses that are genuinely ``ψ(V)`` override
        with the direct form.
        """
        alpha = self.variance_model.alpha_for(variance, 0.0)
        return self.price(alpha, 0.0)


@dataclass(frozen=True)
class _Quote:
    """Internal helper pairing a product with its price and variance."""

    alpha: float
    delta: float
    price: float
    variance: float


class InverseVariancePricing(PricingFunction):
    """The arbitrage-avoiding family: ``π(α, δ) = c / V(α, δ)``.

    ``c`` (``base_price``) is the price of a product with unit delivered
    variance; Theorem 4.2's properties 2 and 3 hold with equality, and the
    averaging attack of Example 4.1 can never undercut the list price.
    """

    def __init__(self, variance_model: VarianceModel, base_price: float = 1.0) -> None:
        super().__init__(variance_model)
        if base_price <= 0:
            raise PricingError(f"base_price must be positive, got {base_price}")
        self.base_price = base_price

    @property
    def name(self) -> str:
        return "InverseVariance"

    def price(self, alpha: float, delta: float) -> float:
        return self.base_price / self.variance_model.variance(alpha, delta)

    def price_of_variance(self, variance: float) -> float:
        if variance <= 0:
            raise PricingError("variance must be positive")
        return self.base_price / variance


class PowerLawVariancePricing(PricingFunction):
    """``π(α, δ) = c · V(α, δ)^{−s}`` -- arbitrage-avoiding only at s = 1.

    For ``s > 1`` the price falls too fast with variance: buying ``m``
    answers at variance ``m·V`` costs ``m^{1−s} < 1`` times the list price
    of variance ``V`` (a working averaging attack).  For ``s < 1`` property
    2 of Theorem 4.2 fails (δ upgrades are under-priced relative to the
    variance gain), which the checker detects even though the *uniform*
    averaging attack alone cannot exploit it.
    """

    def __init__(
        self,
        variance_model: VarianceModel,
        base_price: float = 1.0,
        exponent: float = 2.0,
    ) -> None:
        super().__init__(variance_model)
        if base_price <= 0:
            raise PricingError(f"base_price must be positive, got {base_price}")
        if exponent <= 0:
            raise PricingError(f"exponent must be positive, got {exponent}")
        self.base_price = base_price
        self.exponent = exponent

    @property
    def name(self) -> str:
        return f"PowerLaw(s={self.exponent:g})"

    def price(self, alpha: float, delta: float) -> float:
        variance = self.variance_model.variance(alpha, delta)
        return self.base_price * variance ** (-self.exponent)

    def price_of_variance(self, variance: float) -> float:
        if variance <= 0:
            raise PricingError("variance must be positive")
        return self.base_price * variance ** (-self.exponent)


class LinearAccuracyPricing(PricingFunction):
    """A naive sheet: ``π = base + slope_alpha·(1 − α) + slope_delta·δ``.

    Monotone the intuitive way (smaller α and larger δ cost more) but not a
    function of the variance, so Lemma 4.1 already rules it out: two
    products with identical delivered variance get different prices, and
    the cheaper one substitutes for the dearer.
    """

    def __init__(
        self,
        variance_model: VarianceModel,
        base: float = 1.0,
        slope_alpha: float = 10.0,
        slope_delta: float = 10.0,
    ) -> None:
        super().__init__(variance_model)
        if base <= 0 or slope_alpha < 0 or slope_delta < 0:
            raise PricingError("base must be positive and slopes non-negative")
        self.base = base
        self.slope_alpha = slope_alpha
        self.slope_delta = slope_delta

    @property
    def name(self) -> str:
        return "LinearAccuracy"

    def price(self, alpha: float, delta: float) -> float:
        return self.base + self.slope_alpha * (1.0 - alpha) + self.slope_delta * delta


class TieredPricing(PricingFunction):
    """A stepped price book over variance tiers.

    ``tiers`` maps descending variance thresholds to prices: the quoted
    price is that of the first tier whose threshold is at least the
    delivered variance.  Constant within a tier, so property 2 fails at any
    within-tier δ upgrade -- a realistic "bronze/silver/gold" sheet that is
    nonetheless arbitrageable at tier edges.
    """

    def __init__(
        self,
        variance_model: VarianceModel,
        tiers: Sequence[Tuple[float, float]],
    ) -> None:
        super().__init__(variance_model)
        if not tiers:
            raise PricingError("at least one (variance_threshold, price) tier needed")
        ordered = sorted(tiers, key=lambda t: t[0])
        for threshold, price in ordered:
            if threshold <= 0 or price <= 0:
                raise PricingError("tier thresholds and prices must be positive")
        # Ascending thresholds; prices should descend as variance grows.
        self._thresholds = [t for t, _ in ordered]
        self._prices = [q for _, q in ordered]

    @property
    def name(self) -> str:
        return f"Tiered({len(self._thresholds)})"

    def price(self, alpha: float, delta: float) -> float:
        return self.price_of_variance(self.variance_model.variance(alpha, delta))

    def price_of_variance(self, variance: float) -> float:
        if variance <= 0:
            raise PricingError("variance must be positive")
        idx = bisect.bisect_left(self._thresholds, variance)
        if idx >= len(self._thresholds):
            # Worse than the coarsest tier: charge the cheapest price.
            idx = len(self._thresholds) - 1
        return self._prices[idx]
