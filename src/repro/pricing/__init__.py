"""Pricing layer (paper Section IV): variance model, price sheets, arbitrage.

* :class:`VarianceModel` -- delivered variance ``V(α, δ) = (αn)²(1 − δ)``.
* :class:`InverseVariancePricing` -- the arbitrage-avoiding family
  ``π = c/V`` singled out by Theorem 4.2; broken foil families alongside.
* :func:`check_arbitrage_avoiding` / :func:`find_averaging_attack` --
  Theorem 4.2 property checker and the Example 4.1 constructive adversary.
* :class:`BillingLedger` -- transaction log and revenue accounting.
"""

from repro.pricing.arbitrage import (
    ArbitrageAttack,
    ArbitrageReport,
    PropertyViolation,
    check_arbitrage_avoiding,
    evaluate_portfolio,
    find_averaging_attack,
)
from repro.pricing.functions import (
    InverseVariancePricing,
    LinearAccuracyPricing,
    PowerLawVariancePricing,
    PricingFunction,
    TieredPricing,
)
from repro.pricing.ledger import BillingLedger, Transaction
from repro.pricing.variance_model import VarianceModel

__all__ = [
    "ArbitrageAttack",
    "ArbitrageReport",
    "PropertyViolation",
    "check_arbitrage_avoiding",
    "evaluate_portfolio",
    "find_averaging_attack",
    "InverseVariancePricing",
    "LinearAccuracyPricing",
    "PowerLawVariancePricing",
    "PricingFunction",
    "TieredPricing",
    "BillingLedger",
    "Transaction",
    "VarianceModel",
]
