"""The variance model ``V(α, δ)`` that pricing is defined over.

Lemma 4.1 shows an arbitrage-avoiding price must be a function of the
delivered variance alone: ``π(α, δ) = ψ(V(α, δ))``.  This module gives
``V`` a concrete, Chebyshev-calibrated form,

    V(α, δ) = (α·n)² · (1 − δ),

the largest variance for which Chebyshev's inequality still certifies
``Pr[|err| ≤ αn] ≥ δ``.  ``V`` decreases in δ and increases in α, matching
Section IV's monotonicity requirements, and the model exposes the inverse
maps used by attack construction (which (α, δ) products deliver a wanted
variance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.estimators.variance import delivered_variance

__all__ = ["VarianceModel"]


@dataclass(frozen=True)
class VarianceModel:
    """Delivered-variance model for a dataset of ``n`` records.

    Parameters
    ----------
    n:
        Total record count of the dataset being traded over; fixes the
        absolute scale ``(αn)²``.
    """

    n: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be a positive record count")

    def variance(self, alpha: float, delta: float) -> float:
        """``V(α, δ) = (αn)²(1 − δ)``."""
        return delivered_variance(alpha, delta, self.n)

    def alpha_for(self, variance: float, delta: float) -> float:
        """The tolerance α whose ``(α, δ)`` product delivers ``variance``.

        Inverse of :meth:`variance` in its first argument:
        ``α = √(variance / (1 − δ)) / n``.
        """
        if variance <= 0:
            raise ValueError("variance must be positive")
        if not 0.0 <= delta < 1.0:
            raise ValueError(f"delta must be in [0, 1), got {delta}")
        return math.sqrt(variance / (1.0 - delta)) / self.n

    def delta_for(self, variance: float, alpha: float) -> float:
        """The confidence δ whose ``(α, δ)`` product delivers ``variance``.

        Inverse of :meth:`variance` in its second argument:
        ``δ = 1 − variance / (αn)²``.  May be negative when the requested
        variance exceeds what any δ ≥ 0 delivers at this α.
        """
        if variance <= 0:
            raise ValueError("variance must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        return 1.0 - variance / ((alpha * self.n) ** 2)

    def averaged_variance(self, variances: "list[float] | tuple[float, ...]") -> float:
        """Variance of the mean of independent answers: ``(1/m²)·Σ V_i``.

        This is the composition operator ``↦`` of Definition 2.3 /
        Formula (4): an arbitrageur averages ``m`` purchased answers.
        """
        if len(variances) == 0:
            raise ValueError("need at least one purchased variance")
        for v in variances:
            if v <= 0:
                raise ValueError("variances must be positive")
        m = len(variances)
        return sum(variances) / (m * m)
