"""Arbitrage machinery: Theorem 4.2 checker and constructive attack search.

Two complementary tools validate a price sheet:

* :func:`check_arbitrage_avoiding` tests the *characterization* -- Lemma
  4.1 (price is a function of variance) and Theorem 4.2's relative-change
  properties 2 and 3 -- over a finite ``(α, δ)`` grid, reporting every
  violated inequality with its witness points.
* :func:`find_averaging_attack` runs the *constructive adversary* of
  Example 4.1: it searches for ``m`` purchases of a cheaper, higher-variance
  product whose average matches the target variance at a lower total price
  (the composition ``↦`` of Definition 2.3 / Formula (4)).

A sound pricing function passes both; the foil families in
:mod:`repro.pricing.functions` each fail at least one, and the integration
tests assert the checker and the adversary agree with the theory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.pricing.functions import PricingFunction

__all__ = [
    "PropertyViolation",
    "ArbitrageAttack",
    "ArbitrageReport",
    "check_arbitrage_avoiding",
    "find_averaging_attack",
    "evaluate_portfolio",
]

#: Relative tolerance used when comparing prices/variances on a grid.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class PropertyViolation:
    """One violated inequality of Theorem 4.2 (or Lemma 4.1).

    ``prop`` is 1 (price not a function of variance), 2 (δ direction) or
    3 (α direction); the two witness products and the inequality sides are
    recorded for diagnostics.
    """

    prop: int
    point_a: Tuple[float, float]
    point_b: Tuple[float, float]
    lhs: float
    rhs: float

    def describe(self) -> str:
        """Render a one-line human-readable description."""
        return (
            f"property {self.prop} violated between (α, δ)={self.point_a} and "
            f"{self.point_b}: {self.lhs:.6g} vs {self.rhs:.6g}"
        )


@dataclass(frozen=True)
class ArbitrageAttack:
    """A successful averaging attack against a price sheet.

    The adversary buys ``copies`` answers of the cheaper product and
    averages them, obtaining variance ``achieved_variance`` no worse than
    the target product's ``target_variance`` at a lower total price.
    """

    target: Tuple[float, float]
    purchase: Tuple[float, float]
    copies: int
    total_price: float
    target_price: float
    achieved_variance: float
    target_variance: float

    @property
    def savings(self) -> float:
        """Money saved by the attack: list price minus attack cost."""
        return self.target_price - self.total_price

    @property
    def discount(self) -> float:
        """Fractional discount obtained (0..1)."""
        return self.savings / self.target_price

    def describe(self) -> str:
        """Render a one-line human-readable description."""
        return (
            f"buy {self.copies}× (α, δ)={self.purchase} for "
            f"{self.total_price:.6g} instead of (α, δ)={self.target} at "
            f"{self.target_price:.6g} (saves {self.discount:.1%}); averaged "
            f"variance {self.achieved_variance:.6g} ≤ {self.target_variance:.6g}"
        )


@dataclass
class ArbitrageReport:
    """Combined verdict of the property checker and the attack search."""

    violations: List[PropertyViolation] = field(default_factory=list)
    attack: Optional[ArbitrageAttack] = None

    @property
    def arbitrage_avoiding(self) -> bool:
        """True when no property is violated and no attack was found."""
        return not self.violations and self.attack is None


def _default_grid(points: int) -> List[float]:
    """Evenly spaced interior grid over (0, 1) with ``points`` entries."""
    return [(j + 1) / (points + 1) for j in range(points)]


def check_arbitrage_avoiding(
    pricing: PricingFunction,
    alphas: Optional[Sequence[float]] = None,
    deltas: Optional[Sequence[float]] = None,
    rel_tol: float = 1e-7,
) -> ArbitrageReport:
    """Test Theorem 4.2's three properties over an ``(α, δ)`` grid.

    Property 1 (Lemma 4.1) is checked by bucketing grid products by
    delivered variance and requiring equal prices inside a bucket.
    Properties 2 and 3 are checked on every ordered pair along each grid
    axis (not only adjacent points, since the paper states them for every
    ``Δδ, Δα ≥ 0``).  Violations within ``rel_tol`` relative slack are
    ignored to absorb float noise.
    """
    model = pricing.variance_model
    alphas = sorted(alphas if alphas is not None else _default_grid(12))
    deltas = sorted(deltas if deltas is not None else _default_grid(12))
    report = ArbitrageReport()

    # Property 1 (Lemma 4.1): identical variance => identical price.  For
    # each grid product, construct a *different* product with exactly the
    # same delivered variance by solving δ₂ = delta_for(V, α₂) and compare
    # prices.
    for a in alphas:
        for d in deltas:
            v = model.variance(a, d)
            price = pricing.price(a, d)
            for a2 in alphas:
                if a2 <= a:
                    continue
                d2 = model.delta_for(v, a2)
                if not 0.0 <= d2 < 1.0:
                    continue
                price2 = pricing.price(a2, d2)
                if abs(price - price2) > rel_tol * max(abs(price), abs(price2)):
                    report.violations.append(
                        PropertyViolation(1, (a, d), (a2, d2), price, price2)
                    )

    # Property 2: fixed α, increasing δ (variance drops):
    # (π1 − π0)/π1 ≥ (V0 − V1)/V0, i.e. π0·V0 ≤ π1·V1.
    for a in alphas:
        for i in range(len(deltas)):
            for j in range(i + 1, len(deltas)):
                d0, d1 = deltas[i], deltas[j]
                lhs = pricing.price(a, d0) * model.variance(a, d0)
                rhs = pricing.price(a, d1) * model.variance(a, d1)
                if lhs > rhs * (1.0 + rel_tol):
                    report.violations.append(
                        PropertyViolation(2, (a, d0), (a, d1), lhs, rhs)
                    )

    # Property 3: fixed δ, increasing α (variance grows):
    # (π0 − π1)/π0 ≤ (V1 − V0)/V1, i.e. π1·V1 ≥ π0·V0.
    for d in deltas:
        for i in range(len(alphas)):
            for j in range(i + 1, len(alphas)):
                a0, a1 = alphas[i], alphas[j]
                lhs = pricing.price(a1, d) * model.variance(a1, d)
                rhs = pricing.price(a0, d) * model.variance(a0, d)
                if lhs < rhs * (1.0 - rel_tol):
                    report.violations.append(
                        PropertyViolation(3, (a0, d), (a1, d), lhs, rhs)
                    )

    report.attack = find_averaging_attack(
        pricing,
        target_alpha=alphas[0],
        target_delta=deltas[-1],
        candidate_alphas=alphas,
        candidate_deltas=deltas,
    )
    if report.attack is None:
        # Also probe a mid-grid target; tier edges often hide there.
        report.attack = find_averaging_attack(
            pricing,
            target_alpha=alphas[len(alphas) // 2],
            target_delta=deltas[len(deltas) // 2],
            candidate_alphas=alphas,
            candidate_deltas=deltas,
        )
    return report


def find_averaging_attack(
    pricing: PricingFunction,
    target_alpha: float,
    target_delta: float,
    candidate_alphas: Optional[Sequence[float]] = None,
    candidate_deltas: Optional[Sequence[float]] = None,
    max_copies: int = 256,
    min_relative_savings: float = 1e-9,
) -> Optional[ArbitrageAttack]:
    """Search for the Example 4.1 averaging attack against one target.

    For each candidate product with variance ``V' > V_target``, the minimal
    number of copies whose average reaches the target variance is
    ``m = ceil(V'/V_target)``; the attack succeeds when ``m ≤ max_copies``
    and ``m·π'`` undercuts ``π_target`` by at least the relative margin
    ``min_relative_savings`` (a float-noise guard).  Returns the cheapest
    successful attack, or ``None`` when the sheet resists every candidate.
    """
    model = pricing.variance_model
    candidate_alphas = list(candidate_alphas if candidate_alphas is not None
                            else _default_grid(12))
    candidate_deltas = list(candidate_deltas if candidate_deltas is not None
                            else _default_grid(12))
    target_variance = model.variance(target_alpha, target_delta)
    target_price = pricing.price(target_alpha, target_delta)

    best: Optional[ArbitrageAttack] = None
    for a in candidate_alphas:
        for d in candidate_deltas:
            variance = model.variance(a, d)
            if variance <= target_variance * (1.0 + _REL_TOL):
                continue  # not a cheaper/worse product; no arbitrage angle
            copies = math.ceil(variance / target_variance - _REL_TOL)
            if copies < 1 or copies > max_copies:
                continue
            total = copies * pricing.price(a, d)
            if total < target_price * (1.0 - min_relative_savings):
                attack = ArbitrageAttack(
                    target=(target_alpha, target_delta),
                    purchase=(a, d),
                    copies=copies,
                    total_price=total,
                    target_price=target_price,
                    achieved_variance=variance / copies,
                    target_variance=target_variance,
                )
                if best is None or attack.total_price < best.total_price:
                    best = attack
    return best


def evaluate_portfolio(
    pricing: PricingFunction,
    purchases: Sequence[Tuple[float, float]],
) -> Tuple[float, float]:
    """Total price and averaged variance of an arbitrary purchase list.

    Implements Formula (4) for a heterogeneous portfolio: averaging ``m``
    independent answers yields variance ``(1/m²)·Σ V_i``.  Returns
    ``(total_price, averaged_variance)`` so callers can compare any
    hand-crafted strategy against a list price.
    """
    if not purchases:
        raise ValueError("portfolio must contain at least one purchase")
    model = pricing.variance_model
    total_price = sum(pricing.price(a, d) for a, d in purchases)
    averaged = model.averaged_variance([model.variance(a, d) for a, d in purchases])
    return total_price, averaged
