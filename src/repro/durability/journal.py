"""Write-ahead trade journal: the broker's crash-safety record.

The paper's accounting guarantees (arbitrage-free revenue, bounded
cumulative ε) are stated for a broker that never fails.  In production
the dangerous failures are partial ones: a crash *after* drawing Laplace
noise but *before* recording the ε-spend silently leaks privacy budget.
:class:`TradeJournal` closes that window with a write-ahead log: every
trade is appended to the journal **before** the answer is released or
any ledger/accountant/policy state is mutated (the journal-before-release
invariant, statically enforced by lint rule RL006), so the journal is
always a superset of the released answers and recovery can only
over-count ε, never under-count it.

The journal is append-only and fsync-free by default (in-memory); pass a
``path`` to mirror every entry to a JSONL file so it survives process
death.  Entries carry everything the accounting layer needs to rebuild:
``(answer_id, query range, (α, δ), ε′, price, store_version)``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import JournalError

__all__ = ["JournalEntry", "TradeJournal", "JOURNAL_FORMAT", "JOURNAL_VERSION"]

#: Envelope identifiers written into every JSONL line so that readers can
#: reject files produced by a different (or future) journal layout.
JOURNAL_FORMAT = "repro.trade-journal"
JOURNAL_VERSION = 1

#: Entry kinds: a fresh noised release (spends ε′ > 0) vs. the replay of
#: an already-released answer (billed, but ε′ = 0 by post-processing).
ENTRY_KINDS = ("release", "replay")


@dataclass(frozen=True)
class JournalEntry:
    """One journaled trade, written before the answer leaves the broker.

    ``answer_id`` is assigned by the journal, monotonically from 1, and is
    the idempotency key for recovery: replaying the same journal twice
    applies each entry exactly once.
    """

    answer_id: int
    kind: str
    consumer: str
    dataset: str
    low: float
    high: float
    alpha: float
    delta: float
    epsilon_prime: float
    price: float
    store_version: int
    label: str

    def __post_init__(self) -> None:
        if self.kind not in ENTRY_KINDS:
            raise JournalError(
                f"unknown journal entry kind {self.kind!r}; "
                f"expected one of {ENTRY_KINDS}"
            )
        if self.answer_id < 1:
            raise JournalError("answer_id must be >= 1")
        if self.epsilon_prime < 0:
            raise JournalError("epsilon_prime must be non-negative")
        if self.price < 0:
            raise JournalError("price must be non-negative")
        if self.kind == "replay" and self.epsilon_prime != 0.0:
            raise JournalError(
                "replay entries are post-processing and must carry ε′ = 0"
            )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable dict (one JSONL line when file-backed)."""
        payload: Dict[str, Any] = asdict(self)
        payload["format"] = JOURNAL_FORMAT
        payload["version"] = JOURNAL_VERSION
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JournalEntry":
        """Inverse of :meth:`to_payload`; validates the envelope."""
        if payload.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"not a trade-journal payload: format={payload.get('format')!r}"
            )
        if payload.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"unsupported journal version {payload.get('version')!r} "
                f"(this reader understands {JOURNAL_VERSION})"
            )
        fields = {
            key: payload[key]
            for key in (
                "answer_id",
                "kind",
                "consumer",
                "dataset",
                "low",
                "high",
                "alpha",
                "delta",
                "epsilon_prime",
                "price",
                "store_version",
                "label",
            )
        }
        return cls(**fields)


#: Exactly the caller-supplied fields of a journal record (everything but
#: the journal-assigned ``answer_id``).
_RECORD_KEYS = frozenset((
    "kind", "consumer", "dataset", "low", "high", "alpha", "delta",
    "epsilon_prime", "price", "store_version", "label",
))


def _make_entry(answer_id: int, record: "Mapping[str, Any]") -> JournalEntry:
    """Build a validated entry, bypassing the frozen-dataclass ``__init__``.

    Journaling sits on the broker's batched hot path and the frozen
    ``__init__`` (one ``object.__setattr__`` per field) dominates its
    cost; well-shaped records take the direct-``__dict__`` path and run
    the same ``__post_init__`` validation.  Odd shapes fall back to the
    strict constructor for its precise error.
    """
    if record.keys() != _RECORD_KEYS:
        return JournalEntry(answer_id=answer_id, **dict(record))
    entry = object.__new__(JournalEntry)
    entry.__dict__["answer_id"] = answer_id
    entry.__dict__.update(record)
    entry.__post_init__()
    return entry


class TradeJournal:
    """Append-only, thread-safe write-ahead log of broker trades.

    In-memory by default; pass ``path`` to mirror appends to a JSONL file
    (one entry per line, flushed per append, no fsync — the durability
    tier the ISSUE calls for).  Re-opening an existing file with
    :meth:`load` resumes the ``answer_id`` sequence where it left off.
    """

    def __init__(self, path: "Optional[Union[str, Path]]" = None) -> None:
        self._lock = threading.Lock()
        self._entries: "List[JournalEntry]" = []  # guarded-by: _lock
        self._next_id = 1  # guarded-by: _lock
        self._path: "Optional[Path]" = Path(path) if path is not None else None
        self._file: "Optional[IO[str]]" = None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self._path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # Write path                                                         #
    # ------------------------------------------------------------------ #
    def append(self, **fields: Any) -> JournalEntry:
        """Journal one trade; assigns the next ``answer_id`` and returns it."""
        return self.append_many([fields])[0]

    def append_many(
        self, records: "Iterable[Mapping[str, Any]]"
    ) -> "List[JournalEntry]":
        """Journal several trades atomically, in order.

        All entries of a batch land under one lock acquisition (and one
        buffered write when file-backed), so a reader never observes a
        half-journaled batch.
        """
        with self._lock:
            entries: "List[JournalEntry]" = []
            for record in records:
                entry = _make_entry(self._next_id, record)
                self._next_id += 1
                entries.append(entry)
            self._entries.extend(entries)
            if self._file is not None:
                lines = [
                    json.dumps(entry.to_payload(), sort_keys=True)
                    for entry in entries
                ]
                self._file.write("".join(line + "\n" for line in lines))
                self._file.flush()
            return entries

    # ------------------------------------------------------------------ #
    # Read path                                                          #
    # ------------------------------------------------------------------ #
    def entries(self) -> "Tuple[JournalEntry, ...]":
        """Immutable snapshot of every journaled trade, oldest first."""
        with self._lock:
            return tuple(self._entries)

    def entries_after(self, answer_id: int) -> "Tuple[JournalEntry, ...]":
        """Entries with ``answer_id`` strictly greater than the given one."""
        with self._lock:
            return tuple(e for e in self._entries if e.answer_id > answer_id)

    @property
    def last_answer_id(self) -> int:
        """Highest ``answer_id`` journaled so far (0 when empty)."""
        with self._lock:
            return self._next_id - 1

    @property
    def path(self) -> "Optional[Path]":
        """The backing JSONL file, or ``None`` for an in-memory journal."""
        return self._path

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def checksum(self) -> str:
        """SHA-256 over the canonical JSON of every entry (determinism probe)."""
        digest = hashlib.sha256()
        for entry in self.entries():
            digest.update(
                json.dumps(entry.to_payload(), sort_keys=True).encode("utf-8")
            )
        return digest.hexdigest()

    def close(self) -> None:
        """Close the backing file (no-op for in-memory journals)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "TradeJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Recovery entry point                                               #
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: "Union[str, Path]") -> "TradeJournal":
        """Re-open a file-backed journal after a crash.

        Reads every surviving JSONL line, validates the envelope, and
        resumes the ``answer_id`` sequence after the highest recovered id.
        A torn final line (the classic partial-write crash artifact) is
        tolerated and dropped; any other corruption raises
        :class:`~repro.errors.JournalError`.
        """
        source = Path(path)
        entries: "List[JournalEntry]" = []
        if source.exists():
            with source.open("r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
            for lineno, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    if lineno == len(lines):
                        # Torn tail: the process died mid-write.  The entry
                        # was never released (journal-before-release), so
                        # dropping it is safe.
                        break
                    raise JournalError(
                        f"{source}: corrupt journal line {lineno}"
                    ) from None
                entries.append(JournalEntry.from_payload(payload))
        journal = cls(path=source)
        with journal._lock:
            journal._entries.extend(entries)
            if entries:
                journal._next_id = entries[-1].answer_id + 1
        return journal
