"""Crash recovery: rebuild exact accounting state from the trade journal.

Recovery composes two sources:

* an optional :class:`AccountingSnapshot` (a point-in-time copy of the
  ledger and accountant, stamped with the journal high-water mark at
  snapshot time), and
* the journal suffix past that mark.

``restore(snapshot)`` + ``replay_journal(suffix)`` reaches the *exact*
pre-crash accounting state — bit-identical transaction ids, ledger
totals, and accountant history versus an uninterrupted run — and is
idempotent: replaying the same journal twice applies each entry once.
Because brokers journal **before** they charge (RL006), a crash between
journal append and charge makes recovery *over*-count that trade's ε
rather than under-count it, which is the safe direction for privacy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.durability.journal import TradeJournal
from repro.pricing.ledger import BillingLedger
from repro.privacy.budget import BudgetAccountant

__all__ = ["AccountingSnapshot", "snapshot_accounting", "recover_accounting"]


@dataclass(frozen=True)
class AccountingSnapshot:
    """Point-in-time copy of a broker's books, keyed to the journal.

    ``last_answer_id`` is the journal high-water mark at snapshot time:
    recovery replays only entries strictly past it.  Take snapshots at a
    quiesced boundary (e.g. under ``gateway.quiesce()``) so the books and
    the journal agree.
    """

    ledger: Dict[str, Any]
    accountant: Dict[str, Any]
    last_answer_id: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "ledger": self.ledger,
            "accountant": self.accountant,
            "last_answer_id": self.last_answer_id,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "AccountingSnapshot":
        return cls(
            ledger=dict(payload["ledger"]),
            accountant=dict(payload["accountant"]),
            last_answer_id=int(payload["last_answer_id"]),
        )


def snapshot_accounting(
    ledger: BillingLedger,
    accountant: BudgetAccountant,
    journal: TradeJournal,
) -> AccountingSnapshot:
    """Capture the books plus the journal high-water mark, atomically-ish.

    Call at a quiesced boundary: no trade may be between its journal
    append and its charge while the snapshot is taken.
    """
    last_answer_id = journal.last_answer_id
    ledger_state = ledger.snapshot()
    accountant_state = accountant.snapshot()
    # Stamp the journal mark into both books so a restore followed by a
    # *full*-journal replay (not just the suffix) stays idempotent.
    ledger_state["journal_high_water"] = max(
        int(ledger_state["journal_high_water"]), last_answer_id
    )
    accountant_state["journal_high_water"] = max(
        int(accountant_state["journal_high_water"]), last_answer_id
    )
    return AccountingSnapshot(
        ledger=ledger_state,
        accountant=accountant_state,
        last_answer_id=last_answer_id,
    )


def recover_accounting(
    journal: TradeJournal,
    snapshot: "Optional[AccountingSnapshot]" = None,
    capacity: "Optional[float]" = None,
) -> "Tuple[BillingLedger, BudgetAccountant]":
    """Rebuild a fresh ``(ledger, accountant)`` pair from journal + snapshot.

    Without a snapshot the full journal is replayed from genesis; with
    one, ``restore`` is followed by replay of the suffix past
    ``snapshot.last_answer_id``.  ``capacity`` seeds the accountant's cap
    when recovering from genesis (defaults to unlimited; recovery itself
    never enforces the cap — journaled spends are history, not requests).
    """
    ledger = BillingLedger()
    accountant = BudgetAccountant(
        capacity=float("inf") if capacity is None else capacity
    )
    after = 0
    if snapshot is not None:
        ledger.restore(snapshot.ledger)
        accountant.restore(snapshot.accountant)
        after = snapshot.last_answer_id
    suffix = journal.entries_after(after)
    ledger.replay_journal(suffix)
    accountant.replay_journal(suffix)
    return ledger, accountant
