"""Crash-safe accounting: write-ahead trade journal and exact recovery.

``repro.durability`` makes the broker's books survive process death.
Brokers append every trade to a :class:`TradeJournal` *before* releasing
the answer (journal-before-release, lint rule RL006);
:func:`recover_accounting` rebuilds a bit-identical
``(BillingLedger, BudgetAccountant)`` pair from the journal — optionally
fast-forwarded from an :class:`AccountingSnapshot` — without ever
double-charging a journaled answer or under-counting ε.
"""

from repro.durability.journal import (
    JOURNAL_FORMAT,
    JOURNAL_VERSION,
    JournalEntry,
    TradeJournal,
)
from repro.durability.recovery import (
    AccountingSnapshot,
    recover_accounting,
    snapshot_accounting,
)

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "JournalEntry",
    "TradeJournal",
    "AccountingSnapshot",
    "recover_accounting",
    "snapshot_accounting",
]
