"""SARIF 2.1.0 output for ``repro lint --format sarif``.

GitHub code scanning ingests this to annotate PR diffs.  Each finding
becomes one ``result`` with a physical location; interprocedural
findings additionally carry a ``codeFlow`` whose thread-flow locations
replay the trace source-to-sink (SARIF convention: execution order),
and every result exposes the baseline fingerprint under
``partialFingerprints`` so re-runs match up.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from repro.lint.findings import Finding

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_metadata() -> List[Dict[str, Any]]:
    import repro.lint.rules  # noqa: F401  -- populate the registry
    from repro.lint.engine import default_registry
    from repro.lint.flow import create_project_rules

    rules: List[Dict[str, Any]] = []
    for rule in default_registry.create():
        rules.append(_rule_entry(rule.rule_id, rule.name, rule.rationale))
    for project_rule in create_project_rules():
        rules.append(
            _rule_entry(
                project_rule.rule_id, project_rule.name, project_rule.rationale
            )
        )
    return rules


def _rule_entry(rule_id: str, name: str, rationale: str) -> Dict[str, Any]:
    return {
        "id": rule_id,
        "name": name,
        "shortDescription": {"text": name},
        "fullDescription": {"text": rationale},
        "defaultConfiguration": {"level": "error"},
    }


def _location(path: str, line: int, col: int = 0) -> Dict[str, Any]:
    region: Dict[str, Any] = {"startLine": max(line, 1)}
    if col:
        region["startColumn"] = col + 1  # SARIF columns are 1-based
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
            "region": region,
        }
    }


def _code_flow(finding: Finding) -> Dict[str, Any]:
    # Finding traces run sink -> source; SARIF thread flows replay
    # execution order, so emit source -> ... -> sink.
    locations = []
    for hop in reversed(finding.trace):
        entry = _location(hop.path, hop.line)
        entry["message"] = {"text": hop.note}
        locations.append({"location": entry})
    sink = _location(finding.path, finding.line, finding.col)
    sink["message"] = {"text": "released/reported here"}
    locations.append({"location": sink})
    return {"threadFlows": [{"locations": locations}]}


def render_sarif(
    findings: Sequence[Finding], new_fingerprints: Iterable[str]
) -> str:
    """Serialise ``findings`` as one SARIF run.

    ``new_fingerprints`` marks which findings are absent from the
    baseline (``baselineState``: ``new`` vs ``unchanged``).
    """
    new_set = set(new_fingerprints)
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [_location(finding.path, finding.line, finding.col)],
            "partialFingerprints": {
                "reproLint/fingerprint/v1": finding.fingerprint
            },
            "baselineState": (
                "new" if finding.fingerprint in new_set else "unchanged"
            ),
        }
        if finding.trace:
            result["codeFlows"] = [_code_flow(finding)]
        results.append(result)

    payload = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": _rule_metadata(),
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
