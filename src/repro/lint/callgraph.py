"""Project call graph for the interprocedural lint layer (``repro.lint.flow``).

Builds module-level symbol tables (functions, classes, imports) from the
parsed :class:`~repro.lint.engine.FileContext` set and resolves call
expressions to project functions:

* plain names resolve through the enclosing module's functions, classes
  (to ``__init__``), and ``from``-imports;
* ``self.method(...)`` resolves through the enclosing class and its
  project-local bases (class-attribute lookup);
* ``self.attr.method(...)`` resolves through the attribute's declared
  type -- dataclass field annotations and ``self.attr = ClassName(...)``
  assignments in ``__init__``/``__post_init__`` -- and, failing that,
  through a small **alias table** for the duck-typed broker surface
  (``accountant`` is a :class:`BudgetAccountant`, ``journal`` a
  :class:`TradeJournal`, ... regardless of which broker holds it);
* ``module.func(...)`` resolves through import aliases.

Resolution is deliberately conservative: a call that cannot be resolved
returns no candidates and downstream analyses fall back to the same
name-based heuristics the intra-function rules use.  Multiple candidates
(e.g. ``base_station`` may be a :class:`BaseStation` or a
:class:`StreamingStation`) are all returned and joined by the caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.lint.engine import FileContext

__all__ = [
    "ALIAS_TABLE",
    "CallGraph",
    "ClassDecl",
    "FunctionDecl",
    "ModuleTable",
    "dotted_name",
    "call_name",
]

#: Duck-typed attribute names of the broker surface mapped to the class
#: simple-names they may hold at runtime.  Keys are matched after
#: stripping leading underscores (``_pool`` resolves like ``pool``).
ALIAS_TABLE: Mapping[str, Tuple[str, ...]] = {
    "accountant": ("BudgetAccountant",),
    "epoch_accountant": ("EpochBudgetAccountant",),
    "ledger": ("BillingLedger",),
    "journal": ("TradeJournal",),
    "window_log": ("WindowLog",),
    "policy": ("BrokerPolicy",),
    "estimator": ("RankCountingEstimator",),
    "pricing": ("PricingFunction",),
    "base_station": ("BaseStation", "StreamingStation"),
    "station": ("StreamingStation",),
    "broker": ("DataBroker", "ClusterBroker", "StreamingBroker"),
    "pool": ("WorkerPool",),
    "reader": ("StoreReader",),
    "publisher": ("StorePublisher",),
    "handle": ("WorkerHandle",),
    "gateway": ("ServingGateway",),
    "cache": ("AnswerCache",),
    "admission": ("AdmissionController",),
    "telemetry": ("MetricsRegistry",),
}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str:
    """Last segment of the callee (``estimate`` for ``self.x.estimate``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@dataclass
class FunctionDecl:
    """One project function or method."""

    fid: str  #: ``module:Qual.name``
    module: str
    rel_path: str
    name: str
    qualname: str
    cls: Optional[str]
    node: ast.AST  #: the FunctionDef/AsyncFunctionDef
    params: List[str]
    line: int

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassDecl:
    """One project class: methods, bases, and typed attributes."""

    module: str
    name: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> fid
    #: attribute name -> class simple-name, from dataclass annotations
    #: and ``self.attr = ClassName(...)`` constructor assignments.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleTable:
    """Symbols one module defines or imports."""

    module: str
    rel_path: str
    functions: Dict[str, str] = field(default_factory=dict)  #: name -> fid
    classes: Dict[str, ClassDecl] = field(default_factory=dict)
    #: import alias -> ``"pkg.mod"`` (module) or ``"pkg.mod:symbol"``.
    imports: Dict[str, str] = field(default_factory=dict)


def _annotation_class(node: Optional[ast.expr]) -> Optional[str]:
    """Class simple-name named by an annotation, unwrapping Optional/str.

    ``BudgetAccountant`` -> ``BudgetAccountant``;
    ``"Optional[MetricsRegistry]"`` -> ``MetricsRegistry``;
    ``Dict[str, int]`` -> ``None`` (containers are not receiver types).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = dotted_name(node.value)
        if head is not None and head.rsplit(".", 1)[-1] == "Optional":
            inner = node.slice
            return _annotation_class(inner)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``X | None`` -- pick the non-None side.
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return _annotation_class(side)
        return None
    name = dotted_name(node)
    if name is None:
        return None
    simple = name.rsplit(".", 1)[-1]
    return simple if simple[:1].isupper() else None


class CallGraph:
    """Module-qualified resolution of calls across the project."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleTable] = {}
        self.functions: Dict[str, FunctionDecl] = {}
        #: class simple-name -> every project class with that name.
        self.class_index: Dict[str, List[ClassDecl]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: Mapping[str, FileContext]) -> "CallGraph":
        graph = cls()
        for ctx in files.values():
            graph._index_file(ctx)
        return graph

    def _index_file(self, ctx: FileContext) -> None:
        table = ModuleTable(module=ctx.module, rel_path=ctx.rel_path)
        self.modules[ctx.module] = table
        for node in ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.asname and alias.name or alias.name.split(".", 1)[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c->a.b
                    table.imports[bound] = alias.name if alias.asname else target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: out of scope
                for alias in node.names:
                    bound = alias.asname or alias.name
                    table.imports[bound] = f"{node.module}:{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, table, node, cls_decl=None)
            elif isinstance(node, ast.ClassDef):
                self._index_class(ctx, table, node)

    def _index_class(
        self, ctx: FileContext, table: ModuleTable, node: ast.ClassDef
    ) -> None:
        decl = ClassDecl(module=ctx.module, name=node.name)
        for base in node.bases:
            base_name = dotted_name(base)
            if base_name is not None:
                decl.bases.append(base_name.rsplit(".", 1)[-1])
        table.classes[node.name] = decl
        self.class_index.setdefault(node.name, []).append(decl)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, table, item, cls_decl=decl)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                typed = _annotation_class(item.annotation)
                if typed is not None:
                    decl.attr_types[item.target.id] = typed
        # ``self.attr = ClassName(...)`` in __init__/__post_init__.
        for item in node.body:
            if not (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in ("__init__", "__post_init__")
            ):
                continue
            for stmt in ast.walk(item):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                ctor = dotted_name(stmt.value.func)
                if ctor is None:
                    continue
                simple = ctor.rsplit(".", 1)[-1]
                if not simple[:1].isupper():
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        decl.attr_types.setdefault(target.attr, simple)

    def _add_function(
        self,
        ctx: FileContext,
        table: ModuleTable,
        node: ast.AST,
        cls_decl: Optional[ClassDecl],
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qual = node.name if cls_decl is None else f"{cls_decl.name}.{node.name}"
        fid = f"{ctx.module}:{qual}"
        params = [arg.arg for arg in node.args.args]
        if cls_decl is not None and params and params[0] in ("self", "cls"):
            params = params[1:]
        decl = FunctionDecl(
            fid=fid,
            module=ctx.module,
            rel_path=ctx.rel_path,
            name=node.name,
            qualname=qual,
            cls=None if cls_decl is None else cls_decl.name,
            node=node,
            params=params,
            line=node.lineno,
        )
        self.functions[fid] = decl
        if cls_decl is None:
            table.functions[node.name] = fid
        else:
            cls_decl.methods[node.name] = fid

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self, node: ast.Call, caller: FunctionDecl
    ) -> List[FunctionDecl]:
        """Project-function candidates for ``node`` called from ``caller``."""
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, caller.module)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, caller)
        return []

    def _resolve_name(self, name: str, module: str) -> List[FunctionDecl]:
        table = self.modules.get(module)
        if table is None:
            return []
        fid = table.functions.get(name)
        if fid is not None:
            return [self.functions[fid]]
        if name in table.classes:
            return self._constructor(table.classes[name])
        target = table.imports.get(name)
        if target is not None and ":" in target:
            target_module, symbol = target.split(":", 1)
            remote = self.modules.get(target_module)
            if remote is not None:
                if symbol in remote.functions:
                    return [self.functions[remote.functions[symbol]]]
                if symbol in remote.classes:
                    return self._constructor(remote.classes[symbol])
        return []

    def _constructor(self, decl: ClassDecl) -> List[FunctionDecl]:
        for init in ("__init__", "__post_init__"):
            fid = decl.methods.get(init)
            if fid is not None:
                return [self.functions[fid]]
        return []

    def _resolve_attribute(
        self, func: ast.Attribute, caller: FunctionDecl
    ) -> List[FunctionDecl]:
        chain: List[str] = []
        node: ast.AST = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return []
        chain.append(node.id)
        chain.reverse()
        base, rest = chain[0], chain[1:]
        table = self.modules.get(caller.module)

        if base in ("self", "cls") and caller.cls is not None:
            if len(rest) == 1:
                return self._method_in_class_tree(
                    caller.module, caller.cls, rest[0]
                )
            if len(rest) == 2:
                attr, meth = rest
                return self._method_on_attr(caller.module, caller.cls, attr, meth)
            return []

        # ``ClassName.method(...)`` on a local or imported class.
        if len(rest) == 1 and table is not None:
            local_cls = table.classes.get(base)
            if local_cls is not None:
                return self._method_in_class_tree(caller.module, base, rest[0])
            target = table.imports.get(base)
            if target is not None and ":" in target:
                target_module, symbol = target.split(":", 1)
                remote = self.modules.get(target_module)
                if remote is not None and symbol in remote.classes:
                    return self._method_in_class_tree(
                        target_module, symbol, rest[0]
                    )

        # ``module.func(...)`` / ``module.Class.method(...)``.
        if table is not None:
            target = table.imports.get(base)
            if target is not None and ":" not in target:
                remote = self.modules.get(target)
                if remote is not None:
                    if len(rest) == 1 and rest[0] in remote.functions:
                        return [self.functions[remote.functions[rest[0]]]]
                    if len(rest) == 2 and rest[0] in remote.classes:
                        return self._method_in_class_tree(
                            target, rest[0], rest[1]
                        )

        # Duck-typed alias table: ``reader.group_samples(...)``,
        # ``self.accountant.charge(...)`` handled above via attr types;
        # here a bare local name aliases a known surface.
        if len(rest) == 1:
            return self._method_via_alias(caller.module, base, rest[0])
        return []

    def _method_on_attr(
        self, module: str, cls_name: str, attr: str, meth: str
    ) -> List[FunctionDecl]:
        decl = self._class_in_module(module, cls_name)
        typed: Optional[str] = None
        if decl is not None:
            typed = decl.attr_types.get(attr)
        if typed is not None:
            found = self._method_on_class_name(module, typed, meth)
            if found:
                return found
        return self._method_via_alias(module, attr, meth)

    def _method_via_alias(
        self, module: str, name: str, meth: str
    ) -> List[FunctionDecl]:
        key = name.lstrip("_")
        candidates = ALIAS_TABLE.get(key)
        if candidates is None:
            return []
        out: List[FunctionDecl] = []
        for cls_name in candidates:
            out.extend(self._method_on_class_name(module, cls_name, meth))
        return out

    def _method_on_class_name(
        self, module: str, cls_name: str, meth: str
    ) -> List[FunctionDecl]:
        """Method ``meth`` on the class ``cls_name`` -- local/imported first,
        then any project class with that simple name."""
        local = self._class_in_module(module, cls_name)
        scopes: List[ClassDecl] = [local] if local is not None else []
        if not scopes:
            scopes = list(self.class_index.get(cls_name, []))
        out: List[FunctionDecl] = []
        for decl in scopes:
            out.extend(self._method_in_class_tree(decl.module, decl.name, meth))
        return out

    def _class_in_module(self, module: str, cls_name: str) -> Optional[ClassDecl]:
        table = self.modules.get(module)
        if table is None:
            return None
        if cls_name in table.classes:
            return table.classes[cls_name]
        target = table.imports.get(cls_name)
        if target is not None and ":" in target:
            target_module, symbol = target.split(":", 1)
            remote = self.modules.get(target_module)
            if remote is not None:
                return remote.classes.get(symbol)
        return None

    def _method_in_class_tree(
        self, module: str, cls_name: str, meth: str, _depth: int = 0
    ) -> List[FunctionDecl]:
        """Lookup ``meth`` on ``cls_name`` walking project-local bases."""
        if _depth > 8:
            return []
        decl = self._class_in_module(module, cls_name)
        if decl is None:
            for candidate in self.class_index.get(cls_name, []):
                if candidate.module != module:
                    decl = candidate
                    break
        if decl is None:
            return []
        fid = decl.methods.get(meth)
        if fid is not None:
            return [self.functions[fid]]
        for base in decl.bases:
            found = self._method_in_class_tree(
                decl.module, base, meth, _depth=_depth + 1
            )
            if found:
                return found
        return []

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    def functions_in_module_prefix(
        self, prefixes: Sequence[str]
    ) -> List[FunctionDecl]:
        out = [
            decl
            for decl in self.functions.values()
            if any(
                decl.module == p or decl.module.startswith(p + ".")
                for p in prefixes
            )
        ]
        return sorted(out, key=lambda d: (d.rel_path, d.line))
