"""Whole-program interprocedural rules (``repro lint --interprocedural``).

:class:`ProjectContext` owns the project :class:`~repro.lint.callgraph.
CallGraph` and a demand-driven, memoized propagator over the per-function
summaries of :mod:`repro.lint.summaries`: a summary is computed the first
time any caller asks for it, callee summaries are requested recursively,
and recursion cycles resolve to the empty summary (one-pass
approximation; the accounting/answer paths under check are acyclic).

Four project rules run on top:

* **RL001i dp-boundary-flow** -- the RL001 taint walk, but raw-estimate
  taint is tracked *through project calls*, returns, and attribute
  stores until a ``repro.privacy`` sanitizer is reached.  Only findings
  whose trace has at least two hops are reported: single-hop leaks are
  exactly RL001's intra-function territory.
* **RL007 budget-conservation** -- every path of a broker ``answer*``
  function that releases an answer must first be charged to the budget
  accountant AND committed to the write-ahead journal, across calls.
  Conditional effects in the *own* body are accepted (an all-replay
  batch legitimately charges nothing); an obligation discharged through
  a resolved callee requires the callee to perform it on **every** path.
* **RL008 shm-discipline** -- only :class:`StorePublisher` /
  ``_ControlCodec`` write shared-memory buffers, segments are attached
  by name only inside :class:`StoreReader` (data segments only after a
  stable seqlock ``read_control``), zero-copy reader views are never
  mutated (tracked interprocedurally through helpers), and no closure
  crosses the worker pipe.
* **RL009 lock-order** -- the global lock acquisition graph (``with``
  statements plus ``# holds:`` entry annotations, class-level lock
  keys, transitive callee acquisitions) must be acyclic; cycles are
  reported as potential deadlocks with one finding per cycle.

Findings carry :class:`~repro.lint.findings.Hop` traces (sink first,
source last) and flow through the standard suppression machinery: a
``# repro-lint: disable=RLxxx`` pragma at the finding line *or at any
hop of its trace* suppresses exactly that trace.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.callgraph import CallGraph, FunctionDecl, call_name, dotted_name
from repro.lint.engine import FileContext
from repro.lint.findings import Finding, Hop
from repro.lint.summaries import (
    DP_TAINT,
    EFFECT_CHARGE,
    EFFECT_JOURNAL,
    EMPTY_EFFECTS,
    EMPTY_LOCKS,
    TAINTED,
    VIEW_TAINT,
    EffectSummary,
    LockEdge,
    LockSummary,
    TaintConfig,
    TaintSummary,
    TaintWalker,
    compute_effect_summary,
    compute_lock_summary,
    compute_taint_summary,
    header_exprs,
    intrinsic_effects,
    iter_calls,
)

__all__ = [
    "ProjectContext",
    "ProjectRule",
    "project_registry",
    "create_project_rules",
    "run_project_rules",
    "BROKER_MODULES",
]

#: Modules whose ``answer*``/``replay*`` paths release answers (the same
#: scope RL001/RL006 use).  ``repro.resilience`` is inside the scope
#: because brownout/hedging helpers sit on the release path: any future
#: ``answer*`` helper that moves there keeps the same static guarantees.
BROKER_MODULES = (
    "repro.core.broker",
    "repro.cluster.broker",
    "repro.streaming.broker",
    "repro.resilience.brownout",
    "repro.resilience.hedging",
)

_EMPTY_TAINT = TaintSummary()


class ProjectContext:
    """Call graph plus memoized per-function summaries for one tree."""

    def __init__(self, files: Mapping[str, FileContext]) -> None:
        #: rel_path -> FileContext for every parsed file in the run.
        self.files: Dict[str, FileContext] = dict(files)
        self.graph = CallGraph.build(self.files)
        self._taint: Dict[Tuple[str, str], TaintSummary] = {}
        self._taint_active: Set[Tuple[str, str]] = set()
        self._effects: Dict[str, EffectSummary] = {}
        self._effects_active: Set[str] = set()
        self._locks: Dict[str, LockSummary] = {}
        self._locks_active: Set[str] = set()

    def ctx_for(self, decl: FunctionDecl) -> FileContext:
        return self.files[decl.rel_path]

    # ------------------------------------------------------------------
    # summary stores (demand-driven, cycle-guarded)
    # ------------------------------------------------------------------
    def taint_summary(self, decl: FunctionDecl, config: TaintConfig) -> TaintSummary:
        key = (config.channel, decl.fid)
        cached = self._taint.get(key)
        if cached is not None:
            return cached
        if key in self._taint_active:
            return _EMPTY_TAINT
        self._taint_active.add(key)
        try:
            summary = compute_taint_summary(
                decl, self.ctx_for(decl), config, self.taint_callback(decl, config)
            )
        finally:
            self._taint_active.discard(key)
        self._taint[key] = summary
        return summary

    def taint_callback(
        self, caller: FunctionDecl, config: TaintConfig
    ) -> Callable[[ast.Call], List[Tuple[FunctionDecl, TaintSummary]]]:
        """The ``summarize_call`` hook a :class:`TaintWalker` needs."""

        def resolve(node: ast.Call) -> List[Tuple[FunctionDecl, TaintSummary]]:
            return [
                (decl, self.taint_summary(decl, config))
                for decl in self.graph.resolve_call(node, caller)
            ]

        return resolve

    def effect_summary(self, decl: FunctionDecl) -> EffectSummary:
        cached = self._effects.get(decl.fid)
        if cached is not None:
            return cached
        if decl.fid in self._effects_active:
            return EMPTY_EFFECTS
        self._effects_active.add(decl.fid)
        try:
            summary = compute_effect_summary(
                decl,
                self.ctx_for(decl),
                lambda call: self.merged_effects(call, decl),
            )
        finally:
            self._effects_active.discard(decl.fid)
        self._effects[decl.fid] = summary
        return summary

    def merged_effects(
        self, call: ast.Call, caller: FunctionDecl
    ) -> Optional[EffectSummary]:
        """Join of every resolved candidate: must=AND, may=OR."""
        decls = self.graph.resolve_call(call, caller)
        if not decls:
            return None
        summaries = [self.effect_summary(decl) for decl in decls]
        must = frozenset.intersection(*(s.must for s in summaries))
        may = frozenset().union(*(s.may for s in summaries))
        sites: Dict[str, Tuple[Hop, ...]] = {}
        for summary in summaries:
            for effect, hops in summary.sites.items():
                sites.setdefault(effect, hops)
        return EffectSummary(must=must, may=may, sites=sites)

    def lock_summary(self, decl: FunctionDecl) -> LockSummary:
        cached = self._locks.get(decl.fid)
        if cached is not None:
            return cached
        if decl.fid in self._locks_active:
            return EMPTY_LOCKS
        self._locks_active.add(decl.fid)
        try:
            summary = compute_lock_summary(
                decl,
                self.ctx_for(decl),
                lambda call: self.merged_locks(call, decl),
                entry_held=self.entry_held(decl),
            )
        finally:
            self._locks_active.discard(decl.fid)
        self._locks[decl.fid] = summary
        return summary

    def merged_locks(
        self, call: ast.Call, caller: FunctionDecl
    ) -> Optional[LockSummary]:
        decls = self.graph.resolve_call(call, caller)
        if not decls:
            return None
        acquires: Dict[str, Tuple[Hop, ...]] = {}
        edges: List[LockEdge] = []
        for decl in decls:
            summary = self.lock_summary(decl)
            for key, hops in summary.acquires.items():
                acquires.setdefault(key, hops)
            edges.extend(summary.edges)
        return LockSummary(acquires=acquires, edges=tuple(edges))

    def entry_held(self, decl: FunctionDecl) -> FrozenSet[str]:
        """Lock keys a ``# holds:`` annotation declares held on entry."""
        node = decl.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ctx = self.ctx_for(decl)
        holds = ctx.comments.holds(node.lineno)
        if holds is None and node.decorator_list:
            holds = ctx.comments.holds(node.decorator_list[0].lineno)
        if holds is None:
            return frozenset()
        owner = decl.cls or decl.name
        return frozenset({f"{decl.module}.{owner}.{holds}"})

    # ------------------------------------------------------------------
    # finding construction
    # ------------------------------------------------------------------
    def finding(
        self,
        rule_id: str,
        decl_or_ctx: object,
        node: ast.AST,
        message: str,
        trace: Sequence[Hop] = (),
    ) -> Finding:
        ctx = (
            decl_or_ctx
            if isinstance(decl_or_ctx, FileContext)
            else self.ctx_for(decl_or_ctx)  # type: ignore[arg-type]
        )
        line = getattr(node, "lineno", 1)
        return Finding(
            rule_id=rule_id,
            path=ctx.rel_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            line_text=ctx.line_text(line),
            trace=tuple(trace),
        )


# ======================================================================
# rule plumbing
# ======================================================================


class ProjectRule:
    """Base class for whole-program rules (one run per project, not per
    file -- suppression is trace-aware and handled by the driver)."""

    rule_id: str = ""
    name: str = ""
    rationale: str = ""

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRuleRegistry:
    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], ProjectRule]] = {}

    def register(self, factory: Callable[[], ProjectRule]) -> Callable[[], ProjectRule]:
        probe = factory()
        if not probe.rule_id:
            raise ValueError(f"project rule {factory!r} has no rule_id")
        if probe.rule_id in self._factories:
            raise ValueError(f"duplicate project rule id {probe.rule_id}")
        self._factories[probe.rule_id] = factory
        return factory

    def rule_ids(self) -> List[str]:
        return sorted(self._factories)

    def create(self, only: Optional[Sequence[str]] = None) -> List[ProjectRule]:
        if only is None:
            wanted = self.rule_ids()
        else:
            # ``--rules`` lists intra and project ids together; silently
            # take the subset that belongs to this registry.
            wanted = [rid for rid in only if rid in self._factories]
        return [self._factories[rid]() for rid in wanted]


project_registry = ProjectRuleRegistry()


def create_project_rules(only: Optional[Sequence[str]] = None) -> List[ProjectRule]:
    return project_registry.create(only=only)


# ======================================================================
# RL001i -- interprocedural dp-boundary
# ======================================================================


class InterproceduralDpBoundaryRule(ProjectRule):
    """RL001i: raw-count taint tracked across project calls."""

    rule_id = "RL001i"
    name = "dp-boundary-flow"
    rationale = (
        "Moving the Laplace draw into a helper (or deleting it there) "
        "must not blind the DP boundary check: taint follows calls, "
        "returns and attribute stores until a repro.privacy sanitizer."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for decl in project.graph.functions_in_module_prefix(BROKER_MODULES):
            if not decl.name.startswith(("answer", "replay")):
                continue
            ctx = project.ctx_for(decl)
            walker = TaintWalker(
                ctx, DP_TAINT, project.taint_callback(decl, DP_TAINT)
            )
            node = decl.node
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            walker.run(node)
            for event in walker.events:
                if event.value.level != TAINTED:
                    continue
                if len(event.value.hops) < 2:
                    # Single-hop == the source is visible right here;
                    # that is RL001's intra-function finding, not ours.
                    continue
                if event.kind == "return":
                    message = (
                        f"{decl.qualname} returns a count-derived value "
                        "that is never Laplace-perturbed anywhere along "
                        "the call chain (interprocedural dp-boundary)"
                    )
                elif event.kind == "answer":
                    message = (
                        f"{decl.qualname} builds {event.detail} from an "
                        "unperturbed estimate produced across a call "
                        "chain; route it through sample_laplace/"
                        "sample_laplace_many before release"
                    )
                else:
                    continue
                yield project.finding(
                    self.rule_id, ctx, event.node, message, event.value.hops
                )


# ======================================================================
# RL007 -- budget conservation
# ======================================================================


def _is_delegation(expr: Optional[ast.expr]) -> bool:
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Call) and call_name(node).startswith(
        ("answer", "replay")
    )


class _ReleaseWalker:
    """Path walk of one ``answer*`` body checking charge/journal
    domination at each release (non-delegating ``return <value>``).

    ``have`` accumulates effects observed on the current path.  Own-body
    intrinsics merge may-style across branches (the author sees the
    condition; an all-replay batch charges nothing by design), while a
    resolved callee only contributes its **must** effects -- a callee
    that charges on just one branch does not discharge the obligation.
    """

    def __init__(self, project: ProjectContext, decl: FunctionDecl) -> None:
        self.project = project
        self.decl = decl
        self.ctx = project.ctx_for(decl)
        self.findings: List[Finding] = []
        #: effect -> trace hops of a site where it only *may* happen
        #: (conditional inside a callee) -- used to sharpen messages.
        self.weak: Dict[str, Tuple[Hop, ...]] = {}

    def _hop(self, node: ast.AST, note: str) -> Hop:
        line = getattr(node, "lineno", 1)
        return Hop(
            path=self.ctx.rel_path,
            line=line,
            note=note,
            line_text=self.ctx.line_text(line).strip(),
        )

    def _absorb_calls(self, part: ast.AST, have: Set[str]) -> None:
        for node in iter_calls(part):
            have |= intrinsic_effects(node)
            summary = self.project.merged_effects(node, self.decl)
            if summary is None:
                continue
            have |= summary.must
            for effect in summary.may - summary.must:
                if effect not in self.weak:
                    inner = summary.sites.get(effect, ())
                    self.weak[effect] = (
                        self._hop(
                            node,
                            f"`{call_name(node)}(...)` performs the "
                            f"{effect} only on some of its paths",
                        ),
                    ) + inner

    def walk(self, stmts: Sequence[ast.stmt], have: Set[str]) -> bool:
        """Returns True when every path through ``stmts`` terminated."""
        for stmt in stmts:
            for part in header_exprs(stmt):
                self._absorb_calls(part, have)
            if isinstance(stmt, ast.Return):
                if stmt.value is not None and not _is_delegation(stmt.value):
                    self._check_release(stmt, have)
                return True
            if isinstance(stmt, ast.Raise):
                return True
            if isinstance(stmt, ast.If):
                branch_have = set(have)
                else_have = set(have)
                body_done = self.walk(stmt.body, branch_have)
                else_done = self.walk(stmt.orelse, else_have)
                if body_done and else_done:
                    return True
                survivors = [
                    state
                    for state, done in (
                        (branch_have, body_done),
                        (else_have, else_done),
                    )
                    if not done
                ]
                have.clear()
                have.update(*survivors)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                loop_have = set(have)
                self.walk(stmt.body, loop_have)
                self.walk(stmt.orelse, loop_have)
                have |= loop_have
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                if self.walk(stmt.body, have):
                    return True
            elif isinstance(stmt, ast.Try):
                body_have = set(have)
                self.walk(stmt.body, body_have)
                have |= body_have
                for handler in stmt.handlers:
                    handler_have = set(have)
                    self.walk(handler.body, handler_have)
                    have |= handler_have
                else_have = set(have)
                self.walk(stmt.orelse, else_have)
                have |= else_have
                if self.walk(stmt.finalbody, have):
                    return True
        return False

    def _check_release(self, stmt: ast.Return, have: Set[str]) -> None:
        for effect, what, fix in (
            (
                EFFECT_CHARGE,
                "the budget accountant is never charged",
                "charge the accountant (accountant.charge/charge_many)",
            ),
            (
                EFFECT_JOURNAL,
                "the trade is never committed to the write-ahead journal",
                "append the trade (self._journal_trades or journal.append)",
            ),
        ):
            if effect in have:
                continue
            trace: Tuple[Hop, ...] = ()
            detail = ""
            if effect in self.weak:
                trace = self.weak[effect]
                detail = " on every path of the callee it delegates to"
            self.findings.append(
                self.project.finding(
                    "RL007",
                    self.ctx,
                    stmt,
                    f"{self.decl.qualname} releases an answer on a path "
                    f"where {what}; {fix}{detail} before the return "
                    "(budget conservation)",
                    trace,
                )
            )


class BudgetConservationRule(ProjectRule):
    """RL007: release sites dominated by accountant charge + journal."""

    rule_id = "RL007"
    name = "budget-conservation"
    rationale = (
        "An answer released without a matching accountant charge and "
        "journal commit breaks the paper's eps' accounting invariant: "
        "the spend either never happens or cannot be recovered after a "
        "crash.  The eps'=0 replay path is exempt by construction."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for decl in project.graph.functions_in_module_prefix(BROKER_MODULES):
            if not decl.name.startswith("answer"):
                continue
            node = decl.node
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            walker = _ReleaseWalker(project, decl)
            walker.walk(node.body, set())
            yield from walker.findings


# ======================================================================
# RL008 -- shared-memory discipline
# ======================================================================

_STORE_MODULE = "repro.workers.store"
_BUF_WRITERS = ("StorePublisher", "_ControlCodec")


def _subscript_buf_base(target: ast.expr) -> Optional[str]:
    """Dotted base of a ``<...>.buf[...]`` store target, else None."""
    if not isinstance(target, ast.Subscript):
        return None
    base = target.value
    dotted = dotted_name(base)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    return dotted if last == "buf" else None


def _attaches_by_name(node: ast.Call) -> bool:
    if call_name(node) != "SharedMemory":
        return False
    has_name = any(kw.arg == "name" for kw in node.keywords)
    creates = any(kw.arg == "create" for kw in node.keywords)
    return has_name and not creates


class SharedMemoryDisciplineRule(ProjectRule):
    """RL008: writer/reader/seqlock/pipe discipline of the shm store."""

    rule_id = "RL008"
    name = "shm-discipline"
    rationale = (
        "The zero-copy worker store is only safe because exactly one "
        "writer mutates segments, readers attach through the seqlock "
        "control block, reader views are immutable, and the worker "
        "pipe carries plain picklable payloads."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for decl in self._scope(project):
            ctx = project.ctx_for(decl)
            yield from self._check_structure(project, ctx, decl)
            yield from self._check_view_writes(project, ctx, decl)

    def _scope(self, project: ProjectContext) -> List[FunctionDecl]:
        out = []
        for decl in project.graph.functions.values():
            if decl.module.startswith("repro.workers"):
                out.append(decl)
                continue
            ctx = project.ctx_for(decl)
            if "group_samples" in ctx.source or "StoreReader" in ctx.source:
                out.append(decl)
        return sorted(out, key=lambda d: (d.rel_path, d.line))

    # -- structural checks ---------------------------------------------
    def _check_structure(
        self, project: ProjectContext, ctx: FileContext, decl: FunctionDecl
    ) -> Iterator[Finding]:
        node = decl.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        control_read_lines: List[int] = []
        calls: List[ast.Call] = []
        writes: List[Tuple[ast.expr, str]] = []
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    dotted = _subscript_buf_base(target)
                    if dotted is not None:
                        writes.append((target, dotted))
            if isinstance(stmt, ast.Call):
                calls.append(stmt)
                if call_name(stmt) == "read_control":
                    control_read_lines.append(stmt.lineno)

        for target, dotted in writes:
            if decl.module == _STORE_MODULE and decl.cls in _BUF_WRITERS:
                continue
            yield project.finding(
                self.rule_id,
                ctx,
                target,
                f"{decl.qualname} writes the shared-memory buffer "
                f"`{dotted}[...]`; only StorePublisher/_ControlCodec in "
                "repro.workers.store may mutate shm segments",
            )

        for node_call in calls:
            if _attaches_by_name(node_call):
                yield from self._check_attach(
                    project, ctx, decl, node_call, control_read_lines
                )
            yield from self._check_pipe_send(project, ctx, decl, node_call)

    def _check_attach(
        self,
        project: ProjectContext,
        ctx: FileContext,
        decl: FunctionDecl,
        node: ast.Call,
        control_read_lines: List[int],
    ) -> Iterator[Finding]:
        if not (decl.module == _STORE_MODULE and decl.cls == "StoreReader"):
            yield project.finding(
                self.rule_id,
                ctx,
                node,
                f"{decl.qualname} attaches a shared-memory segment by "
                "name; only StoreReader may attach (readers follow the "
                "seqlock control block, everything else receives views)",
            )
            return
        if decl.name == "__init__":
            return  # the initial control-block attach has no generation yet
        if not any(line < node.lineno for line in control_read_lines):
            yield project.finding(
                self.rule_id,
                ctx,
                node,
                f"{decl.qualname} attaches a data segment without a "
                "preceding stable read_control() -- the seqlock "
                "generation must be validated before and after reading "
                "the segment pointer",
            )

    def _check_pipe_send(
        self,
        project: ProjectContext,
        ctx: FileContext,
        decl: FunctionDecl,
        node: ast.Call,
    ) -> Iterator[Finding]:
        if call_name(node) != "send":
            return
        dotted = dotted_name(node.func) or ""
        if "conn" not in dotted and "pipe" not in dotted:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for inner in ast.walk(arg):
                if isinstance(inner, ast.Lambda):
                    yield project.finding(
                        self.rule_id,
                        ctx,
                        inner,
                        f"{decl.qualname} sends a closure across the "
                        "worker pipe; pipe payloads must be plain "
                        "picklable data (no code, no ambient state)",
                    )
                elif isinstance(inner, ast.Call) and call_name(inner) in (
                    "default_rng",
                    "Generator",
                ):
                    yield project.finding(
                        self.rule_id,
                        ctx,
                        inner,
                        f"{decl.qualname} sends an RNG across the worker "
                        "pipe; the Laplace stream stays in the "
                        "coordinator (workers are RNG-free, RL002)",
                    )

    # -- interprocedural view-write taint --------------------------------
    def _check_view_writes(
        self, project: ProjectContext, ctx: FileContext, decl: FunctionDecl
    ) -> Iterator[Finding]:
        if decl.module == _STORE_MODULE and decl.cls in (
            "StorePublisher",
            "_ControlCodec",
        ):
            return
        walker = TaintWalker(
            ctx, VIEW_TAINT, project.taint_callback(decl, VIEW_TAINT)
        )
        node = decl.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        walker.run(node)
        for event in walker.events:
            if event.kind != "write" or event.value.level != TAINTED:
                continue
            yield project.finding(
                self.rule_id,
                ctx,
                event.node,
                f"{decl.qualname} mutates a zero-copy StoreReader view "
                "(group_samples hands out read-only windows into the "
                "shared segment); materialise with .copy() before "
                "modifying",
                event.value.hops,
            )


# ======================================================================
# RL009 -- lock order
# ======================================================================


class LockOrderRule(ProjectRule):
    """RL009: the global lock acquisition graph must be acyclic."""

    rule_id = "RL009"
    name = "lock-order"
    rationale = (
        "Two code paths acquiring the same pair of locks in opposite "
        "orders deadlock under load; the serving/cluster/streaming/"
        "worker layers share locks across module boundaries, so the "
        "acquisition graph is checked whole-program."
    )

    _PREFIXES = ("repro",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        edges: Dict[Tuple[str, str], LockEdge] = {}
        for decl in project.graph.functions_in_module_prefix(self._PREFIXES):
            summary = project.lock_summary(decl)
            for edge in summary.edges:
                if edge.src == edge.dst:
                    # Same class-level key on both sides is usually two
                    # *instances* (hand-over-hand); instance-level
                    # re-entry is RL003's concern.
                    continue
                edges.setdefault((edge.src, edge.dst), edge)

        adjacency: Dict[str, Set[str]] = {}
        for src, dst in edges:
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set())

        seen_cycles: Set[Tuple[str, ...]] = set()
        for component in _strongly_connected(adjacency):
            if len(component) < 2:
                continue
            cycle = _cycle_through(adjacency, component)
            if cycle is None:
                continue
            canonical = _canonical_cycle(cycle)
            if canonical in seen_cycles:
                continue
            seen_cycles.add(canonical)
            cycle_edges = [
                edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
                for i in range(len(cycle))
            ]
            trace: List[Hop] = []
            for edge in cycle_edges:
                trace.extend(edge.hops)
            first = cycle_edges[0].hops[0]
            pretty = " -> ".join([*cycle, cycle[0]])
            yield Finding(
                rule_id=self.rule_id,
                path=first.path,
                line=first.line,
                col=0,
                message=(
                    f"lock-order cycle (potential deadlock): {pretty}; "
                    "acquire these locks in one global order or annotate "
                    "the intended nesting with # holds:"
                ),
                line_text=first.line_text,
                trace=tuple(trace),
            )


def _strongly_connected(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan SCC over the lock graph (deterministic order)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for root in sorted(adjacency):
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(sorted(adjacency[root])))
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def _cycle_through(
    adjacency: Dict[str, Set[str]], component: List[str]
) -> Optional[List[str]]:
    """A simple cycle through ``min(component)`` inside the component."""
    members = set(component)
    start = component[0]
    path = [start]
    visited = {start}

    def dfs(node: str) -> bool:
        for nxt in sorted(adjacency.get(node, ())):
            if nxt == start and len(path) > 1:
                return True
            if nxt in members and nxt not in visited:
                visited.add(nxt)
                path.append(nxt)
                if dfs(nxt):
                    return True
                path.pop()
        return False

    return path if dfs(start) else None


def _canonical_cycle(cycle: List[str]) -> Tuple[str, ...]:
    pivot = cycle.index(min(cycle))
    return tuple(cycle[pivot:] + cycle[:pivot])


# ======================================================================
# driver
# ======================================================================

project_registry.register(InterproceduralDpBoundaryRule)
project_registry.register(BudgetConservationRule)
project_registry.register(SharedMemoryDisciplineRule)
project_registry.register(LockOrderRule)


def _is_suppressed(finding: Finding, files: Mapping[str, FileContext]) -> bool:
    """Trace-aware suppression: a disable pragma at the finding line or
    at *any* hop of its trace suppresses exactly this finding."""
    ctx = files.get(finding.path)
    if ctx is not None and finding.rule_id in ctx.comments.disabled_rules(
        finding.line
    ):
        return True
    for hop in finding.trace:
        hop_ctx = files.get(hop.path)
        if hop_ctx is not None and finding.rule_id in hop_ctx.comments.disabled_rules(
            hop.line
        ):
            return True
    return False


def run_project_rules(
    files: Mapping[str, FileContext],
    only: Optional[Sequence[str]] = None,
    project: Optional[ProjectContext] = None,
) -> Tuple[List[Finding], int, ProjectContext]:
    """Run every project rule over ``files``.

    Returns ``(findings, suppressed_count, project_context)``; the
    context is returned so callers (the cache layer) can persist its
    memoized summaries.
    """
    if project is None:
        project = ProjectContext(files)
    findings: List[Finding] = []
    suppressed = 0
    for rule in create_project_rules(only):
        for finding in rule.check_project(project):
            if _is_suppressed(finding, files):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings, suppressed, project
