"""Per-function summaries for the interprocedural lint layer.

Three summary families are computed per project function, each by one
structural walk of the function body, with callee knowledge supplied by
the demand-driven propagator in :mod:`repro.lint.flow`:

* **Taint** (:class:`TaintSummary`) -- does the return value derive from
  a taint source (``estimate*`` / ``true_count`` for the DP channel,
  ``group_samples`` reader views for the shared-memory channel), does it
  pass through a sanitizer (``sample_laplace*`` / an explicit ``copy``),
  and which *parameters* flow to the return unsanitized?  The parameter
  dependency set is what makes the analysis interprocedural: a helper
  that merely returns its argument propagates the caller's taint, and a
  helper that noises its argument cleanses it.
* **Effects** (:class:`EffectSummary`) -- which accounting effects the
  function performs transitively (``charge``: the budget accountant is
  debited; ``journal``: the write-ahead trade journal is appended to),
  split into **must** (on every path) and **may** (on some path), with
  call-chain trace hops to the first site.
* **Locks** (:class:`LockSummary`) -- which locks the function acquires
  transitively (``with self._lock`` plus ``# holds:`` annotations), and
  the *ordering edges* observed inside it: lock B acquired -- directly
  or through a callee -- while lock A is held.

Taint levels reuse the intra-rule lattice of RL001: ``CLEAN`` <
``NOISED`` < ``TAINTED``; in expression combination NOISED dominates
(``estimate + noise`` is perturbed), at branch merges TAINTED dominates
(raw on any path is a leak).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.callgraph import FunctionDecl, call_name, dotted_name
from repro.lint.engine import FileContext
from repro.lint.findings import Hop

__all__ = [
    "CLEAN",
    "NOISED",
    "TAINTED",
    "Abstract",
    "TaintConfig",
    "TaintSummary",
    "TaintWalker",
    "SinkEvent",
    "DP_TAINT",
    "VIEW_TAINT",
    "EffectSummary",
    "EMPTY_EFFECTS",
    "compute_effect_summary",
    "intrinsic_effects",
    "iter_calls",
    "header_exprs",
    "EFFECT_CHARGE",
    "EFFECT_JOURNAL",
    "LockSummary",
    "LockEdge",
    "EMPTY_LOCKS",
    "compute_lock_summary",
    "compute_taint_summary",
]

CLEAN, NOISED, TAINTED = 0, 1, 2

_EMPTY_DEPS: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class Abstract:
    """Abstract value: taint level, parameter deps, trace to the source."""

    level: int = CLEAN
    deps: FrozenSet[int] = _EMPTY_DEPS
    hops: Tuple[Hop, ...] = ()


_CLEAN_VAL = Abstract()


def _combine_expr(values: Iterable[Abstract]) -> Abstract:
    """Join inside one expression: noise cleanses taint."""
    level = CLEAN
    deps: Set[int] = set()
    hops: Tuple[Hop, ...] = ()
    for val in values:
        if val.level == NOISED:
            return Abstract(NOISED)
        if val.level == TAINTED and level != TAINTED:
            level = TAINTED
            hops = val.hops
        deps.update(val.deps)
    return Abstract(level, frozenset(deps), hops)


def _merge_branch(a: Abstract, b: Abstract) -> Abstract:
    """Join across control-flow branches: taint on any path survives."""
    if a.level >= b.level:
        level, hops = a.level, a.hops or b.hops
    else:
        level, hops = b.level, b.hops or a.hops
    return Abstract(level, a.deps | b.deps, hops)


@dataclass(frozen=True)
class TaintConfig:
    """One taint channel: its sources, sanitizers, and sink shapes."""

    channel: str
    sources: FrozenSet[str]
    source_attrs: FrozenSet[str]
    sanitizers: FrozenSet[str]
    propagators: FrozenSet[str]
    #: ``*Answer(value=..., raw_value=...)`` construction is a sink.
    answer_fields: Tuple[str, ...] = ()
    #: Subscript/attribute stores and mutator calls through tainted
    #: values are sinks (the shared-memory view channel).
    check_writes: bool = False
    mutators: FrozenSet[str] = frozenset()


DP_TAINT = TaintConfig(
    channel="dp",
    sources=frozenset({"estimate", "estimate_many", "true_count", "exact_count"}),
    source_attrs=frozenset({"sample_estimate"}),
    sanitizers=frozenset(
        {"sample_laplace", "sample_laplace_many", "sample_noise", "sample_geometric"}
    ),
    propagators=frozenset(
        {
            "float", "int", "abs", "min", "max", "sum", "round", "tuple", "list",
            "asarray", "array", "clip", "where", "maximum", "minimum",
            "copy", "astype", "reshape", "zeros_like",
        }
    ),
    answer_fields=("value", "raw_value"),
)

VIEW_TAINT = TaintConfig(
    channel="view",
    sources=frozenset({"group_samples"}),
    source_attrs=frozenset(),
    # An explicit materialisation detaches from the shared segment.
    sanitizers=frozenset({"copy", "deepcopy", "array", "tolist", "list"}),
    propagators=frozenset({"asarray", "reshape", "astype", "min", "max"}),
    check_writes=True,
    mutators=frozenset({"sort", "fill", "put", "itemset", "partition"}),
)


@dataclass(frozen=True)
class TaintSummary:
    """How taint moves through one function, seen from a call site."""

    level: int = CLEAN
    deps: FrozenSet[int] = _EMPTY_DEPS
    #: For ``level == TAINTED``: hops from the function's return down to
    #: its internal taint source.
    trace: Tuple[Hop, ...] = ()
    #: For dep-carrying returns: hops inside the callee the caller's
    #: argument taint flows through (typically the return statement).
    through: Tuple[Hop, ...] = ()
    #: Parameter indices the function *writes through* (view channel),
    #: with hops to the write site.
    writes: Dict[int, Tuple[Hop, ...]] = field(default_factory=dict)


EMPTY_TAINT = TaintSummary()


@dataclass(frozen=True)
class SinkEvent:
    """One potential sink the walker saw (rules decide what fires)."""

    kind: str  #: ``return`` / ``answer`` / ``write``
    node: ast.AST
    value: Abstract
    detail: str = ""


#: Resolves a call to ``[(callee decl, its taint summary), ...]``.
SummarizeCall = Callable[[ast.Call], List[Tuple[FunctionDecl, TaintSummary]]]


class TaintWalker:
    """Generic forward taint walk over one function body.

    Mirrors the intra-function RL001 walk (same lattice, same statement
    coverage) but classifies *resolved* project calls through their
    :class:`TaintSummary` and tracks attribute stores (``self.x = raw``
    then ``self.x`` later) via dotted environment keys.
    """

    def __init__(
        self,
        ctx: FileContext,
        config: TaintConfig,
        summarize_call: SummarizeCall,
        param_env: Optional[Dict[str, Abstract]] = None,
    ) -> None:
        self.ctx = ctx
        self.config = config
        self.summarize_call = summarize_call
        self.env: Dict[str, Abstract] = dict(param_env or {})
        self.events: List[SinkEvent] = []
        #: Param writes observed (view channel): param idx -> hops.
        self.param_writes: Dict[int, Tuple[Hop, ...]] = {}

    # -- plumbing ------------------------------------------------------
    def _hop(self, node: ast.AST, note: str) -> Hop:
        line = getattr(node, "lineno", 1)
        return Hop(
            path=self.ctx.rel_path,
            line=line,
            note=note,
            line_text=self.ctx.line_text(line).strip(),
        )

    # -- statement walk -------------------------------------------------
    def run(self, func: ast.AST) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._walk_block(func.body)

    def _walk_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._check_sinks(stmt)
            if isinstance(stmt, ast.Assign):
                value_state = self.classify(stmt.value)
                for target in stmt.targets:
                    self._bind(target, value_state)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._bind(stmt.target, self.classify(stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                merged = _combine_expr(
                    (self.classify(stmt.target), self.classify(stmt.value))
                )
                self._bind(stmt.target, merged)
            elif isinstance(stmt, ast.If):
                saved = dict(self.env)
                self._walk_block(stmt.body)
                body_env = self.env
                self.env = dict(saved)
                self._walk_block(stmt.orelse)
                else_env = self.env
                self.env = saved
                for var in set(body_env) | set(else_env):
                    self.env[var] = _merge_branch(
                        body_env.get(var, _CLEAN_VAL),
                        else_env.get(var, _CLEAN_VAL),
                    )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind(stmt.target, self.classify(stmt.iter))
                self._walk_block(stmt.body)
                self._walk_block(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._walk_block(stmt.body)
                self._walk_block(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.classify(item.context_expr)
                self._walk_block(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._walk_block(stmt.body)
                for handler in stmt.handlers:
                    self._walk_block(handler.body)
                self._walk_block(stmt.orelse)
                self._walk_block(stmt.finalbody)
            elif isinstance(stmt, (ast.Expr, ast.Return, ast.Raise)):
                value = getattr(stmt, "value", None) or getattr(stmt, "exc", None)
                if value is not None:
                    self.classify(value)
            # Nested function/class definitions are deliberately skipped:
            # closures are RL003's concern, not a release path.

    def _check_sinks(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self.events.append(
                SinkEvent("return", stmt, self.classify(stmt.value))
            )
        if self.config.check_writes and isinstance(
            stmt, (ast.Assign, ast.AugAssign)
        ):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    base_val = self.classify(target.value)
                    self._record_write(target, base_val)
        if self.config.answer_fields and isinstance(
            stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr, ast.Return)
        ):
            value = getattr(stmt, "value", None)
            if value is not None:
                self._check_answer_calls(value)

    def _record_write(self, target: ast.AST, base_val: Abstract) -> None:
        if base_val.level == TAINTED:
            self.events.append(SinkEvent("write", target, base_val))
        for dep in base_val.deps:
            self.param_writes.setdefault(
                dep, (self._hop(target, "writes through the parameter here"),)
            )

    def _check_answer_calls(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if not callee.endswith("Answer"):
                continue
            fields = self.config.answer_fields
            for pos, arg in enumerate(node.args[: len(fields)]):
                val = self.classify(arg)
                if val.level == TAINTED:
                    self.events.append(
                        SinkEvent("answer", arg, val, detail=f"{callee}({fields[pos]}=...)")
                    )
            for kw in node.keywords:
                if kw.arg in fields:
                    val = self.classify(kw.value)
                    if val.level == TAINTED:
                        self.events.append(
                            SinkEvent("answer", kw.value, val, detail=f"{callee}({kw.arg}=...)")
                        )

    # -- expression classification --------------------------------------
    def _bind(self, target: ast.expr, value: Abstract) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Attribute):
            dotted = dotted_name(target)
            if dotted is not None:
                self.env[dotted] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, value)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value)

    def classify(self, node: ast.expr) -> Abstract:
        cfg = self.config
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _CLEAN_VAL)
        if isinstance(node, ast.Constant):
            return _CLEAN_VAL
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None and dotted in self.env:
                stored = self.env[dotted]
                if stored.level == TAINTED:
                    # Attribute stores launder taint past the purely
                    # local intra-rule; add a hop so the trace (and the
                    # interprocedural-only filter) see the indirection.
                    return Abstract(
                        TAINTED,
                        deps=stored.deps,
                        hops=(
                            self._hop(node, f"reads `{dotted}` stored earlier"),
                        )
                        + stored.hops,
                    )
                return stored
            if node.attr in cfg.source_attrs:
                return Abstract(
                    TAINTED,
                    hops=(self._hop(node, f"reads raw `.{node.attr}`"),),
                )
            return self.classify(node.value)
        if isinstance(node, ast.Call):
            return self._classify_call(node)
        if isinstance(node, ast.BinOp):
            return _combine_expr(
                (self.classify(node.left), self.classify(node.right))
            )
        if isinstance(node, ast.UnaryOp):
            return self.classify(node.operand)
        if isinstance(node, ast.BoolOp):
            return _combine_expr(self.classify(value) for value in node.values)
        if isinstance(node, ast.IfExp):
            self.classify(node.test)
            return _merge_branch(
                self.classify(node.body), self.classify(node.orelse)
            )
        if isinstance(node, (ast.Subscript, ast.Starred)):
            return self.classify(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = _CLEAN_VAL
            for element in node.elts:
                out = _merge_branch(out, self.classify(element))
            return out
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            saved = dict(self.env)
            for comp in node.generators:
                self._bind(comp.target, self.classify(comp.iter))
            result = self.classify(node.elt)
            self.env = saved
            return result
        if isinstance(node, ast.NamedExpr):
            value = self.classify(node.value)
            self._bind(node.target, value)
            return value
        return _CLEAN_VAL

    def _classify_call(self, node: ast.Call) -> Abstract:
        cfg = self.config
        callee = call_name(node)
        if callee in cfg.sanitizers:
            for arg in node.args:
                self.classify(arg)
            return Abstract(NOISED)
        if callee in cfg.sources:
            return Abstract(
                TAINTED,
                hops=(self._hop(node, f"taint source: `{callee}(...)`"),),
            )
        if cfg.check_writes and callee in cfg.mutators:
            if isinstance(node.func, ast.Attribute):
                base_val = self.classify(node.func.value)
                self._record_write(node, base_val)
        resolved = self.summarize_call(node)
        if resolved:
            return self._apply_summaries(node, callee, resolved)
        arg_states = [self.classify(arg) for arg in node.args]
        arg_states.extend(
            self.classify(kw.value) for kw in node.keywords if kw.value is not None
        )
        if callee in cfg.propagators:
            return _combine_expr(arg_states)
        return _CLEAN_VAL

    def _arg_for_param(
        self, node: ast.Call, decl: FunctionDecl, index: int
    ) -> Optional[ast.expr]:
        if index < len(node.args):
            arg = node.args[index]
            return None if isinstance(arg, ast.Starred) else arg
        if index < len(decl.params):
            wanted = decl.params[index]
            for kw in node.keywords:
                if kw.arg == wanted:
                    return kw.value
        return None

    def _apply_summaries(
        self,
        node: ast.Call,
        callee: str,
        resolved: List[Tuple[FunctionDecl, TaintSummary]],
    ) -> Abstract:
        results: List[Abstract] = []
        for decl, summary in resolved:
            call_hop = self._hop(
                node, f"calls `{decl.qualname}` ({decl.rel_path}:{decl.line})"
            )
            # Writes through parameters (view channel).
            for pidx, write_hops in summary.writes.items():
                arg = self._arg_for_param(node, decl, pidx)
                if arg is None:
                    continue
                aval = self.classify(arg)
                if aval.level == TAINTED:
                    self.events.append(
                        SinkEvent(
                            "write",
                            node,
                            Abstract(
                                TAINTED,
                                hops=(call_hop,) + write_hops + aval.hops,
                            ),
                        )
                    )
                for dep in aval.deps:
                    self.param_writes.setdefault(
                        dep, (call_hop,) + write_hops
                    )
            parts: List[Abstract] = []
            if summary.level == NOISED:
                parts.append(Abstract(NOISED))
            elif summary.level == TAINTED:
                parts.append(
                    Abstract(TAINTED, hops=(call_hop,) + summary.trace)
                )
            for dep in summary.deps:
                arg = self._arg_for_param(node, decl, dep)
                if arg is None:
                    continue
                aval = self.classify(arg)
                if aval.level == TAINTED:
                    parts.append(
                        Abstract(
                            TAINTED,
                            deps=aval.deps,
                            hops=(call_hop,) + summary.through + aval.hops,
                        )
                    )
                else:
                    parts.append(Abstract(aval.level, aval.deps))
            results.append(_combine_expr(parts) if parts else _CLEAN_VAL)
        out = results[0]
        for other in results[1:]:
            out = _merge_branch(out, other)
        return out


def compute_taint_summary(
    decl: FunctionDecl,
    ctx: FileContext,
    config: TaintConfig,
    summarize_call: SummarizeCall,
) -> TaintSummary:
    """Summarise ``decl`` for one taint channel (callees via callback)."""
    param_env = {
        name: Abstract(CLEAN, frozenset({i}))
        for i, name in enumerate(decl.params)
    }
    walker = TaintWalker(ctx, config, summarize_call, param_env)
    walker.run(decl.node)
    level = CLEAN
    deps: Set[int] = set()
    trace: Tuple[Hop, ...] = ()
    through: Tuple[Hop, ...] = ()
    for event in walker.events:
        if event.kind != "return":
            continue
        val = event.value
        if val.level == TAINTED and level != TAINTED:
            level = TAINTED
            trace = (
                walker._hop(event.node, f"`{decl.qualname}` returns it raw"),
            ) + val.hops
        elif val.level == NOISED and level == CLEAN:
            level = NOISED
        if val.deps and not through:
            through = (
                walker._hop(
                    event.node,
                    f"`{decl.qualname}` returns the parameter unsanitized",
                ),
            )
        deps.update(val.deps)
    return TaintSummary(
        level=level,
        deps=frozenset(deps),
        trace=trace,
        through=through,
        writes=dict(walker.param_writes),
    )


# ======================================================================
# accounting effects (charge / journal)
# ======================================================================

EFFECT_CHARGE = "charge"
EFFECT_JOURNAL = "journal"


@dataclass(frozen=True)
class EffectSummary:
    """Accounting effects a function performs, transitively."""

    must: FrozenSet[str] = frozenset()
    may: FrozenSet[str] = frozenset()
    sites: Dict[str, Tuple[Hop, ...]] = field(default_factory=dict)

    @property
    def conditional(self) -> FrozenSet[str]:
        """Effects present on some but not all paths."""
        return self.may - self.must


EMPTY_EFFECTS = EffectSummary()

#: Resolves a call to the merged EffectSummary of its project callees
#: (or None when unresolved).
ResolveEffects = Callable[[ast.Call], Optional[EffectSummary]]


def iter_calls(node: ast.AST) -> Iterable[ast.Call]:
    """Calls under ``node`` without entering nested function/lambda bodies."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def header_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The parts of ``stmt`` that execute unconditionally when ``stmt``
    is reached -- its header for compound statements, the whole thing
    for simple ones.  Branch/loop/handler bodies are *not* included;
    structural walkers recurse into those themselves."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]


def intrinsic_effects(node: ast.Call) -> FrozenSet[str]:
    """Effects a call performs by name, independent of resolution.

    Mirrors RL006's journal matcher and adds the accountant charge
    family: ``charge`` / ``charge_many`` / ``charge_window`` on a dotted
    receiver containing ``accountant``.
    """
    callee = call_name(node)
    effects: Set[str] = set()
    dotted = dotted_name(node.func) or ""
    if callee.startswith("_journal"):
        effects.add(EFFECT_JOURNAL)
    elif callee in ("append", "append_many") and "journal" in dotted.lower():
        effects.add(EFFECT_JOURNAL)
    elif callee == "append_charge" and (
        "log" in dotted.lower() or "journal" in dotted.lower()
    ):
        effects.add(EFFECT_JOURNAL)
    if callee in ("charge", "charge_many", "charge_window") and (
        "accountant" in dotted.lower()
    ):
        effects.add(EFFECT_CHARGE)
    return frozenset(effects)


class _EffectWalker:
    """Must/may effect analysis of one function body."""

    def __init__(
        self,
        ctx: FileContext,
        decl: FunctionDecl,
        resolve: ResolveEffects,
    ) -> None:
        self.ctx = ctx
        self.decl = decl
        self.resolve = resolve
        self.sites: Dict[str, Tuple[Hop, ...]] = {}

    def _hop(self, node: ast.AST, note: str) -> Hop:
        line = getattr(node, "lineno", 1)
        return Hop(
            path=self.ctx.rel_path,
            line=line,
            note=note,
            line_text=self.ctx.line_text(line).strip(),
        )

    def _effects_of_call(self, node: ast.Call) -> Tuple[Set[str], Set[str]]:
        """(must, may) effects of one call, recording first sites."""
        must: Set[str] = set(intrinsic_effects(node))
        may: Set[str] = set(must)
        for effect in must:
            self.sites.setdefault(
                effect,
                (self._hop(node, f"{effect} happens here"),),
            )
        callee_summary = self.resolve(node)
        if callee_summary is not None:
            must |= set(callee_summary.must)
            may |= set(callee_summary.may)
            for effect in callee_summary.may:
                inner = callee_summary.sites.get(effect, ())
                self.sites.setdefault(
                    effect,
                    (self._hop(node, f"calls into `{call_name(node)}`"),) + inner,
                )
        return must, may

    def walk(self, stmts: Sequence[ast.stmt]) -> Tuple[Set[str], Set[str], bool]:
        """Returns (must, may, terminated) for a statement block."""
        must: Set[str] = set()
        may: Set[str] = set()
        for stmt in stmts:
            # Calls in the statement *header* run when the statement
            # runs; calls in branch/loop bodies are handled by the
            # structural recursion below.  (Short-circuit operands are
            # approximated as executed; the accounting paths under
            # check do not hide charges in `and` chains.)
            for part in header_exprs(stmt):
                for node in iter_calls(part):
                    call_must, call_may = self._effects_of_call(node)
                    must |= call_must
                    may |= call_may
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return must, may, True
            if isinstance(stmt, ast.If):
                body_must, body_may, body_term = self.walk(stmt.body)
                else_must, else_may, else_term = self.walk(stmt.orelse)
                may |= body_may | else_may
                if body_term and else_term:
                    must |= body_must & else_must
                    return must, may, True
                if body_term:
                    must |= else_must
                elif else_term:
                    must |= body_must
                else:
                    must |= body_must & else_must
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                _, loop_may, _ = self.walk(stmt.body)
                _, else_may, _ = self.walk(stmt.orelse)
                may |= loop_may | else_may
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner_must, inner_may, inner_term = self.walk(stmt.body)
                must |= inner_must
                may |= inner_may
                if inner_term:
                    return must, may, True
            elif isinstance(stmt, ast.Try):
                _, body_may, _ = self.walk(stmt.body)
                may |= body_may
                for handler in stmt.handlers:
                    _, handler_may, _ = self.walk(handler.body)
                    may |= handler_may
                _, else_may, _ = self.walk(stmt.orelse)
                may |= else_may
                final_must, final_may, final_term = self.walk(stmt.finalbody)
                must |= final_must
                may |= final_may
                if final_term:
                    return must, may, True
        return must, may, False


def compute_effect_summary(
    decl: FunctionDecl, ctx: FileContext, resolve: ResolveEffects
) -> EffectSummary:
    walker = _EffectWalker(ctx, decl, resolve)
    node = decl.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    must, may, _ = walker.walk(node.body)
    return EffectSummary(
        must=frozenset(must), may=frozenset(may), sites=dict(walker.sites)
    )


# ======================================================================
# lock acquisition structure
# ======================================================================


@dataclass(frozen=True)
class LockEdge:
    """Lock ``dst`` acquired while ``src`` is held, with trace hops."""

    src: str
    dst: str
    hops: Tuple[Hop, ...]


@dataclass(frozen=True)
class LockSummary:
    """Locks a function acquires, transitively, plus ordering edges."""

    acquires: Dict[str, Tuple[Hop, ...]] = field(default_factory=dict)
    edges: Tuple[LockEdge, ...] = ()


EMPTY_LOCKS = LockSummary()

#: Resolves a call to the merged LockSummary of its project callees.
ResolveLocks = Callable[[ast.Call], Optional[LockSummary]]

_LOCKISH_TOKENS = ("lock", "cond", "cv", "mutex")


def _is_lockish(attr: str) -> bool:
    lowered = attr.lower()
    return any(token in lowered for token in _LOCKISH_TOKENS)


def lock_key_for(
    expr: ast.expr, decl: FunctionDecl
) -> Optional[str]:
    """Canonical class-qualified key for a lock acquisition expression.

    ``with self._lock`` inside ``ClusterBroker`` (module
    ``repro.cluster.broker``) keys as
    ``repro.cluster.broker.ClusterBroker._lock``; two instances of one
    class share a key (the standard class-level abstraction for order
    checking).  Non-lock context managers return ``None``.
    """
    node: ast.expr = expr
    if isinstance(node, ast.Call):
        # ``with lock.acquire_timeout(...)`` style -- key on the receiver.
        if isinstance(node.func, ast.Attribute):
            node = node.func.value
        else:
            return None
    if isinstance(node, ast.Attribute):
        if not _is_lockish(node.attr):
            return None
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                owner = decl.cls or decl.name
                return f"{decl.module}.{owner}.{node.attr}"
            # ``handle.lock`` -- key on the receiver name's alias class
            # when known, else on the bare name (still stable per module).
            from repro.lint.callgraph import ALIAS_TABLE

            aliased = ALIAS_TABLE.get(base.id.lstrip("_"))
            if aliased:
                return f"{decl.module}.{aliased[0]}.{node.attr}"
            return f"{decl.module}.{base.id}.{node.attr}"
        dotted = dotted_name(node)
        if dotted is not None:
            return f"{decl.module}.{dotted}"
        return None
    if isinstance(node, ast.Name) and _is_lockish(node.id):
        return f"{decl.module}.{node.id}"
    return None


class _LockWalker:
    def __init__(
        self,
        ctx: FileContext,
        decl: FunctionDecl,
        resolve: ResolveLocks,
    ) -> None:
        self.ctx = ctx
        self.decl = decl
        self.resolve = resolve
        self.acquires: Dict[str, Tuple[Hop, ...]] = {}
        self.edges: List[LockEdge] = []

    def _hop(self, node: ast.AST, note: str) -> Hop:
        line = getattr(node, "lineno", 1)
        return Hop(
            path=self.ctx.rel_path,
            line=line,
            note=note,
            line_text=self.ctx.line_text(line).strip(),
        )

    def walk(self, stmts: Sequence[ast.stmt], held: FrozenSet[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: Set[str] = set()
                for item in stmt.items:
                    key = lock_key_for(item.context_expr, self.decl)
                    if key is None:
                        continue
                    hop = self._hop(
                        item.context_expr,
                        f"`{self.decl.qualname}` acquires {key}",
                    )
                    self.acquires.setdefault(key, (hop,))
                    for prior in sorted(held):
                        self.edges.append(
                            LockEdge(
                                src=prior,
                                dst=key,
                                hops=(
                                    self._hop(
                                        item.context_expr,
                                        f"acquires {key} while holding {prior}",
                                    ),
                                ),
                            )
                        )
                    acquired.add(key)
                for item in stmt.items:
                    self._scan_calls_in_expr(item.context_expr, held)
                self.walk(stmt.body, held | frozenset(acquired))
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # closures: RL003 territory
            if isinstance(stmt, ast.If):
                self._scan_calls_in_expr(stmt.test, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_calls_in_expr(stmt.iter, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
                continue
            if isinstance(stmt, ast.While):
                self._scan_calls_in_expr(stmt.test, held)
                self.walk(stmt.body, held)
                self.walk(stmt.orelse, held)
                continue
            if isinstance(stmt, ast.Try):
                self.walk(stmt.body, held)
                for handler in stmt.handlers:
                    self.walk(handler.body, held)
                self.walk(stmt.orelse, held)
                self.walk(stmt.finalbody, held)
                continue
            for part in header_exprs(stmt):
                self._scan_calls_in_expr(part, held)

    def _scan_calls_in_expr(self, expr: ast.AST, held: FrozenSet[str]) -> None:
        for node in iter_calls(expr):
            self._apply_callee(node, held)

    def _apply_callee(self, node: ast.Call, held: FrozenSet[str]) -> None:
        summary = self.resolve(node)
        if summary is None:
            return
        callee = call_name(node)
        for key, inner_hops in summary.acquires.items():
            call_hop = self._hop(
                node, f"calls `{callee}(...)` which acquires {key}"
            )
            self.acquires.setdefault(key, (call_hop,) + inner_hops)
            for prior in sorted(held):
                if prior == key:
                    continue  # re-entry through self is RL003's concern
                self.edges.append(
                    LockEdge(
                        src=prior,
                        dst=key,
                        hops=(
                            self._hop(
                                node,
                                f"calls `{callee}(...)` while holding {prior}",
                            ),
                        )
                        + inner_hops,
                    )
                )


def compute_lock_summary(
    decl: FunctionDecl,
    ctx: FileContext,
    resolve: ResolveLocks,
    entry_held: FrozenSet[str] = frozenset(),
) -> LockSummary:
    walker = _LockWalker(ctx, decl, resolve)
    node = decl.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    walker.walk(node.body, entry_held)
    return LockSummary(
        acquires=dict(walker.acquires), edges=tuple(walker.edges)
    )
