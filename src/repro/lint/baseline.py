"""Checked-in baseline of accepted pre-existing findings.

The baseline is a JSON file of finding fingerprints.  ``repro lint
--fail-on-new`` subtracts it from the current findings so CI fails only
on *new* violations, letting the linter land on a tree that still has
known debt.  Matching is multiset-style: two identical offending lines
need two baseline entries, so deleting one of them surfaces the other.

The repo's own baseline (``.lint-baseline.json``) is empty -- every
finding the rules raised on the tree was either fixed or carries an
inline justification -- but the mechanism is exercised by tests and
available for future debt.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding

__all__ = ["Baseline", "BASELINE_FORMAT", "BASELINE_VERSION"]

BASELINE_FORMAT = "repro.lint-baseline"
#: v2: interprocedural findings fingerprint their trace's *source
#: endpoint* in addition to the sink line (summary-hash versioning) so
#: call-graph refactors between the endpoints never spuriously
#: invalidate a suppression.  v1 files load unchanged -- intra-function
#: fingerprints are computed identically in both versions.
BASELINE_VERSION = 2


class Baseline:
    """A multiset of accepted finding fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self._accepted: Counter = Counter(fingerprints)

    def __len__(self) -> int:
        return sum(self._accepted.values())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load ``path``; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("format") != BASELINE_FORMAT:
            raise ValueError(f"{path}: not a {BASELINE_FORMAT} file")
        entries = payload.get("findings", [])
        return cls(entry["fingerprint"] for entry in entries)

    @staticmethod
    def write(path: Path, findings: Iterable[Finding]) -> None:
        """Serialise ``findings`` as the new accepted baseline."""
        entries: List[Dict[str, object]] = [
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule_id,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in sorted(findings, key=lambda f: f.sort_key)
        ]
        payload = {
            "format": BASELINE_FORMAT,
            "version": BASELINE_VERSION,
            "findings": entries,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def partition(self, findings: Iterable[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into ``(new, baselined)``.

        Each baseline fingerprint absorbs at most as many findings as it
        has entries, so a *second* occurrence of a known offending line
        still counts as new.
        """
        budget = Counter(self._accepted)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            if budget[finding.fingerprint] > 0:
                budget[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined
