"""Comment-level annotations understood by the linter.

Four comment forms carry meaning:

``# repro-lint: disable=RL001,RL005``
    Suppress the listed rules on this line (or, when the comment stands
    alone on its own line, on the next line).
``# guarded-by: _lock``
    Trailing comment on a ``self._attr = ...`` assignment in
    ``__init__``/``__post_init__``: declares that every later
    read/write of ``self._attr`` must hold ``self._lock`` (RL003).
``# holds: _lock``
    On (or directly above) a ``def`` line: the method is only ever
    called with ``self._lock`` already held, so RL003 treats the whole
    body as locked.
``# repro-lint: shed``
    On an ``except`` line: the broad handler is an intentional
    load-shedding path and RL005 accepts it as justified.

Comments are pulled out with :mod:`tokenize` so that ``#`` characters
inside string literals are never misread as annotations.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Optional, Set

__all__ = ["CommentMap"]

_DISABLE_RE = re.compile(r"repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_GUARDED_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_HOLDS_RE = re.compile(r"holds:\s*([A-Za-z_][A-Za-z0-9_]*)")
_SHED_RE = re.compile(r"repro-lint:\s*shed\b")

_EMPTY: FrozenSet[str] = frozenset()


class CommentMap:
    """Per-line comment text plus the lint annotations parsed from it."""

    def __init__(self) -> None:
        self._comments: Dict[int, str] = {}
        self._own_line: Set[int] = set()

    @classmethod
    def from_source(cls, source: str) -> "CommentMap":
        cmap = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                line_no = tok.start[0]
                cmap._comments[line_no] = tok.string
                if tok.line[: tok.start[1]].strip() == "":
                    cmap._own_line.add(line_no)
        except tokenize.TokenError:
            # Truncated source; keep whatever comments were seen.
            pass
        return cmap

    def comment_at(self, line: int) -> Optional[str]:
        return self._comments.get(line)

    # ------------------------------------------------------------------
    # pragma parsing
    # ------------------------------------------------------------------
    def disabled_rules(self, line: int) -> FrozenSet[str]:
        """Rule ids suppressed at ``line``.

        A ``disable=`` pragma applies to its own line; a stand-alone
        comment line applies to the line directly below it.
        """
        rules = set(self._parse_disable(line))
        if line - 1 in self._own_line:
            rules.update(self._parse_disable(line - 1))
        return frozenset(rules) if rules else _EMPTY

    def _parse_disable(self, line: int) -> Set[str]:
        text = self._comments.get(line)
        if not text:
            return set()
        match = _DISABLE_RE.search(text)
        if not match:
            return set()
        return {part.strip() for part in match.group(1).split(",") if part.strip()}

    def guarded_by(self, line: int) -> Optional[str]:
        """The lock name declared by a ``# guarded-by:`` comment at ``line``."""
        text = self._comments.get(line)
        if not text:
            return None
        match = _GUARDED_RE.search(text)
        return match.group(1) if match else None

    def holds(self, line: int) -> Optional[str]:
        """The lock named by ``# holds:`` on ``line`` or the line above."""
        for candidate in (line, line - 1):
            text = self._comments.get(candidate)
            if text and (candidate == line or candidate in self._own_line):
                match = _HOLDS_RE.search(text)
                if match:
                    return match.group(1)
        return None

    def is_shed(self, line: int) -> bool:
        """Whether ``line`` carries the ``# repro-lint: shed`` justification."""
        text = self._comments.get(line)
        return bool(text and _SHED_RE.search(text))
