"""Content-hash lint cache (``repro lint --cache``, ``.lint-cache/``).

Two tiers, both keyed by content hashes so stale entries are simply
never looked up (no invalidation protocol, safe to delete at any time):

* **Per-file** entries store the pickled :class:`FileContext` (the
  parsed AST plus comment map -- reparsing is the expensive part of a
  lint run) together with that file's intra-rule findings and
  suppression count, keyed by ``sha256(rel_path, source, salt)`` where
  the salt covers the rule set and engine version.
* **Per-tree** entries store the interprocedural pass's findings,
  suppression count, and the memoized function summaries, keyed by the
  hash of *every* file's content hash.  Function summaries depend on
  callees in other files, so per-file caching of summaries would be
  unsound; the tree hash makes the cached pass exact: any edited file
  changes the key and the whole interprocedural pass re-runs (per-file
  AST entries still hit, so only summaries are recomputed).

Entries are plain pickle files; a cache directory is never required for
correctness and unreadable/corrupt entries count as misses.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.lint.engine import FileContext
from repro.lint.findings import Finding

__all__ = ["LintCache", "CACHE_VERSION"]

#: Bump when finding semantics, summary shapes, or pickled layouts change.
CACHE_VERSION = "1"


@dataclass
class CachedFile:
    """One per-file cache hit."""

    ctx: FileContext
    findings: List[Finding]
    suppressed: int


class LintCache:
    """Pickle-per-key cache under a directory (default ``.lint-cache``)."""

    def __init__(self, directory: Path, salt: str = "") -> None:
        self.directory = Path(directory)
        self.salt = f"{CACHE_VERSION}\x00{salt}"
        self.hits = 0
        self.misses = 0
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._usable = True
        except OSError:
            self._usable = False

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def file_key(self, rel_path: str, source: str) -> str:
        digest = hashlib.sha256()
        digest.update(self.salt.encode("utf-8"))
        digest.update(b"\x00file\x00")
        digest.update(rel_path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def tree_key(self, file_keys: Dict[str, str]) -> str:
        digest = hashlib.sha256()
        digest.update(self.salt.encode("utf-8"))
        digest.update(b"\x00tree\x00")
        for rel_path in sorted(file_keys):
            digest.update(rel_path.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(file_keys[rel_path].encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # raw entry IO
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def _read(self, key: str) -> Optional[Any]:
        if not self._usable:
            return None
        try:
            with self._path(key).open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None

    def _write(self, key: str, payload: Any) -> None:
        if not self._usable:
            return
        tmp = self._path(key).with_suffix(".tmp")
        try:
            with tmp.open("wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(self._path(key))
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # per-file tier
    # ------------------------------------------------------------------
    def load_file(self, key: str) -> Optional[CachedFile]:
        payload = self._read(key)
        if not isinstance(payload, dict) or payload.get("kind") != "file":
            self.misses += 1
            return None
        self.hits += 1
        return CachedFile(
            ctx=payload["ctx"],
            findings=list(payload["findings"]),
            suppressed=int(payload["suppressed"]),
        )

    def store_file(
        self, key: str, ctx: FileContext, findings: List[Finding], suppressed: int
    ) -> None:
        self._write(
            key,
            {
                "kind": "file",
                "ctx": ctx,
                "findings": list(findings),
                "suppressed": suppressed,
            },
        )

    # ------------------------------------------------------------------
    # per-tree (interprocedural) tier
    # ------------------------------------------------------------------
    def load_tree(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._read(key)
        if not isinstance(payload, dict) or payload.get("kind") != "tree":
            return None
        return payload

    def store_tree(
        self,
        key: str,
        findings: List[Finding],
        suppressed: int,
        summaries: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._write(
            key,
            {
                "kind": "tree",
                "findings": list(findings),
                "suppressed": suppressed,
                "summaries": summaries or {},
            },
        )
