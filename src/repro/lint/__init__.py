"""Domain-aware static analysis for the ``repro`` codebase.

Generic linters cannot see the invariants that make this system
correct: the DP boundary (every released count must be Laplace-
perturbed), the determinism contract (seed-threaded RNGs everywhere),
lock discipline in the threaded serving/cluster paths, exact float
comparison on accounting values, and silently swallowed exceptions.
``repro.lint`` encodes them as AST rules (RL001-RL006, see
:mod:`repro.lint.rules`) with per-line suppressions, a checked-in
baseline, and a CI-friendly CLI (``repro lint``).  The interprocedural
layer (:mod:`repro.lint.flow`, ``--interprocedural``) adds the
whole-program rules RL001i and RL007-RL009 over a project call graph
with per-function summaries.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    FileContext,
    LintEngine,
    LintResult,
    Rule,
    RuleRegistry,
    default_registry,
)
from repro.lint.findings import Finding, Hop
from repro.lint.suppressions import CommentMap

# Importing the rules module registers RL001-RL006 on default_registry;
# importing flow registers RL001i/RL007-RL009 on project_registry.
from repro.lint import rules as _rules  # noqa: F401
from repro.lint.flow import (
    ProjectContext,
    ProjectRule,
    project_registry,
    run_project_rules,
)

__all__ = [
    "Baseline",
    "CommentMap",
    "FileContext",
    "Finding",
    "Hop",
    "LintEngine",
    "LintResult",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "RuleRegistry",
    "default_registry",
    "project_registry",
    "run_project_rules",
]
