"""Domain-aware static analysis for the ``repro`` codebase.

Generic linters cannot see the invariants that make this system
correct: the DP boundary (every released count must be Laplace-
perturbed), the determinism contract (seed-threaded RNGs everywhere),
lock discipline in the threaded serving/cluster paths, exact float
comparison on accounting values, and silently swallowed exceptions.
``repro.lint`` encodes them as AST rules (RL001-RL005, see
:mod:`repro.lint.rules`) with per-line suppressions, a checked-in
baseline, and a CI-friendly CLI (``repro lint``).
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    FileContext,
    LintEngine,
    LintResult,
    Rule,
    RuleRegistry,
    default_registry,
)
from repro.lint.findings import Finding
from repro.lint.suppressions import CommentMap

# Importing the rules module registers RL001-RL005 on default_registry.
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "Baseline",
    "CommentMap",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintResult",
    "Rule",
    "RuleRegistry",
    "default_registry",
]
