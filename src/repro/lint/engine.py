"""Rule registry and file-walking engine of ``repro.lint``.

The engine parses each Python file once into a :class:`FileContext`
(AST + comment map + module name), hands the context to every
registered :class:`Rule` whose :meth:`~Rule.applies_to` accepts it, and
filters the resulting findings through per-line
``# repro-lint: disable=`` pragmas.

Module names are computed from the path relative to the scan root with
a leading ``src`` segment stripped, so ``src/repro/core/broker.py``
and a test fixture tree ``<tmp>/repro/core/broker.py`` both resolve to
``repro.core.broker`` and are seen by the same rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.lint.findings import Finding
from repro.lint.suppressions import CommentMap

__all__ = [
    "FileContext",
    "Rule",
    "RuleRegistry",
    "default_registry",
    "LintEngine",
    "LintResult",
]

_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".pytest_cache", "build", "dist"}


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    rel_path: str
    module: str
    source: str
    tree: ast.Module
    comments: CommentMap
    lines: List[str]

    @classmethod
    def from_source(cls, source: str, rel_path: str, module: str) -> "FileContext":
        tree = ast.parse(source, filename=rel_path)
        return cls(
            rel_path=rel_path,
            module=module,
            source=source,
            tree=tree,
            comments=CommentMap.from_source(source),
            lines=source.splitlines(),
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(self, rule_id: str, line: int, col: int, message: str) -> Finding:
        """Build a :class:`Finding` with the fingerprint line text filled in."""
        return Finding(
            rule_id=rule_id,
            path=self.rel_path,
            line=line,
            col=col,
            message=message,
            line_text=self.line_text(line),
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`, :attr:`name` and :attr:`rationale`,
    and implement :meth:`check`.  :meth:`applies_to` lets a rule skip
    files outside its scope before any AST walking happens.
    """

    rule_id: str = ""
    name: str = ""
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class RuleRegistry:
    """Maps rule ids to rule factories; rules self-register at import."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], Rule]] = {}

    def register(self, factory: Callable[[], Rule]) -> Callable[[], Rule]:
        probe = factory()
        if not probe.rule_id:
            raise ValueError(f"rule {factory!r} has no rule_id")
        if probe.rule_id in self._factories:
            raise ValueError(f"duplicate rule id {probe.rule_id}")
        self._factories[probe.rule_id] = factory
        return factory

    def rule_ids(self) -> List[str]:
        return sorted(self._factories)

    def create(self, only: Optional[Sequence[str]] = None) -> List[Rule]:
        wanted = self.rule_ids() if only is None else list(only)
        rules: List[Rule] = []
        for rule_id in wanted:
            if rule_id not in self._factories:
                raise KeyError(f"unknown rule id {rule_id!r}")
            rules.append(self._factories[rule_id]())
        return rules


#: The process-wide registry that :mod:`repro.lint.rules` populates.
default_registry = RuleRegistry()


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def module_name(rel_path: Path) -> str:
    """Dotted module name for ``rel_path`` (posix, relative to the root)."""
    parts = list(rel_path.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class LintEngine:
    """Runs a set of rules over files or whole source trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            import repro.lint.rules  # noqa: F401  -- populates the registry

            rules = default_registry.create()
        self.rules: List[Rule] = list(rules)

    # ------------------------------------------------------------------
    # single-file entry points
    # ------------------------------------------------------------------
    def lint_source(
        self, source: str, rel_path: str, result: Optional[LintResult] = None
    ) -> LintResult:
        """Lint one in-memory source blob addressed as ``rel_path``."""
        result = result if result is not None else LintResult()
        try:
            ctx = FileContext.from_source(source, rel_path, module_name(Path(rel_path)))
        except SyntaxError as exc:
            result.parse_errors.append(f"{rel_path}: {exc.msg} (line {exc.lineno})")
            return result
        result.files_scanned += 1
        for rule in self.rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if finding.rule_id in ctx.comments.disabled_rules(finding.line):
                    result.suppressed += 1
                else:
                    result.findings.append(finding)
        return result

    def lint_file(self, path: Path, root: Path, result: Optional[LintResult] = None) -> LintResult:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, rel, result=result)

    # ------------------------------------------------------------------
    # tree walking
    # ------------------------------------------------------------------
    def lint_paths(self, paths: Sequence[Path], root: Path) -> LintResult:
        """Lint every ``.py`` file under each of ``paths`` (files or dirs)."""
        result = LintResult()
        for path in paths:
            for file_path in sorted(_iter_python_files(path)):
                self.lint_file(file_path, root, result=result)
        result.findings.sort(key=lambda f: f.sort_key)
        return result


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in path.rglob("*.py"):
        if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
            continue
        yield candidate
