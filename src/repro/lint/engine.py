"""Rule registry and file-walking engine of ``repro.lint``.

The engine parses each Python file once into a :class:`FileContext`
(AST + comment map + module name), hands the context to every
registered :class:`Rule` whose :meth:`~Rule.applies_to` accepts it, and
filters the resulting findings through per-line
``# repro-lint: disable=`` pragmas.

Module names are computed from the path relative to the scan root with
a leading ``src`` segment stripped, so ``src/repro/core/broker.py``
and a test fixture tree ``<tmp>/repro/core/broker.py`` both resolve to
``repro.core.broker`` and are seen by the same rules.
"""

from __future__ import annotations

import ast
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.lint.findings import Finding
from repro.lint.suppressions import CommentMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (flow imports us)
    from repro.lint.cache import LintCache

__all__ = [
    "FileContext",
    "Rule",
    "RuleRegistry",
    "default_registry",
    "LintEngine",
    "LintResult",
]

_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".pytest_cache", "build", "dist"}

# ast.parse is not thread-safe on CPython 3.11: the AST constructor's
# recursion-depth accounting lives in per-interpreter module state, so
# two concurrent parses intermittently die with "SystemError: AST
# constructor recursion depth mismatch".  Reads, tokenization and rule
# checks still run in parallel; only the parse itself is serialized.
_AST_PARSE_LOCK = threading.Lock()


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    rel_path: str
    module: str
    source: str
    tree: ast.Module
    comments: CommentMap
    lines: List[str]

    @classmethod
    def from_source(cls, source: str, rel_path: str, module: str) -> "FileContext":
        with _AST_PARSE_LOCK:
            tree = ast.parse(source, filename=rel_path)
        return cls(
            rel_path=rel_path,
            module=module,
            source=source,
            tree=tree,
            comments=CommentMap.from_source(source),
            lines=source.splitlines(),
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(self, rule_id: str, line: int, col: int, message: str) -> Finding:
        """Build a :class:`Finding` with the fingerprint line text filled in."""
        return Finding(
            rule_id=rule_id,
            path=self.rel_path,
            line=line,
            col=col,
            message=message,
            line_text=self.line_text(line),
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`, :attr:`name` and :attr:`rationale`,
    and implement :meth:`check`.  :meth:`applies_to` lets a rule skip
    files outside its scope before any AST walking happens.
    """

    rule_id: str = ""
    name: str = ""
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class RuleRegistry:
    """Maps rule ids to rule factories; rules self-register at import."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], Rule]] = {}

    def register(self, factory: Callable[[], Rule]) -> Callable[[], Rule]:
        probe = factory()
        if not probe.rule_id:
            raise ValueError(f"rule {factory!r} has no rule_id")
        if probe.rule_id in self._factories:
            raise ValueError(f"duplicate rule id {probe.rule_id}")
        self._factories[probe.rule_id] = factory
        return factory

    def rule_ids(self) -> List[str]:
        return sorted(self._factories)

    def create(self, only: Optional[Sequence[str]] = None) -> List[Rule]:
        wanted = self.rule_ids() if only is None else list(only)
        rules: List[Rule] = []
        for rule_id in wanted:
            if rule_id not in self._factories:
                raise KeyError(f"unknown rule id {rule_id!r}")
            rules.append(self._factories[rule_id]())
        return rules


#: The process-wide registry that :mod:`repro.lint.rules` populates.
default_registry = RuleRegistry()


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def module_name(rel_path: Path) -> str:
    """Dotted module name for ``rel_path`` (posix, relative to the root)."""
    parts = list(rel_path.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class LintEngine:
    """Runs a set of rules over files or whole source trees.

    With ``interprocedural=True``, :meth:`lint_paths` additionally runs
    the whole-program rules of :mod:`repro.lint.flow` over the parsed
    file set (single files via :meth:`lint_source` stay intra-only --
    there is no project to analyse).  ``project_rules`` optionally
    restricts which project rule ids run.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        *,
        interprocedural: bool = False,
        project_rules: Optional[Sequence[str]] = None,
    ) -> None:
        if rules is None:
            import repro.lint.rules  # noqa: F401  -- populates the registry

            rules = default_registry.create()
        self.rules: List[Rule] = list(rules)
        self.interprocedural = interprocedural
        self.project_rules = list(project_rules) if project_rules is not None else None

    # ------------------------------------------------------------------
    # single-file entry points
    # ------------------------------------------------------------------
    def _check_ctx(self, ctx: FileContext) -> Tuple[List[Finding], int]:
        """Intra-rule findings and suppression count for one context."""
        findings: List[Finding] = []
        suppressed = 0
        for rule in self.rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if finding.rule_id in ctx.comments.disabled_rules(finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
        return findings, suppressed

    def lint_source(
        self, source: str, rel_path: str, result: Optional[LintResult] = None
    ) -> LintResult:
        """Lint one in-memory source blob addressed as ``rel_path``."""
        result = result if result is not None else LintResult()
        try:
            ctx = FileContext.from_source(source, rel_path, module_name(Path(rel_path)))
        except SyntaxError as exc:
            result.parse_errors.append(f"{rel_path}: {exc.msg} (line {exc.lineno})")
            return result
        result.files_scanned += 1
        findings, suppressed = self._check_ctx(ctx)
        result.findings.extend(findings)
        result.suppressed += suppressed
        return result

    def lint_file(self, path: Path, root: Path, result: Optional[LintResult] = None) -> LintResult:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, rel, result=result)

    # ------------------------------------------------------------------
    # tree walking
    # ------------------------------------------------------------------
    def lint_paths(
        self,
        paths: Sequence[Path],
        root: Path,
        *,
        jobs: Optional[int] = None,
        cache: Optional["LintCache"] = None,
    ) -> LintResult:
        """Lint every ``.py`` file under each of ``paths`` (files or dirs).

        Files are read and parsed in parallel (``jobs`` threads); the
        optional content-hash ``cache`` short-circuits both the per-file
        parse+intra-rule work and, when no file changed at all, the
        whole interprocedural pass.
        """
        result = LintResult()
        file_list: List[Path] = []
        for path in paths:
            file_list.extend(sorted(_iter_python_files(path)))

        entries = self._process_files(file_list, root, jobs=jobs, cache=cache)

        files: Dict[str, FileContext] = {}
        file_keys: Dict[str, str] = {}
        for entry in entries:
            if entry.error is not None:
                result.parse_errors.append(entry.error)
                continue
            assert entry.ctx is not None
            result.files_scanned += 1
            result.findings.extend(entry.findings)
            result.suppressed += entry.suppressed
            files[entry.ctx.rel_path] = entry.ctx
            if entry.key is not None:
                file_keys[entry.ctx.rel_path] = entry.key

        if self.interprocedural and files:
            self._run_project_pass(result, files, file_keys, cache)

        result.findings.sort(key=lambda f: f.sort_key)
        return result

    def _process_files(
        self,
        file_list: Sequence[Path],
        root: Path,
        *,
        jobs: Optional[int],
        cache: Optional["LintCache"],
    ) -> List["_FileEntry"]:
        worker_count = jobs if jobs is not None else min(8, len(file_list) or 1)
        if worker_count <= 1 or len(file_list) <= 1:
            return [self._process_one(path, root, cache) for path in file_list]
        with ThreadPoolExecutor(max_workers=worker_count) as pool:
            return list(
                pool.map(lambda path: self._process_one(path, root, cache), file_list)
            )

    def _process_one(
        self, path: Path, root: Path, cache: Optional["LintCache"]
    ) -> "_FileEntry":
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            return _FileEntry(error=f"{rel}: {exc}")
        key: Optional[str] = None
        if cache is not None:
            key = cache.file_key(rel, source)
            hit = cache.load_file(key)
            if hit is not None:
                return _FileEntry(
                    ctx=hit.ctx,
                    findings=hit.findings,
                    suppressed=hit.suppressed,
                    key=key,
                )
        try:
            ctx = FileContext.from_source(source, rel, module_name(Path(rel)))
        except SyntaxError as exc:
            return _FileEntry(error=f"{rel}: {exc.msg} (line {exc.lineno})")
        findings, suppressed = self._check_ctx(ctx)
        if cache is not None and key is not None:
            cache.store_file(key, ctx, findings, suppressed)
        return _FileEntry(ctx=ctx, findings=findings, suppressed=suppressed, key=key)

    def _run_project_pass(
        self,
        result: LintResult,
        files: Dict[str, FileContext],
        file_keys: Dict[str, str],
        cache: Optional["LintCache"],
    ) -> None:
        from repro.lint.flow import run_project_rules

        tree_key: Optional[str] = None
        if cache is not None and len(file_keys) == len(files):
            tree_key = cache.tree_key(file_keys)
            payload = cache.load_tree(tree_key)
            if payload is not None:
                result.findings.extend(payload["findings"])
                result.suppressed += int(payload["suppressed"])
                return
        findings, suppressed, _project = run_project_rules(
            files, only=self.project_rules
        )
        result.findings.extend(findings)
        result.suppressed += suppressed
        if cache is not None and tree_key is not None:
            cache.store_tree(tree_key, findings, suppressed)


@dataclass
class _FileEntry:
    """Per-file outcome of the (possibly parallel) parse+intra pass."""

    ctx: Optional[FileContext] = None
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    key: Optional[str] = None
    error: Optional[str] = None


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in path.rglob("*.py"):
        if any(part in _SKIP_DIRS or part.startswith(".") for part in candidate.parts):
            continue
        yield candidate
