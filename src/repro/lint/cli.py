"""Command-line front end for ``repro lint``.

Also runnable standalone as ``python -m repro.lint``.  Exit codes are
CI-oriented: 0 clean, 1 findings (or, with ``--fail-on-new``, findings
not absorbed by the baseline), 2 argument errors (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine, LintResult

__all__ = ["add_lint_arguments", "run_lint", "main"]

DEFAULT_BASELINE = ".lint-baseline.json"
DEFAULT_CACHE_DIR = ".lint-cache"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` options to ``parser`` (shared with the

    top-level ``repro`` CLI subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/ under --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root; findings and baseline paths are relative to it",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file relative to --root (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--fail-on-new",
        action="store_true",
        help="exit non-zero only for findings absent from the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file as well as stdout",
    )
    parser.add_argument(
        "--interprocedural",
        action="store_true",
        help="run the whole-program rules (RL001i, RL007-RL009) over the "
        "project call graph in addition to the per-file rules",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parse files with this many threads (default: min(8, files))",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="cache parsed ASTs and findings keyed by content hash",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"cache directory relative to --root (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--bench-json",
        default=None,
        help="record wall-clock timing of the run to this JSON file",
    )


def _split_rules(only: List[str]) -> Optional[tuple]:
    """Split ``--rules`` ids into (intra, project) lists; None if any id
    is unknown to both registries."""
    import repro.lint.rules  # noqa: F401  -- populate the registry
    from repro.lint.engine import default_registry
    from repro.lint.flow import project_registry

    intra_ids = set(default_registry.rule_ids())
    project_ids = set(project_registry.rule_ids())
    intra = [rid for rid in only if rid in intra_ids]
    project = [rid for rid in only if rid in project_ids]
    unknown = [rid for rid in only if rid not in intra_ids | project_ids]
    if unknown:
        print(
            f"repro lint: unknown rule id(s): {', '.join(unknown)}",
            file=sys.stderr,
        )
        return None
    return intra, project


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed ``args``; returns exit code."""
    root = Path(args.root).resolve()
    raw_paths = args.paths or ["src"]
    paths = [Path(p) if Path(p).is_absolute() else root / p for p in raw_paths]
    for path in paths:
        if not path.exists():
            print(f"repro lint: path does not exist: {path}", file=sys.stderr)
            return 2

    only: Optional[List[str]] = None
    if args.rules:
        only = [rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()]

    import repro.lint.rules  # noqa: F401  -- populate the registry
    from repro.lint.engine import default_registry

    intra_only = only
    project_only: Optional[List[str]] = None
    if only is not None:
        split = _split_rules(only)
        if split is None:
            return 2
        intra_only, project_only = split

    engine = LintEngine(
        rules=default_registry.create(only=intra_only),
        interprocedural=bool(getattr(args, "interprocedural", False)),
        project_rules=project_only,
    )

    cache = None
    if getattr(args, "cache", False):
        from repro.lint.cache import LintCache

        cache_dir = Path(args.cache_dir)
        if not cache_dir.is_absolute():
            cache_dir = root / cache_dir
        salt = "|".join(sorted(rule.rule_id for rule in engine.rules))
        if engine.interprocedural:
            salt += "|interprocedural"
        cache = LintCache(cache_dir, salt=salt)

    started = time.perf_counter()
    result = engine.lint_paths(
        paths, root, jobs=getattr(args, "jobs", None), cache=cache
    )
    elapsed = time.perf_counter() - started

    if getattr(args, "bench_json", None):
        bench_path = Path(args.bench_json)
        if not bench_path.is_absolute():
            bench_path = root / bench_path
        bench_path.write_text(
            json.dumps(
                {
                    "bench": "lint",
                    "seconds": round(elapsed, 4),
                    "files_scanned": result.files_scanned,
                    "findings": len(result.findings),
                    "interprocedural": engine.interprocedural,
                    "cache": {
                        "enabled": cache is not None,
                        "hits": getattr(cache, "hits", 0),
                        "misses": getattr(cache, "misses", 0),
                    },
                },
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path

    if args.update_baseline:
        Baseline.write(baseline_path, result.findings)
        print(
            f"repro lint: wrote {len(result.findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    baseline = Baseline.load(baseline_path)
    new, baselined = baseline.partition(result.findings)

    report = _render(args.format, result, new, baselined)
    print(report)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")

    if result.parse_errors:
        return 2
    failing = new if args.fail_on_new else result.findings
    return 1 if failing else 0


def _render(
    fmt: str, result: LintResult, new: List, baselined: List
) -> str:
    if fmt == "sarif":
        from repro.lint.sarif import render_sarif

        return render_sarif(
            result.findings, (finding.fingerprint for finding in new)
        )
    if fmt == "json":
        payload = {
            "format": "repro.lint-report",
            "version": 1,
            "files_scanned": result.files_scanned,
            "findings": [finding.to_dict() for finding in result.findings],
            "new": [finding.fingerprint for finding in new],
            "baselined": len(baselined),
            "suppressed": result.suppressed,
            "by_rule": result.by_rule(),
            "parse_errors": result.parse_errors,
        }
        return json.dumps(payload, indent=2)

    lines: List[str] = []
    for finding in result.findings:
        marker = " [baselined]" if finding in baselined else ""
        lines.append(finding.render_text() + marker)
    for error in result.parse_errors:
        lines.append(f"parse error: {error}")
    summary = (
        f"{len(result.findings)} finding(s) "
        f"({len(new)} new, {len(baselined)} baselined), "
        f"{result.suppressed} suppressed, "
        f"{result.files_scanned} file(s) scanned"
    )
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Domain-aware static analysis for the repro codebase.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
