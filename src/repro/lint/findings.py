"""Finding objects produced by lint rules.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately hashes the *text* of the
offending line rather than its line number, so a checked-in baseline
(:mod:`repro.lint.baseline`) survives unrelated edits that shift code up
or down the file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule_id:
        Registry id of the rule that fired (e.g. ``"RL001"``).
    path:
        Posix-style path of the offending file, relative to the lint
        root.
    line, col:
        1-based line and 0-based column of the violation.
    message:
        Human-readable description of what the rule saw.
    line_text:
        The stripped source line at ``line`` -- the stable ingredient of
        the fingerprint.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity used for baseline matching.

        Hashes ``(rule_id, path, stripped line text)`` -- *not* the line
        number -- so findings keep their identity when unrelated lines
        are inserted above them.  Duplicate fingerprints (the same
        offending text twice in one file) are handled multiset-style by
        the baseline.
        """
        payload = "::".join((self.rule_id, self.path, self.line_text.strip()))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render_text(self) -> str:
        """One-line ``path:line:col: RULE message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable payload (used by ``--format json``)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
