"""Finding objects produced by lint rules.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately hashes the *text* of the
offending line rather than its line number, so a checked-in baseline
(:mod:`repro.lint.baseline`) survives unrelated edits that shift code up
or down the file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = ["Finding", "Hop"]


@dataclass(frozen=True)
class Hop:
    """One step of an interprocedural trace (sink-to-source order).

    ``line_text`` feeds the fingerprint the same way a finding's own
    line does: hops keep their identity when unrelated edits shift the
    file, and only the *endpoints* of a trace are fingerprinted (see
    :attr:`Finding.fingerprint`), so re-routing an intermediate call
    never invalidates a baselined or suppressed finding.
    """

    path: str
    line: int
    note: str
    line_text: str = ""

    def render_text(self) -> str:
        return f"{self.path}:{self.line}: {self.note}"

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule_id:
        Registry id of the rule that fired (e.g. ``"RL001"``).
    path:
        Posix-style path of the offending file, relative to the lint
        root.
    line, col:
        1-based line and 0-based column of the violation.
    message:
        Human-readable description of what the rule saw.
    line_text:
        The stripped source line at ``line`` -- the stable ingredient of
        the fingerprint.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""
    #: Interprocedural call chain, sink first, taint/effect source last.
    #: Empty for intra-function findings.
    trace: Tuple[Hop, ...] = field(default=())

    @property
    def fingerprint(self) -> str:
        """Stable identity used for baseline matching.

        Hashes ``(rule_id, path, stripped line text)`` -- *not* the line
        number -- so findings keep their identity when unrelated lines
        are inserted above them.  Duplicate fingerprints (the same
        offending text twice in one file) are handled multiset-style by
        the baseline.

        Interprocedural findings additionally hash the trace's **source
        endpoint** (final hop) only -- a summary-hash of the trace, not
        the full call chain -- so refactors that add or re-route
        intermediate calls never spuriously invalidate a baselined
        suppression while a genuinely different source still reads as a
        new finding.
        """
        parts = [self.rule_id, self.path, self.line_text.strip()]
        if self.trace:
            source = self.trace[-1]
            parts.extend((source.path, source.line_text.strip()))
        payload = "::".join(parts)
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render_text(self) -> str:
        """``path:line:col: RULE message`` plus indented trace hops."""
        head = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if not self.trace:
            return head
        hops = "\n".join(f"    via {hop.render_text()}" for hop in self.trace)
        return f"{head}\n{hops}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable payload (used by ``--format json``)."""
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.trace:
            payload["trace"] = [hop.to_dict() for hop in self.trace]
        return payload
