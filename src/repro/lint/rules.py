"""The domain rules of ``repro.lint``.

Each rule encodes one invariant of the trading system that generic
linters cannot see:

* **RL001 dp-boundary** -- nothing derived from an exact or estimated
  count may leave the broker answer paths without passing through a
  ``repro.privacy`` mechanism (Laplace perturbation); the ε′ = 0
  ``replay`` path is post-processing and therefore exempt by
  construction (it re-releases already-noised values).
* **RL002 rng-discipline** -- the determinism contract (bit-identical
  scalar/batch/cluster answers) dies the moment any global or
  constant-seeded RNG sneaks in.  Inside ``repro.workers`` the rule is
  strict: *no* RNG construction at all, seeded or not -- worker
  processes only re-run pure estimation, and the Laplace stream must
  stay in the coordinator for threads/processes bit-identity.
* **RL003 lock-discipline** -- ``# guarded-by: _lock`` attributes may
  only be touched under ``with self._lock`` or in ``# holds: _lock``
  methods.
* **RL004 accounting-floats** -- money and ε arithmetic must never be
  compared with ``==``/``!=``; use ``math.isclose`` or integer
  micro-units.
* **RL005 broad-except** -- broad handlers must re-raise, count a
  metric through :class:`~repro.serving.telemetry.MetricsRegistry`, or
  carry a ``# repro-lint: shed`` justification.
* **RL006 journal-before-release** -- broker answer/replay paths must
  append the trade to the write-ahead journal *before* any return that
  releases an answer (crash-safety: a crash after the journal append can
  only make recovery over-count ε, never under-count it).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.lint.engine import FileContext, Rule, default_registry
from repro.lint.findings import Finding

__all__ = [
    "DpBoundaryRule",
    "RngDisciplineRule",
    "LockDisciplineRule",
    "AccountingFloatsRule",
    "BroadExceptRule",
    "JournalBeforeReleaseRule",
]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(node: ast.Call) -> str:
    """Last segment of the callee (``estimate`` for ``self.estimator.estimate``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


# ======================================================================
# RL001 dp-boundary
# ======================================================================

# Taint lattice: CLEAN < NOISED < TAINTED for branch merging.  In
# expression combination, NOISED dominates TAINTED (``estimate + noise``
# is a perturbed value), while at merge points TAINTED dominates (a
# value that is raw on *any* path is a leak).
_CLEAN, _NOISED, _TAINTED = 0, 1, 2

_TAINT_SOURCES = {"estimate", "estimate_many", "true_count", "exact_count"}
_TAINT_ATTRS = {"sample_estimate"}
_SANITIZERS = {"sample_laplace", "sample_laplace_many", "sample_noise", "sample_geometric"}
_PROPAGATORS = {
    "float", "int", "abs", "min", "max", "sum", "round",
    "asarray", "array", "clip", "where", "maximum", "minimum",
    "copy", "astype", "reshape",
}
_ANSWER_SINK_FIELDS = ("value", "raw_value")


class _TaintState:
    __slots__ = ("env",)

    def __init__(self, env: Optional[Dict[str, int]] = None) -> None:
        self.env: Dict[str, int] = dict(env or {})


def _combine_expr(states: Iterable[int]) -> int:
    """Dataflow join inside one expression: noise cleanses taint."""
    result = _CLEAN
    for state in states:
        if state == _NOISED:
            return _NOISED
        if state == _TAINTED:
            result = _TAINTED
    return result


def _merge_branch(a: int, b: int) -> int:
    """Join across control-flow branches: taint on any path survives."""
    return max(a, b)


class DpBoundaryRule(Rule):
    """RL001: count-derived values must be noised before release."""

    rule_id = "RL001"
    name = "dp-boundary"
    rationale = (
        "An exact or sampled count escaping the broker without Laplace "
        "perturbation voids the paper's (eps, eps') guarantee (Def 2.2 / "
        "Theorem 3.5)."
    )

    _MODULES = (
        "repro.core.broker",
        "repro.cluster.broker",
        "repro.streaming.broker",
        "repro.resilience.brownout",
        "repro.resilience.hedging",
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module in self._MODULES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and node.name.startswith(
                ("answer", "replay")
            ):
                yield from self._check_function(ctx, node)

    # -- per-function taint walk --------------------------------------
    def _check_function(self, ctx: FileContext, func: ast.FunctionDef) -> Iterator[Finding]:
        state = _TaintState()
        yield from self._walk_block(ctx, func.body, state, func.name)

    def _walk_block(
        self,
        ctx: FileContext,
        stmts: List[ast.stmt],
        state: _TaintState,
        func_name: str,
    ) -> Iterator[Finding]:
        for stmt in stmts:
            yield from self._check_sinks(ctx, stmt, state, func_name)
            if isinstance(stmt, ast.Assign):
                value_state = self._classify(stmt.value, state)
                for target in stmt.targets:
                    self._bind(target, value_state, state)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._bind(stmt.target, self._classify(stmt.value, state), state)
            elif isinstance(stmt, ast.AugAssign):
                merged = _combine_expr(
                    (self._classify(stmt.target, state), self._classify(stmt.value, state))
                )
                self._bind(stmt.target, merged, state)
            elif isinstance(stmt, ast.If):
                body_state = _TaintState(state.env)
                yield from self._walk_block(ctx, stmt.body, body_state, func_name)
                else_state = _TaintState(state.env)
                yield from self._walk_block(ctx, stmt.orelse, else_state, func_name)
                for var in set(body_state.env) | set(else_state.env):
                    state.env[var] = _merge_branch(
                        body_state.env.get(var, _CLEAN), else_state.env.get(var, _CLEAN)
                    )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind(stmt.target, self._classify(stmt.iter, state), state)
                yield from self._walk_block(ctx, stmt.body, state, func_name)
                yield from self._walk_block(ctx, stmt.orelse, state, func_name)
            elif isinstance(stmt, ast.While):
                yield from self._walk_block(ctx, stmt.body, state, func_name)
                yield from self._walk_block(ctx, stmt.orelse, state, func_name)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from self._walk_block(ctx, stmt.body, state, func_name)
            elif isinstance(stmt, ast.Try):
                yield from self._walk_block(ctx, stmt.body, state, func_name)
                for handler in stmt.handlers:
                    yield from self._walk_block(ctx, handler.body, state, func_name)
                yield from self._walk_block(ctx, stmt.orelse, state, func_name)
                yield from self._walk_block(ctx, stmt.finalbody, state, func_name)
            # Nested function/class definitions are deliberately skipped:
            # the answer paths under check do not release through closures.

    def _check_sinks(
        self,
        ctx: FileContext,
        stmt: ast.stmt,
        state: _TaintState,
        func_name: str,
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            if self._classify(stmt.value, state) == _TAINTED:
                yield ctx.finding(
                    self.rule_id,
                    stmt.lineno,
                    stmt.col_offset,
                    f"{func_name} returns a count-derived value that never "
                    "passed through a repro.privacy mechanism "
                    "(sample_laplace/sample_laplace_many)",
                )
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr, ast.Return)):
            value = getattr(stmt, "value", None)
            if value is not None:
                yield from self._check_answer_calls(ctx, value, state, func_name)

    def _check_answer_calls(
        self,
        ctx: FileContext,
        expr: ast.expr,
        state: _TaintState,
        func_name: str,
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            callee = _call_name(node)
            if not callee.endswith("Answer"):
                continue
            for pos, arg in enumerate(node.args[: len(_ANSWER_SINK_FIELDS)]):
                if self._classify(arg, state) == _TAINTED:
                    yield self._sink_finding(ctx, arg, callee, _ANSWER_SINK_FIELDS[pos], func_name)
            for kw in node.keywords:
                if kw.arg in _ANSWER_SINK_FIELDS and self._classify(kw.value, state) == _TAINTED:
                    yield self._sink_finding(ctx, kw.value, callee, kw.arg, func_name)

    def _sink_finding(
        self, ctx: FileContext, node: ast.expr, callee: str, field_name: str, func_name: str
    ) -> Finding:
        return ctx.finding(
            self.rule_id,
            node.lineno,
            node.col_offset,
            f"{func_name} builds {callee}({field_name}=...) from an unperturbed "
            "count estimate; route it through sample_laplace/sample_laplace_many "
            "or the eps'=0 replay path",
        )

    # -- expression classification ------------------------------------
    def _bind(self, target: ast.expr, value_state: int, state: _TaintState) -> None:
        if isinstance(target, ast.Name):
            state.env[target.id] = value_state
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, value_state, state)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value_state, state)
        # Attribute/Subscript targets are not tracked.

    def _classify(self, node: ast.expr, state: _TaintState) -> int:
        if isinstance(node, ast.Name):
            return state.env.get(node.id, _CLEAN)
        if isinstance(node, ast.Constant):
            return _CLEAN
        if isinstance(node, ast.Attribute):
            if node.attr in _TAINT_ATTRS:
                return _TAINTED
            return self._classify(node.value, state)
        if isinstance(node, ast.Call):
            callee = _call_name(node)
            arg_states = [self._classify(arg, state) for arg in node.args]
            arg_states.extend(
                self._classify(kw.value, state) for kw in node.keywords if kw.value is not None
            )
            if callee in _SANITIZERS:
                return _NOISED
            if callee in _TAINT_SOURCES:
                return _TAINTED
            if callee in _PROPAGATORS:
                return _combine_expr(arg_states)
            return _CLEAN
        if isinstance(node, ast.BinOp):
            return _combine_expr(
                (self._classify(node.left, state), self._classify(node.right, state))
            )
        if isinstance(node, ast.UnaryOp):
            return self._classify(node.operand, state)
        if isinstance(node, ast.BoolOp):
            return _combine_expr(self._classify(value, state) for value in node.values)
        if isinstance(node, ast.IfExp):
            return _merge_branch(
                self._classify(node.body, state), self._classify(node.orelse, state)
            )
        if isinstance(node, ast.Subscript):
            return self._classify(node.value, state)
        if isinstance(node, ast.Starred):
            return self._classify(node.value, state)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return max(
                (self._classify(element, state) for element in node.elts), default=_CLEAN
            )
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            inner = _TaintState(state.env)
            for comp in node.generators:
                self._bind(comp.target, self._classify(comp.iter, state), inner)
            return self._classify(node.elt, inner)
        if isinstance(node, ast.NamedExpr):
            value_state = self._classify(node.value, state)
            self._bind(node.target, value_state, state)
            return value_state
        return _CLEAN


# ======================================================================
# RL002 rng-discipline
# ======================================================================

_RNG_ALLOWED_ATTRS = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox",
}


class RngDisciplineRule(Rule):
    """RL002: no global or constant-seeded randomness outside tests."""

    rule_id = "RL002"
    name = "rng-discipline"
    rationale = (
        "Bit-identical scalar/batch/cluster answers (the determinism "
        "contract of PRs 1-3) require every random draw to come from an "
        "explicitly seed-threaded np.random.Generator."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        top = ctx.module.split(".", 1)[0]
        if top in ("tests", "conftest"):
            return False
        return not ctx.module.startswith("repro.testing")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        rng_free = ctx.module.startswith("repro.workers")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(
                            self.rule_id, node.lineno, node.col_offset,
                            "stdlib `random` is a process-global RNG; use a "
                            "seed-threaded np.random.Generator instead",
                        )
                    elif rng_free and alias.name.startswith("numpy.random"):
                        yield ctx.finding(
                            self.rule_id, node.lineno, node.col_offset,
                            "repro.workers must stay RNG-free: Laplace "
                            "draws happen only in the coordinator so the "
                            "noise stream is backend-independent",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield ctx.finding(
                        self.rule_id, node.lineno, node.col_offset,
                        "stdlib `random` is a process-global RNG; use a "
                        "seed-threaded np.random.Generator instead",
                    )
                elif rng_free and node.module and node.module.startswith(
                    "numpy.random"
                ):
                    yield ctx.finding(
                        self.rule_id, node.lineno, node.col_offset,
                        "repro.workers must stay RNG-free: Laplace draws "
                        "happen only in the coordinator so the noise "
                        "stream is backend-independent",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
                if rng_free:
                    yield from self._check_worker_purity(ctx, node)

    def _check_worker_purity(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        """Inside ``repro.workers`` *any* RNG construction is a finding.

        The worker runtime only re-runs deterministic rank/estimate
        arithmetic; if it ever consumed randomness the threads and
        processes backends could not stay bit-identical under one seed.
        Even a correctly seed-threaded Generator is banned here.
        """
        dotted = _dotted_name(node.func)
        constructs_rng = _call_name(node) == "default_rng" or (
            dotted is not None
            and len(dotted.split(".")) >= 2
            and dotted.split(".")[-2] == "random"
            and dotted.split(".")[0] in ("np", "numpy")
        )
        if constructs_rng:
            yield ctx.finding(
                self.rule_id, node.lineno, node.col_offset,
                "repro.workers must stay RNG-free: estimation offloaded "
                "to workers is pure; Laplace draws happen only in the "
                "coordinator so accounting is backend-independent",
            )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) >= 2 and parts[-2] == "random" and parts[0] in ("np", "numpy"):
                if parts[-1] == "seed":
                    yield ctx.finding(
                        self.rule_id, node.lineno, node.col_offset,
                        "np.random.seed mutates the global RNG and breaks "
                        "answer determinism; construct np.random.default_rng(seed)",
                    )
                elif parts[-1] not in _RNG_ALLOWED_ATTRS:
                    yield ctx.finding(
                        self.rule_id, node.lineno, node.col_offset,
                        f"np.random.{parts[-1]} draws from the global RNG; "
                        "draw from a seed-threaded Generator instead",
                    )
        if _call_name(node) == "default_rng" and not node.args and not node.keywords:
            yield ctx.finding(
                self.rule_id, node.lineno, node.col_offset,
                "default_rng() with no seed is entropy-seeded and "
                "non-reproducible; thread an explicit seed",
            )
        if _call_name(node) == "field":
            yield from self._check_field_default(ctx, node)

    def _check_field_default(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg != "default_factory" or not isinstance(kw.value, ast.Lambda):
                continue
            for inner in ast.walk(kw.value.body):
                if (
                    isinstance(inner, ast.Call)
                    and _call_name(inner) == "default_rng"
                    and inner.args
                    and all(isinstance(arg, ast.Constant) for arg in inner.args)
                ):
                    yield ctx.finding(
                        self.rule_id, inner.lineno, inner.col_offset,
                        "constant-seeded default RNG is shared by every "
                        "instance; derive the seed from instance identity or "
                        "require the caller to pass a Generator",
                    )


# ======================================================================
# RL003 lock-discipline
# ======================================================================

class LockDisciplineRule(Rule):
    """RL003: ``# guarded-by:`` attributes only under their lock."""

    rule_id = "RL003"
    name = "lock-discipline"
    rationale = (
        "Serving and cluster state mutated from worker pools corrupts "
        "accounting (budgets, deposits, cache stats) unless every access "
        "holds the declared lock."
    )

    _INIT_METHODS = ("__init__", "__post_init__")

    def applies_to(self, ctx: FileContext) -> bool:
        return "guarded-by:" in ctx.source

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        guarded = self._collect_guarded(ctx, cls)
        if not guarded:
            return
        for node in cls.body:
            if isinstance(node, ast.FunctionDef) and node.name not in self._INIT_METHODS:
                held: Set[str] = set()
                holds = ctx.comments.holds(node.lineno)
                if holds is None and node.decorator_list:
                    holds = ctx.comments.holds(node.decorator_list[0].lineno)
                if holds is not None:
                    held.add(holds)
                yield from self._check_body(ctx, node.body, guarded, held, node.name)

    def _collect_guarded(self, ctx: FileContext, cls: ast.ClassDef) -> Dict[str, str]:
        guarded: Dict[str, str] = {}
        for node in cls.body:
            if not (isinstance(node, ast.FunctionDef) and node.name in self._INIT_METHODS):
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                lock = ctx.comments.guarded_by(stmt.lineno)
                if lock is None:
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        guarded[target.attr] = lock
        return guarded

    def _check_body(
        self,
        ctx: FileContext,
        stmts: List[ast.stmt],
        guarded: Dict[str, str],
        held: Set[str],
        method: str,
    ) -> Iterator[Finding]:
        for stmt in stmts:
            yield from self._check_node(ctx, stmt, guarded, held, method)

    def _check_node(
        self,
        ctx: FileContext,
        node: ast.AST,
        guarded: Dict[str, str],
        held: Set[str],
        method: str,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                yield from self._check_node(ctx, item.context_expr, guarded, held, method)
                lock_name = self._self_attr(item.context_expr)
                if lock_name is not None:
                    acquired.add(lock_name)
            inner = held | acquired
            for stmt in node.body:
                yield from self._check_node(ctx, stmt, guarded, inner, method)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A closure may run on another thread after the lock is
            # released; it must re-acquire or carry its own annotation.
            nested_held: Set[str] = set()
            holds = ctx.comments.holds(node.lineno)
            if holds is not None:
                nested_held.add(holds)
            for stmt in node.body:
                yield from self._check_node(ctx, stmt, guarded, nested_held, method)
            return
        if isinstance(node, ast.Attribute):
            attr = self._self_attr(node)
            if attr is not None and attr in guarded and guarded[attr] not in held:
                yield ctx.finding(
                    self.rule_id,
                    node.lineno,
                    node.col_offset,
                    f"{method} touches self.{attr} (guarded-by: {guarded[attr]}) "
                    f"without holding self.{guarded[attr]}; wrap in `with "
                    f"self.{guarded[attr]}:` or annotate the method "
                    f"`# holds: {guarded[attr]}`",
                )
            yield from self._check_node(ctx, node.value, guarded, held, method)
            return
        for child in ast.iter_child_nodes(node):
            yield from self._check_node(ctx, child, guarded, held, method)

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None


# ======================================================================
# RL004 accounting-floats
# ======================================================================

_MONEY_TOKENS = {
    "price", "prices", "priced", "budget", "budgets", "epsilon", "eps",
    "cost", "costs", "revenue", "deposit", "deposits", "balance",
    "spend", "spent", "charge", "charged", "payment", "fee", "fees",
}


class AccountingFloatsRule(Rule):
    """RL004: no ``==``/``!=`` on money or ε expressions."""

    rule_id = "RL004"
    name = "accounting-floats"
    rationale = (
        "Budget, price and epsilon values are floating-point sums of "
        "per-query charges; exact equality silently diverges after a few "
        "hundred accumulations.  Use math.isclose or integer micro-units."
    )

    _MODULE_PREFIXES = ("repro.pricing",)
    _MODULES = ("repro.core.policy",)

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module in self._MODULES:
            return True
        return any(
            ctx.module == prefix or ctx.module.startswith(prefix + ".")
            for prefix in self._MODULE_PREFIXES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._is_exempt_operand(operand) for operand in operands):
                continue
            term = next(
                (self._money_term(operand) for operand in operands
                 if self._money_term(operand) is not None),
                None,
            )
            if term is not None:
                yield ctx.finding(
                    self.rule_id,
                    node.lineno,
                    node.col_offset,
                    f"exact ==/!= on accounting value `{term}`; use "
                    "math.isclose(..., rel_tol=...) or integer micro-units",
                )

    @staticmethod
    def _is_exempt_operand(node: ast.expr) -> bool:
        # `x == None` / string-tag comparisons are identity/dispatch
        # checks, not numeric accounting.
        return isinstance(node, ast.Constant) and (
            node.value is None or isinstance(node.value, str)
        )

    @staticmethod
    def _money_term(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            symbol = node.id
        elif isinstance(node, ast.Attribute):
            symbol = node.attr
        else:
            return None
        tokens = {token for token in symbol.lower().split("_") if token}
        return symbol if tokens & _MONEY_TOKENS else None


# ======================================================================
# RL005 broad-except
# ======================================================================

_BROAD_NAMES = {"Exception", "BaseException"}
_METRIC_METHODS = {"inc", "observe", "set_gauge"}


class BroadExceptRule(Rule):
    """RL005: broad handlers must re-raise, count a metric, or be shed-annotated."""

    rule_id = "RL005"
    name = "broad-except"
    rationale = (
        "A swallowed Exception in the serving or collection path hides "
        "accounting drift and failed releases; every broad handler must "
        "leave a trace (re-raise or MetricsRegistry count) or be an "
        "annotated load-shedding path."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.split(".", 1)[0] not in ("tests", "conftest")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    if self._is_broad(handler) and not self._is_justified(ctx, handler):
                        yield ctx.finding(
                            self.rule_id,
                            handler.lineno,
                            handler.col_offset,
                            "broad except swallows errors silently; re-raise, "
                            "count a MetricsRegistry metric, or annotate "
                            "`# repro-lint: shed`",
                        )

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        candidates: List[ast.expr] = (
            list(handler.type.elts) if isinstance(handler.type, ast.Tuple) else [handler.type]
        )
        return any(
            isinstance(candidate, ast.Name) and candidate.id in _BROAD_NAMES
            for candidate in candidates
        )

    def _is_justified(self, ctx: FileContext, handler: ast.ExceptHandler) -> bool:
        if ctx.comments.is_shed(handler.lineno):
            return True
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
            ):
                return True
        return False


# ======================================================================
# RL006 journal-before-release
# ======================================================================

class JournalBeforeReleaseRule(Rule):
    """RL006: broker answer paths journal the trade before releasing it."""

    rule_id = "RL006"
    name = "journal-before-release"
    rationale = (
        "The durable trade journal is only a crash-safety guarantee if "
        "every release path appends to it before the answer leaves the "
        "broker: journal-after-release (or charge-before-journal) lets a "
        "crash release an answer whose ε-spend recovery cannot see."
    )

    _MODULES = (
        "repro.core.broker",
        "repro.cluster.broker",
        "repro.streaming.broker",
        "repro.resilience.brownout",
        "repro.resilience.hedging",
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module in self._MODULES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and node.name.startswith(
                ("answer", "replay")
            ):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        journal_lines: List[int] = []
        returns: List[ast.Return] = []
        for node in self._walk_own_scope(func.body):
            if isinstance(node, ast.Call) and self._is_journal_call(node):
                journal_lines.append(node.lineno)
            elif isinstance(node, ast.Return) and node.value is not None:
                returns.append(node)
        for ret in returns:
            if self._is_delegation(ret.value):
                # Returning another answer*/replay* call's result: that
                # callee carries the journaling obligation.
                continue
            if not any(line <= ret.lineno for line in journal_lines):
                yield ctx.finding(
                    self.rule_id,
                    ret.lineno,
                    ret.col_offset,
                    f"{func.name} releases an answer without a preceding "
                    "write-ahead journal append; call self._journal_trades("
                    "...) (or journal.append/append_many) before the return "
                    "(journal-before-release)",
                )

    @staticmethod
    def _walk_own_scope(stmts: List[ast.stmt]) -> Iterator[ast.AST]:
        """Walk the function body without descending into nested scopes.

        The guard must sit on the *yielded* node, not its children: a
        nested ``def`` that is a direct statement of the body would
        otherwise have its own body expanded, and a helper closure's
        ``return`` would be misread as the answer function's release.
        """
        stack: List[ast.AST] = list(stmts)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_journal_call(node: ast.Call) -> bool:
        callee = _call_name(node)
        if callee.startswith("_journal"):
            return True
        if callee in ("append", "append_many"):
            dotted = _dotted_name(node.func)
            return dotted is not None and "journal" in dotted.lower()
        return False

    @staticmethod
    def _is_delegation(expr: Optional[ast.expr]) -> bool:
        node = expr
        while isinstance(node, ast.Subscript):
            node = node.value
        return isinstance(node, ast.Call) and _call_name(node).startswith(
            ("answer", "replay")
        )


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
default_registry.register(DpBoundaryRule)
default_registry.register(RngDisciplineRule)
default_registry.register(LockDisciplineRule)
default_registry.register(AccountingFloatsRule)
default_registry.register(BroadExceptRule)
default_registry.register(JournalBeforeReleaseRule)
