"""Continuous private range counting over sliding windows.

The streaming subsystem extends the one-shot trading pipeline to live
IoT feeds: devices push timestamped batches into per-shard ingestors,
epochs seal into mergeable bounded-memory window summaries, and a
:class:`~repro.streaming.broker.StreamingBroker` sells ``(α, δ)``
answers over the last ``W`` epochs with per-epoch privacy budgets that
expire -- and are reclaimed -- as epochs leave the window.  See
``docs/STREAMING.md`` for the window model and the cache-invalidation
contract.
"""

from repro.streaming.accounting import EpochBudgetAccountant, EpochCharge
from repro.streaming.bench import run_streaming_bench, streaming_bench_healthy
from repro.streaming.broker import (
    StreamingBroker,
    StreamingStation,
    WindowSnapshot,
)
from repro.streaming.ingest import ShardIngestor, StreamDevice
from repro.streaming.journal import (
    WindowLog,
    WindowLogEntry,
    rebuild_window_state,
)
from repro.streaming.runtime import (
    StreamingCluster,
    StreamingConfig,
    build_streaming_cluster,
)
from repro.streaming.window import (
    EpochSummary,
    WindowSummary,
    merge_epoch_summaries,
    pooled_estimate,
    pooled_estimate_many,
    pooled_plan,
    pooled_rate,
    pooled_samples,
    window_checksum,
)

__all__ = [
    "EpochBudgetAccountant",
    "EpochCharge",
    "EpochSummary",
    "ShardIngestor",
    "StreamDevice",
    "StreamingBroker",
    "StreamingCluster",
    "StreamingConfig",
    "StreamingStation",
    "WindowLog",
    "WindowLogEntry",
    "WindowSnapshot",
    "WindowSummary",
    "build_streaming_cluster",
    "merge_epoch_summaries",
    "pooled_estimate",
    "pooled_estimate_many",
    "pooled_plan",
    "pooled_rate",
    "pooled_samples",
    "rebuild_window_state",
    "run_streaming_bench",
    "streaming_bench_healthy",
    "window_checksum",
]
