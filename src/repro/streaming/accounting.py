"""Per-epoch privacy budgeting with expiry: bounded steady-state spend.

A one-shot broker composes every release against one per-dataset ε ledger
(:class:`~repro.privacy.budget.BudgetAccountant`), so a long-lived stream
would exhaust any finite capacity and then refuse service forever.  The
streaming subsystem budgets **per epoch** instead: every record lives in
exactly one epoch (epochs are half-open, see
:mod:`repro.datasets.streams`), so a window release that covers epochs
``E`` degrades each record's privacy by at most the ε′ charged to *its*
epoch -- per-record leakage is the per-epoch ledger total, not the sum
over the stream.

:class:`EpochBudgetAccountant` therefore keeps one sequential-composition
ledger per ``(dataset, epoch)``.  A window release charges its ε′ to every
epoch the window covers (the release reveals information about each of
them); when an epoch leaves the window it can never be queried again, so
:meth:`expire_before` retires its ledger and *reclaims* the budget --
steady-state spend is bounded by ``window_epochs × capacity`` no matter
how many epochs the stream processes.

This module is in the strict-mypy scope (CI lint job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import PrivacyBudgetExceededError, StreamingError
from repro.privacy.composition import sequential_composition

__all__ = ["EpochBudgetAccountant", "EpochCharge"]


@dataclass(frozen=True)
class EpochCharge:
    """One recorded expenditure against one epoch's ledger."""

    label: str
    epsilon: float


@dataclass
class EpochBudgetAccountant:
    """Per-``(dataset, epoch)`` sequential-composition ε ledgers with expiry.

    Parameters
    ----------
    capacity:
        Maximum cumulative ε′ per ``(dataset, epoch)`` ledger -- the bound
        on any single record's lifetime leakage, since a record belongs to
        exactly one epoch.  ``float('inf')`` (default) disables
        enforcement but still records spending for audits.
    """

    capacity: float = float("inf")
    _spent: Dict[Tuple[str, int], List[EpochCharge]] = field(
        default_factory=dict
    )
    _floor: Dict[str, int] = field(default_factory=dict)
    _reclaimed: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")

    # ------------------------------------------------------------------
    # spend queries
    # ------------------------------------------------------------------
    def spent(self, dataset: str, epoch: int) -> float:
        """Cumulative ε′ charged to one epoch's ledger (0 once expired)."""
        entries = self._spent.get((dataset, epoch), [])
        if not entries:
            return 0.0
        return sequential_composition([e.epsilon for e in entries])

    def window_spent(self, dataset: str, epochs: Sequence[int]) -> float:
        """Per-record leakage bound over a window: the *max* epoch ledger.

        A record lives in exactly one epoch, so the worst-off record's
        cumulative ε is the largest per-epoch total, not the sum.
        """
        if not epochs:
            return 0.0
        return max(self.spent(dataset, epoch) for epoch in epochs)

    def live_total(self, dataset: str) -> float:
        """Σ ε over all live (non-expired) epoch ledgers of ``dataset``.

        Bounded by ``live-epoch count × capacity`` -- the quantity the
        acceptance bench asserts does not grow with stream length.
        """
        floor = self._floor.get(dataset, 0)
        return float(
            sum(
                sequential_composition([e.epsilon for e in entries])
                for (name, epoch), entries in self._spent.items()
                if name == dataset and epoch >= floor and entries
            )
        )

    def live_epochs(self, dataset: str) -> Tuple[int, ...]:
        """Epoch indexes of ``dataset`` with a live, non-empty ledger."""
        floor = self._floor.get(dataset, 0)
        return tuple(
            sorted(
                epoch
                for (name, epoch), entries in self._spent.items()
                if name == dataset and epoch >= floor and entries
            )
        )

    def reclaimed(self, dataset: str) -> float:
        """Total ε reclaimed by expiry so far (audit counter)."""
        return self._reclaimed.get(dataset, 0.0)

    def remaining(self, dataset: str, epoch: int) -> float:
        """Headroom left in one epoch's ledger."""
        return self.capacity - self.spent(dataset, epoch)

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def can_afford(
        self, dataset: str, epochs: Sequence[int], epsilon: float
    ) -> bool:
        """Whether charging ``epsilon`` to *every* epoch in ``epochs`` fits."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        return all(
            self.spent(dataset, epoch) + epsilon <= self.capacity + 1e-12
            for epoch in epochs
        )

    def charge_window(
        self,
        dataset: str,
        epochs: Sequence[int],
        epsilon: float,
        label: str = "query",
    ) -> float:
        """Charge one window release's ε′ to every covered epoch.

        Atomic: affordability is checked for all epochs before any ledger
        mutates.  Charging an expired epoch is a programming error -- the
        broker must never answer over epochs that left the window.
        Returns the post-charge :meth:`window_spent`.
        """
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not epochs:
            raise ValueError("a window charge needs at least one epoch")
        floor = self._floor.get(dataset, 0)
        expired = [epoch for epoch in epochs if epoch < floor]
        if expired:
            raise StreamingError(
                f"dataset {dataset!r}: epochs {expired} are expired "
                f"(floor is {floor}); refusing to charge a dead ledger"
            )
        if not self.can_afford(dataset, epochs, epsilon):
            worst = max(epochs, key=lambda e: self.spent(dataset, e))
            raise PrivacyBudgetExceededError(
                f"dataset {dataset!r}: charging ε={epsilon:.6g} to epoch "
                f"{worst} would exceed per-epoch capacity "
                f"{self.capacity:.6g} (already spent "
                f"{self.spent(dataset, worst):.6g})"
            )
        for epoch in epochs:
            self._spent.setdefault((dataset, epoch), []).append(
                EpochCharge(label, epsilon)
            )
        return self.window_spent(dataset, list(epochs))

    # ------------------------------------------------------------------
    # expiry
    # ------------------------------------------------------------------
    def expire_before(self, dataset: str, epoch: int) -> float:
        """Retire every epoch ledger below ``epoch``; returns ε reclaimed.

        Idempotent and monotone: the floor only moves forward.  Called on
        every window roll with the new floor epoch, so the live ledger set
        tracks exactly the epochs the window can still answer over.
        """
        floor = max(self._floor.get(dataset, 0), epoch)
        self._floor[dataset] = floor
        reclaimed = 0.0
        dead = [
            key
            for key in self._spent
            if key[0] == dataset and key[1] < floor
        ]
        for key in dead:
            entries = self._spent.pop(key)
            if entries:
                reclaimed += sequential_composition(
                    [e.epsilon for e in entries]
                )
        if reclaimed:
            self._reclaimed[dataset] = (
                self._reclaimed.get(dataset, 0.0) + reclaimed
            )
        return reclaimed

    def floor(self, dataset: str) -> int:
        """First epoch whose ledger is still chargeable."""
        return self._floor.get(dataset, 0)

    def history(
        self, dataset: str, epoch: int
    ) -> Tuple[EpochCharge, ...]:
        """Immutable view of one epoch ledger's recorded charges."""
        return tuple(self._spent.get((dataset, epoch), ()))

    def datasets(self) -> Tuple[str, ...]:
        """Dataset keys with at least one live or historical ledger."""
        names = {key[0] for key in self._spent}
        names.update(self._floor)
        return tuple(sorted(names))
