"""The streaming benchmark: drive epochs through the full serving stack.

One seeded run builds a :class:`~repro.streaming.runtime.StreamingCluster`,
fronts its broker with the real :class:`~repro.serving.gateway.ServingGateway`
(answer cache bound to the streaming station's commit feed), and then for
every epoch: ingests a synthetic arrival burst, rolls the window, and
serves a mixed-tier query workload -- each distinct ``(range, tier)``
twice per epoch, so the cache must hit within an epoch and must *miss*
after every roll.

The payload records, per epoch and in summary, the invariants the CI
smoke gate asserts:

* **zero accounting drift** -- the budget accountant, billing ledger, and
  per-epoch ledgers all agree with the sums recomputed from transactions
  and window-log charges;
* **bounded steady-state ε** -- once the window fills, the live per-epoch
  spend stops growing with stream length (expired budget is reclaimed);
* **cache correctness** -- hit rate is positive, yet no answer is ever
  served stale across a roll (fresh noise after every commit);
* **determinism** -- the whole run is a pure function of its seed, probed
  by a value checksum stable across rebuilds.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, cast

import numpy as np

from repro.core.query import AccuracySpec
from repro.serving.gateway import ServingConfig, ServingGateway
from repro.streaming.runtime import (
    StreamingCluster,
    StreamingConfig,
    build_streaming_cluster,
)
from repro.streaming.window import window_checksum

__all__ = ["run_streaming_bench", "streaming_bench_healthy"]

#: Default mixed-tier products; all at or above the default floor
#: ``(0.15, 0.5)`` (α no tighter, δ no stronger), so every tier is
#: admissible and feasible from any floor-provisioned window.
DEFAULT_TIERS: "Tuple[Tuple[float, float], ...]" = (
    (0.15, 0.5),
    (0.2, 0.4),
    (0.3, 0.25),
)


def _workload_values(
    rng: np.random.Generator, count: int, epoch: int
) -> np.ndarray:
    """One epoch's synthetic sensor burst over the [0, 100] domain.

    A slow diurnal drift across epochs keeps per-epoch counts (and hence
    rates, plans, and prices) genuinely epoch-dependent, like a real
    air-quality feed.
    """
    center = 50.0 + 15.0 * np.sin(2.0 * np.pi * epoch / 12.0)
    values = rng.normal(loc=center, scale=18.0, size=count)
    return np.clip(values, 0.0, 100.0)


def run_streaming_bench(
    epochs: int = 8,
    shards: int = 4,
    devices_per_shard: int = 8,
    window_epochs: int = 4,
    arrivals_per_epoch: int = 1024,
    ranges: int = 6,
    tiers: "Optional[Sequence[Tuple[float, float]]]" = None,
    floor: "Tuple[float, float]" = (0.15, 0.5),
    consumers: int = 2,
    seed: int = 13,
) -> "Dict[str, Any]":
    """Run the continuous pipeline for ``epochs`` epochs and audit it.

    Deterministic: every rng (arrivals, device sampling, channel, broker
    noise) derives from ``seed``, so two calls with equal arguments
    produce bit-identical payloads up to wall-clock timing fields.
    """
    if epochs < 1:
        raise ValueError("epochs must be positive")
    tier_list = [AccuracySpec(a, d) for a, d in (tiers or DEFAULT_TIERS)]
    cluster = build_streaming_cluster(StreamingConfig(
        shards=shards,
        devices_per_shard=devices_per_shard,
        window_epochs=window_epochs,
        floor=AccuracySpec(*floor),
        seed=seed,
        nominal_records=max(arrivals_per_epoch * window_epochs, 1),
    ))
    workload_rng = np.random.default_rng(seed * 7_919 + 1)
    bounds = np.linspace(0.0, 100.0, ranges + 1)
    query_ranges = [
        (float(bounds[i]), float(bounds[i + 1])) for i in range(ranges)
    ]
    consumer_names = [f"consumer-{i}" for i in range(consumers)]

    per_epoch: "List[Dict[str, Any]]" = []
    answer_values: "List[float]" = []
    last_value: "Dict[Tuple[float, float, float, float], Tuple[int, float]]" = {}
    stale_answers = 0
    completed = 0
    failed = 0
    hits_before = 0

    started = time.perf_counter()
    gateway = ServingGateway(
        cast(Any, cluster.broker),
        config=ServingConfig(
            batch_window=0.0,
            max_batch=64,
            queue_depth=4096,
        ),
        telemetry=cluster.telemetry,
    )
    with gateway:
        for epoch in range(epochs):
            values = _workload_values(
                workload_rng, arrivals_per_epoch, epoch
            )
            timestamps = epoch + np.arange(len(values)) / max(len(values), 1)
            cluster.ingest(values, timestamps)
            snapshot = cluster.roll()
            rate = snapshot.epochs[-1].rate

            # Two passes per (range, tier): pass 1 releases fresh, pass 2
            # (submitted only after pass 1 fully resolves, from a second
            # consumer) must replay from the answer cache at zero privacy
            # cost -- which makes the hit count an exact, deterministic
            # ``ranges`` per epoch rather than a scheduling accident.
            # One consumer per pass keeps the broker's noise-draw order
            # equal to submission order whatever the batch boundaries.
            for pass_id in range(2):
                consumer = consumer_names[pass_id % len(consumer_names)]
                futures = []
                for i, (low, high) in enumerate(query_ranges):
                    spec = tier_list[(i + epoch) % len(tier_list)]
                    futures.append((
                        (low, high, spec.alpha, spec.delta),
                        gateway.submit_range(
                            low, high, spec.alpha, spec.delta,
                            consumer=consumer,
                        ),
                    ))
                for key, future in futures:
                    try:
                        answer = future.result(timeout=30.0)
                    except Exception:  # repro-lint: shed -- counted in `failed`, gated by the health check
                        failed += 1
                        continue
                    completed += 1
                    answer_values.append(float(answer.value))
                    seen = last_value.get(key)
                    if seen is not None:
                        seen_epoch, seen_raw = seen
                        # Compare the *unclamped* noisy value: the clamped
                        # release collides at the 0 / n boundaries, but an
                        # identical raw draw across a roll can only mean
                        # the cache replayed a stale window's answer.
                        if seen_epoch != epoch and seen_raw == answer.raw_value:
                            stale_answers += 1
                    if seen is None or seen[0] != epoch:
                        last_value[key] = (epoch, float(answer.raw_value))

            stats = gateway.cache.stats if gateway.cache is not None else None
            hits_total = stats.hits if stats is not None else 0
            accountant = cluster.broker.epoch_accountant
            per_epoch.append({
                "epoch": epoch,
                "rate": rate,
                "occupancy": len(snapshot.epochs),
                "window_records": snapshot.record_count,
                "bucket_count": snapshot.node_count,
                "store_version": snapshot.store_version,
                "cache_hits": hits_total - hits_before,
                "live_epsilon": accountant.live_total(cluster.config.dataset),
                "window_epsilon": accountant.window_spent(
                    cluster.config.dataset, list(snapshot.live_epochs)
                ),
                "reclaimed_total": accountant.reclaimed(
                    cluster.config.dataset
                ),
            })
            hits_before = hits_total
    duration = time.perf_counter() - started

    broker = cluster.broker
    dataset = cluster.config.dataset
    transactions = broker.ledger.transactions
    expected_epsilon = float(
        sum(t.epsilon_prime for t in transactions)
    )
    expected_revenue = float(sum(t.price for t in transactions))
    epsilon_spent = broker.accountant.spent(dataset)
    revenue = broker.ledger.total_revenue()

    # Per-epoch ledgers recomputed from the journaled charge entries must
    # agree with the live accountant (for every still-live epoch).
    live_epochs = set(cluster.station.snapshot().live_epochs)
    journaled: "Dict[int, float]" = {e: 0.0 for e in live_epochs}
    for entry in cluster.window_log.entries():
        if entry.kind != "charge":
            continue
        for e in entry.data["epochs"]:
            if int(e) in journaled:
                journaled[int(e)] += float(entry.data["epsilon"])
    epoch_drift = max(
        (
            abs(
                journaled[e]
                - broker.epoch_accountant.spent(dataset, e)
            )
            for e in live_epochs
        ),
        default=0.0,
    )

    # Steady state: the live total at epoch e is a triangular sum of the
    # last W epochs' per-epoch spends, so once every warmup epoch has
    # been evicted (e >= 2W - 2 with a constant workload) it must stop
    # growing -- expired budget is reclaimed on every roll.
    live_series = [p["live_epsilon"] for p in per_epoch]
    steady = live_series[max(2 * window_epochs - 2, 0):]
    steady_state_bounded = bool(
        len(steady) < 2
        or max(steady) <= min(steady) * (1 + 1e-6)
    )

    stats = gateway.cache.stats if gateway.cache is not None else None
    cache_hits = stats.hits if stats is not None else 0
    lookups = (stats.hits + stats.misses) if stats is not None else 0
    determinism_checksum = float(np.sum(np.asarray(answer_values)))

    return {
        "epochs": epochs,
        "shards": shards,
        "devices": cluster.device_count,
        "window_epochs": window_epochs,
        "arrivals_per_epoch": arrivals_per_epoch,
        "ranges": ranges,
        "tiers": [[t.alpha, t.delta] for t in tier_list],
        "floor": list(floor),
        "consumers": consumers,
        "seed": seed,
        "per_epoch": per_epoch,
        "completed": completed,
        "failed": failed,
        "duration_s": duration,
        "throughput_qps": completed / duration if duration > 0 else 0.0,
        "cache_hits": cache_hits,
        "cache_hit_rate": cache_hits / lookups if lookups else 0.0,
        "stale_answers": stale_answers,
        "epsilon_spent": epsilon_spent,
        "expected_epsilon": expected_epsilon,
        "epsilon_drift": epsilon_spent - expected_epsilon,
        "revenue": revenue,
        "expected_revenue": expected_revenue,
        "revenue_drift": revenue - expected_revenue,
        "epoch_epsilon_drift": epoch_drift,
        "epsilon_reclaimed": broker.epoch_accountant.reclaimed(dataset),
        "live_epsilon_final": live_series[-1],
        "live_epsilon_peak": max(live_series),
        "steady_state_bounded": steady_state_bounded,
        "window_checksum": window_checksum(
            cluster.station.snapshot().epochs
        ),
        "journal_checksum": cluster.window_log.checksum(),
        "determinism_checksum": determinism_checksum,
    }


def streaming_bench_healthy(payload: "Dict[str, Any]") -> "List[str]":
    """The CI smoke contract; returns the list of violated invariants."""
    problems: "List[str]" = []
    if not float(payload.get("throughput_qps", 0.0)) > 0:
        problems.append("zero throughput")
    if int(payload.get("failed", 1)) != 0:
        problems.append(f"{payload.get('failed')} requests failed")
    if abs(float(payload.get("epsilon_drift", 1.0))) >= 1e-6:
        problems.append(f"epsilon drift {payload.get('epsilon_drift')}")
    if abs(float(payload.get("revenue_drift", 1.0))) >= 1e-6:
        problems.append(f"revenue drift {payload.get('revenue_drift')}")
    if abs(float(payload.get("epoch_epsilon_drift", 1.0))) >= 1e-6:
        problems.append(
            f"epoch ledger drift {payload.get('epoch_epsilon_drift')}"
        )
    if not float(payload.get("cache_hit_rate", 0.0)) > 0:
        problems.append("cache never hit")
    if int(payload.get("stale_answers", 1)) != 0:
        problems.append(f"{payload.get('stale_answers')} stale answers served")
    if not payload.get("steady_state_bounded", False):
        problems.append("live epsilon grew after the window filled")
    if int(payload.get("epochs", 0)) > int(payload.get("window_epochs", 0)):
        if not float(payload.get("epsilon_reclaimed", 0.0)) > 0:
            problems.append("no budget was ever reclaimed by expiry")
    return problems
