"""Mergeable, bounded-memory window summaries for streaming range counting.

The unit of streaming state is the :class:`EpochSummary`: one sealed
epoch's per-node rank samples, all drawn at one shared Bernoulli rate.  A
sealed epoch behaves exactly like a paper *generation* (see
:mod:`repro.core.continuous`): ranks are local to the epoch, so a window
query is answered by summing RankCounting estimates over the live epochs,
and with ``k_eff`` non-empty node samples across the window the variance
bound ``8·k_eff/p²`` and Theorem 3.3 carry over unchanged.

Epoch summaries are **mergeable**: two shards' summaries of the same epoch
combine by concatenating their node samples (associative and commutative
-- node ids are globally unique and the merge result is node-id sorted, so
any merge order yields the identical summary).  That is what lets the
coordinator fold per-shard rolls into one global window without any
re-ranking or re-sampling, mirroring the cluster's scatter-gather.

The :class:`WindowSummary` ring keeps the last ``window_epochs`` sealed
epochs and drops older ones on every roll, so per-shard memory is bounded
by ``W · devices · E[samples per epoch]`` regardless of stream length.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientSamplesError, StreamingError
from repro.estimators.base import NodeSample, RangeCountingEstimator
from repro.privacy.optimizer import PrivacyPlan, optimize_privacy_plan

__all__ = [
    "EpochSummary",
    "WindowSummary",
    "merge_epoch_summaries",
    "pooled_samples",
    "pooled_rate",
    "pooled_estimate",
    "pooled_estimate_many",
    "pooled_plan",
    "window_checksum",
]


@dataclass(frozen=True)
class EpochSummary:
    """One sealed epoch's immutable sample summary.

    ``samples`` hold only non-empty nodes (a node with no records in the
    epoch contributes nothing to any estimate); ``record_count`` is the
    epoch's true record total ``n_e``; ``rate`` is the shared Bernoulli
    rate every sample was drawn at (0.0 for an empty epoch).
    """

    epoch: int
    samples: Tuple[NodeSample, ...]
    record_count: int
    rate: float

    def __post_init__(self) -> None:
        if self.record_count < 0:
            raise ValueError("record_count must be non-negative")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        for sample in self.samples:
            if sample.node_size > 0 and abs(sample.p - self.rate) > 1e-12:
                raise ValueError(
                    f"node {sample.node_id} sampled at p={sample.p}, epoch "
                    f"sealed at p={self.rate}; epochs share one rate"
                )

    @property
    def node_count(self) -> int:
        """Non-empty node samples in this epoch."""
        return len(self.samples)

    @property
    def is_empty(self) -> bool:
        return self.record_count == 0

    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON-ready form (window-log roll entries, checksums)."""
        return {
            "epoch": self.epoch,
            "record_count": self.record_count,
            "rate": self.rate,
            "nodes": [
                [
                    int(s.node_id),
                    int(s.node_size),
                    [float(v) for v in s.values],
                    [int(r) for r in s.ranks],
                ]
                for s in self.samples
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "EpochSummary":
        """Inverse of :meth:`to_payload` -- bit-exact (floats round-trip
        through JSON losslessly via ``repr``)."""
        rate = float(payload["rate"])  # type: ignore[arg-type]
        samples = tuple(
            NodeSample(
                node_id=int(node_id),
                values=np.asarray(values, dtype=np.float64),
                ranks=np.asarray(ranks, dtype=np.int64),
                node_size=int(node_size),
                p=rate,
            )
            for node_id, node_size, values, ranks in payload["nodes"]  # type: ignore[union-attr]
        )
        return cls(
            epoch=int(payload["epoch"]),  # type: ignore[arg-type]
            samples=samples,
            record_count=int(payload["record_count"]),  # type: ignore[arg-type]
            rate=rate,
        )


def merge_epoch_summaries(
    a: EpochSummary, b: EpochSummary
) -> EpochSummary:
    """Merge two shards' summaries of the *same* epoch.

    Associative and commutative: samples concatenate and are re-sorted by
    (globally unique) node id, record counts add, and the shared rate must
    agree (an empty side imposes no rate).  Merging summaries of different
    epochs is a programming error.
    """
    if a.epoch != b.epoch:
        raise StreamingError(
            f"cannot merge epoch {a.epoch} with epoch {b.epoch}"
        )
    if a.is_empty and not a.samples:
        rate = b.rate
    elif b.is_empty and not b.samples:
        rate = a.rate
    else:
        if abs(a.rate - b.rate) > 1e-12:
            raise StreamingError(
                f"epoch {a.epoch}: shard rates differ "
                f"({a.rate} vs {b.rate}); seal with one coordinator rate"
            )
        rate = a.rate
    samples = tuple(
        sorted(a.samples + b.samples, key=lambda s: s.node_id)
    )
    seen: set = set()
    for sample in samples:
        if sample.node_id in seen:
            raise StreamingError(
                f"epoch {a.epoch}: node {sample.node_id} appears in both "
                "summaries; node ids must be globally unique"
            )
        seen.add(sample.node_id)
    return EpochSummary(
        epoch=a.epoch,
        samples=samples,
        record_count=a.record_count + b.record_count,
        rate=rate,
    )


@dataclass
class WindowSummary:
    """Ring of the last ``window_epochs`` sealed epochs (bounded memory).

    Adding epoch ``e`` evicts every epoch ``<= e - window_epochs``, so the
    live set is always a suffix of the sealed epochs and occupies at most
    ``window_epochs`` slots.
    """

    window_epochs: int
    _epochs: Dict[int, EpochSummary] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_epochs <= 0:
            raise ValueError("window_epochs must be positive")

    def add(self, summary: EpochSummary) -> Tuple[EpochSummary, ...]:
        """Admit a sealed epoch; returns the epochs evicted by the roll."""
        if summary.epoch in self._epochs:
            raise StreamingError(
                f"epoch {summary.epoch} already sealed in this window"
            )
        if self._epochs and summary.epoch < max(self._epochs):
            raise StreamingError(
                f"epoch {summary.epoch} sealed out of order "
                f"(latest is {max(self._epochs)})"
            )
        self._epochs[summary.epoch] = summary
        floor = summary.epoch - self.window_epochs + 1
        evicted = tuple(
            self._epochs.pop(e)
            for e in sorted(self._epochs)
            if e < floor
        )
        return evicted

    def epochs(self) -> Tuple[EpochSummary, ...]:
        """Live epochs, oldest first."""
        return tuple(self._epochs[e] for e in sorted(self._epochs))

    @property
    def live_epochs(self) -> Tuple[int, ...]:
        return tuple(sorted(self._epochs))

    @property
    def latest_epoch(self) -> Optional[int]:
        return max(self._epochs) if self._epochs else None

    @property
    def floor_epoch(self) -> Optional[int]:
        """First epoch the window still covers (None before any roll)."""
        latest = self.latest_epoch
        if latest is None:
            return None
        return latest - self.window_epochs + 1

    @property
    def occupancy(self) -> int:
        """Live epoch slots in use (≤ ``window_epochs``)."""
        return len(self._epochs)

    @property
    def record_count(self) -> int:
        """Window total ``n`` = Σ live ``n_e``."""
        return sum(s.record_count for s in self._epochs.values())

    @property
    def node_count(self) -> int:
        """``k_eff`` = Σ live non-empty node samples."""
        return sum(s.node_count for s in self._epochs.values())

    def clear(self) -> None:
        self._epochs.clear()


# ----------------------------------------------------------------------
# pooled (cross-epoch) helpers -- shared by StreamingBroker and the
# ContinuousMonitor compatibility wrapper
# ----------------------------------------------------------------------
def pooled_samples(epochs: Sequence[EpochSummary]) -> List[NodeSample]:
    """All node samples across ``epochs``, in epoch-then-rank order."""
    return [s for summary in epochs for s in summary.samples]


def pooled_rate(epochs: Sequence[EpochSummary]) -> float:
    """The sparsest live sample's rate -- it bounds certified accuracy."""
    rates = [s.p for summary in epochs for s in summary.samples]
    if not rates:
        raise InsufficientSamplesError("window holds no samples yet")
    return min(rates)


def pooled_estimate(
    epochs: Sequence[EpochSummary],
    estimator: RangeCountingEstimator,
    low: float,
    high: float,
) -> float:
    """Window estimate: Σ per-epoch RankCounting estimates.

    Each epoch's samples share one rate, so the estimator's shared-``p``
    invariant holds per call even when rates differ across epochs.
    """
    return sum(
        estimator.estimate(list(summary.samples), low, high).estimate
        for summary in epochs
        if summary.samples
    )


def pooled_estimate_many(
    epochs: Sequence[EpochSummary],
    estimator: RangeCountingEstimator,
    ranges: Sequence[Tuple[float, float]],
) -> np.ndarray:
    """Vectorized :func:`pooled_estimate` over many ranges."""
    totals = np.zeros(len(ranges), dtype=np.float64)
    for summary in epochs:
        if not summary.samples:
            continue
        estimate_many = getattr(estimator, "estimate_many", None)
        if estimate_many is not None:
            totals += np.asarray(estimate_many(list(summary.samples), ranges))
        else:
            totals += np.asarray([
                estimator.estimate(list(summary.samples), low, high).estimate
                for low, high in ranges
            ])
    return totals


def pooled_plan(
    epochs: Sequence[EpochSummary],
    alpha: float,
    delta: float,
    grid_points: int = 512,
) -> PrivacyPlan:
    """Solve optimization problem (3) for a window query.

    Uses the pooled fleet shape: ``k`` = all live node samples, ``n`` = the
    window record total, ``p`` = the sparsest live rate (certified
    accuracy is bounded by the sparsest epoch, exactly as in
    :class:`~repro.core.continuous.ContinuousMonitor`).
    """
    samples = pooled_samples(epochs)
    if not samples:
        raise InsufficientSamplesError("window holds no samples yet")
    n = sum(summary.record_count for summary in epochs)
    return optimize_privacy_plan(
        alpha=alpha,
        delta=delta,
        p=pooled_rate(epochs),
        k=len(samples),
        n=n,
        grid_points=grid_points,
    )


def window_checksum(epochs: Iterable[EpochSummary]) -> str:
    """SHA-256 over the canonical JSON of every epoch, oldest first.

    The bit-exact-recovery probe: two windows holding identical epochs
    (same samples, ranks, rates, counts) produce identical digests.
    """
    digest = hashlib.sha256()
    for summary in sorted(epochs, key=lambda s: s.epoch):
        digest.update(
            json.dumps(summary.to_payload(), sort_keys=True).encode("utf-8")
        )
    return digest.hexdigest()
