"""The streaming broker: windowed ``(α, δ)`` answers over live epochs.

Same duck-typed trading surface as :class:`~repro.core.broker.DataBroker`
and :class:`~repro.cluster.broker.ClusterBroker` (``quote`` /
``answer`` / ``answer_batch`` / ``replay`` / ``routing_signature`` plus a
``base_station`` exposing ``store_version`` and ``subscribe_commits``),
so the serving gateway, answer cache, and admission controller all wire
up unchanged.  The differences are what streaming forces:

* the sample store is the **merged window** -- the last ``W`` sealed
  epochs folded across shards (:class:`StreamingStation`) -- and its
  fleet shape ``(k_eff, n, p)`` changes on every roll, so plans are
  memoized on the full ``(α, δ, p, k, n)`` key rather than a fixed-fleet
  ``(α, δ, p)``;
* there is **no top-up**: sealed epochs are immutable, so feasibility is
  guaranteed by policy -- the admission bands pin every sellable tier at
  or above the calibration floor the epoch rates were provisioned for
  (``min_alpha = floor.α``, ``max_delta = floor.δ``; feasibility is
  monotone in both), and a window too young to support the floor fails
  loudly with :class:`~repro.errors.InfeasiblePlanError`;
* every release charges the lifetime accountant (audit trail, as
  always) **and** the per-epoch
  :class:`~repro.streaming.accounting.EpochBudgetAccountant`, journaling
  the epoch charge to the window log pre-release so recovery rebuilds
  both books.

Trades are journaled to the standard
:class:`~repro.durability.journal.TradeJournal` before any release
(journal-before-release; this module is in lint rule RL006's scope), with
``store_version`` = the window snapshot the answer was computed against.
A roll that lands mid-batch cannot tear an answer: the batch runs
entirely against the immutable epoch snapshot taken at entry, and the
cache key (window id + store version, via :meth:`routing_signature`)
ensures post-roll lookups miss.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ContextManager,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.policy import BrokerPolicy, PolicyViolationError
from repro.core.query import AccuracySpec, PrivateAnswer, RangeQuery
from repro.errors import (
    InsufficientSamplesError,
    PrivacyBudgetExceededError,
    StreamingError,
)
from repro.estimators.base import RangeCountingEstimator
from repro.estimators.rank import RankCountingEstimator
from repro.pricing.functions import PricingFunction
from repro.pricing.ledger import BillingLedger
from repro.privacy.budget import BudgetAccountant
from repro.privacy.laplace import sample_laplace_many
from repro.privacy.optimizer import PrivacyPlan, optimize_privacy_plan
from repro.resilience.deadline import check_deadline
from repro.streaming.accounting import EpochBudgetAccountant
from repro.streaming.journal import WindowLog
from repro.streaming.window import (
    EpochSummary,
    WindowSummary,
    merge_epoch_summaries,
    pooled_estimate_many,
    pooled_rate,
)

if TYPE_CHECKING:  # pragma: no cover - types only, avoids an import cycle
    from repro.durability.journal import TradeJournal
    from repro.serving.telemetry import MetricsRegistry

__all__ = ["StreamingBroker", "StreamingStation", "WindowSnapshot"]


@dataclass(frozen=True)
class WindowSnapshot:
    """An immutable view of the merged window at one store version.

    Everything an answer needs: the live epochs (already merged across
    shards), the monotone ``store_version`` the snapshot was taken at,
    and the derived fleet shape.  Epoch summaries are immutable, so a
    snapshot stays valid -- and keeps answering consistently -- even
    while the station commits further rolls.
    """

    epochs: Tuple[EpochSummary, ...]
    store_version: int

    @property
    def window_id(self) -> str:
        """``w<floor>:<latest>`` -- the cache routing key of this window."""
        if not self.epochs:
            return "w-empty"
        return f"w{self.epochs[0].epoch}:{self.epochs[-1].epoch}"

    @property
    def live_epochs(self) -> Tuple[int, ...]:
        return tuple(s.epoch for s in self.epochs)

    @property
    def record_count(self) -> int:
        return sum(s.record_count for s in self.epochs)

    @property
    def node_count(self) -> int:
        return sum(s.node_count for s in self.epochs)


class StreamingStation:
    """The merged-window store: the streaming analogue of a base station.

    Holds the cross-shard merged ring of live epochs, a monotone
    ``store_version`` bumped on every committed roll, and the
    ``subscribe_commits`` push channel the serving
    :class:`~repro.serving.answer_cache.AnswerCache` binds to -- so every
    window roll push-invalidates cached answers keyed on the previous
    ``(window_id, store_version)``.
    """

    def __init__(self, window_epochs: int) -> None:
        self._window = WindowSummary(window_epochs=window_epochs)
        self._store_version = 0
        self._lock = threading.Lock()
        self._listeners: "List[Callable[[int], None]]" = []

    @property
    def window_epochs(self) -> int:
        return self._window.window_epochs

    @property
    def store_version(self) -> int:
        """Monotone commit counter; bumps once per committed roll."""
        with self._lock:
            return self._store_version

    def subscribe_commits(self, callback: "Callable[[int], None]") -> None:
        """Call ``callback(new_store_version)`` after every committed roll."""
        with self._lock:
            self._listeners.append(callback)

    def commit_roll(
        self, shard_summaries: "Sequence[EpochSummary]"
    ) -> WindowSnapshot:
        """Fold one epoch's per-shard summaries into the merged window.

        All summaries must seal the *same* epoch; the merge is
        order-independent (associative + commutative), the ring evicts
        epochs leaving the window, the store version bumps, and commit
        listeners fire with the new version (the cache-invalidation
        push).  Returns the post-commit snapshot.
        """
        if not shard_summaries:
            raise StreamingError("a roll needs at least one shard summary")
        merged = shard_summaries[0]
        for summary in shard_summaries[1:]:
            merged = merge_epoch_summaries(merged, summary)
        with self._lock:
            self._window.add(merged)
            self._store_version += 1
            version = self._store_version
            snapshot = WindowSnapshot(
                epochs=self._window.epochs(), store_version=version
            )
            listeners = tuple(self._listeners)
        for callback in listeners:
            callback(version)
        return snapshot

    def snapshot(self) -> WindowSnapshot:
        """The current merged window at its store version (atomic)."""
        with self._lock:
            return WindowSnapshot(
                epochs=self._window.epochs(),
                store_version=self._store_version,
            )

    def restore(
        self, epochs: "Sequence[EpochSummary]", store_version: int
    ) -> None:
        """Adopt recovered window state (crash recovery path)."""
        with self._lock:
            self._window.clear()
            for summary in sorted(epochs, key=lambda s: s.epoch):
                self._window.add(summary)
            self._store_version = store_version


@dataclass
class StreamingBroker:
    """Answers priced, private range counting over the live window.

    Parameters
    ----------
    station:
        The merged-window store (also the cache-binding surface).
    pricing:
        Price sheet.  Streaming windows change ``n`` every roll, so the
        sheet is calibrated against a *nominal* fleet size chosen at
        provisioning time; prices are a market artifact, not an accuracy
        certificate, and stay stable across rolls by design.
    floor:
        The accuracy floor epoch rates are provisioned for.  Admission
        pins sellable tiers to ``α ≥ floor.α`` and ``δ ≤ floor.δ``
        (feasibility is monotone in both), replacing the one-shot
        broker's top-up escape hatch.
    epoch_accountant:
        Per-epoch ε ledgers with expiry (steady-state bound).
    accountant:
        Lifetime audit ledger (capacity ∞ by default) -- the books the
        trade journal recovers, kept identical to the one-shot path.
    window_log:
        When set, every release's per-epoch charge is journaled for
        bit-exact accountant recovery.
    """

    station: StreamingStation
    pricing: PricingFunction
    floor: AccuracySpec
    dataset: str = "stream"
    estimator: RangeCountingEstimator = field(default_factory=RankCountingEstimator)
    ledger: BillingLedger = field(default_factory=BillingLedger)
    accountant: BudgetAccountant = field(default_factory=BudgetAccountant)
    epoch_accountant: EpochBudgetAccountant = field(
        default_factory=EpochBudgetAccountant
    )
    # A broker is a process singleton; the fixed default seed is the
    # documented determinism contract (tests pin golden answers to it).
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(7))  # repro-lint: disable=RL002
    policy: Optional[BrokerPolicy] = None
    planner_grid_points: int = 512
    telemetry: "Optional[MetricsRegistry]" = None
    journal: "Optional[TradeJournal]" = None
    window_log: Optional[WindowLog] = None

    def __post_init__(self) -> None:
        if self.policy is None:
            # The admission bands double as the feasibility certificate:
            # every tier inside them is answerable from any window whose
            # epochs were sealed at the floor-calibrated rate.
            self.policy = BrokerPolicy(
                min_alpha=self.floor.alpha,
                max_delta=self.floor.delta,
            )
        # Window shape (k, n, p) changes across rolls, so plans memoize
        # on the full shape key; bounded like the one-shot broker's memo.
        self._plan_memo: "Dict[Tuple[float, float, float, int, int], PrivacyPlan]" = {}
        # Optional repro.workers process backend (None = in-process path).
        self._process_backend: "Optional[Any]" = None

    # ------------------------------------------------------------------
    # duck-typed broker surface
    # ------------------------------------------------------------------
    @property
    def base_station(self) -> StreamingStation:
        """Cache/gateway binding surface (store_version + subscribe_commits)."""
        return self.station

    def quote(self, spec: AccuracySpec) -> float:
        """List price of an ``(α, δ)`` product (no data is touched)."""
        return self.pricing.price(spec.alpha, spec.delta)

    def routing_signature(self, query: RangeQuery, spec: AccuracySpec) -> str:
        """The window id answers are currently derived from.

        Folded into the serving cache key next to ``store_version``, so a
        cached answer can only ever replay against the exact
        ``(window_id, store_version)`` it was computed at -- the
        invalidation contract the gateway relies on across rolls.
        """
        return self.station.snapshot().window_id

    def _timer(self, name: str) -> "ContextManager[Any]":
        if self.telemetry is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.telemetry.timer(name)

    def _emit(self, name: str, amount: float = 1.0) -> None:
        if self.telemetry is not None:
            self.telemetry.inc(name, amount)

    def _journal_trades(self, records: "List[Dict[str, Any]]") -> None:
        """Commit trades to the write-ahead journal, pre-release (RL006)."""
        if self.journal is not None:
            self.journal.append_many(records)

    # ------------------------------------------------------------------
    # execution backend (repro.workers)
    # ------------------------------------------------------------------
    @property
    def execution(self) -> str:
        """``"threads"`` (default, in-process) or ``"processes"``."""
        return "processes" if self._process_backend is not None else "threads"

    def use_processes(self) -> None:
        """Attach the window worker-process backend.  Idempotent.

        Pooled window estimation moves to a spawned worker fed by a
        shared-memory store republished on every committed roll; noise,
        journaling, and all three books stay in this process, so answers
        are bit-identical to the in-process path for the same seeds.
        """
        if self._process_backend is not None:
            return
        from repro.workers.backend import StreamingProcessBackend

        self._process_backend = StreamingProcessBackend(
            self.station, self.estimator, telemetry=self.telemetry
        )

    def use_threads(self) -> None:
        """Detach the process backend (restore in-process estimation)."""
        backend = self._process_backend
        self._process_backend = None
        if backend is not None:
            backend.close()

    def _pooled_estimates(
        self,
        snapshot: WindowSnapshot,
        ranges: "Sequence[Tuple[float, float]]",
    ) -> np.ndarray:
        """Window estimates for ``ranges`` at ``snapshot``.

        Offloads to the process backend when one is attached and can
        serve this exact ``store_version``; every miss (stale store,
        crashed worker) falls back to the bit-identical in-process sum.
        """
        backend = self._process_backend
        if backend is not None:
            estimates = backend.pooled_estimate_many(snapshot, ranges)
            if estimates is not None:
                return estimates
        return pooled_estimate_many(snapshot.epochs, self.estimator, ranges)

    def _plan(
        self, spec: AccuracySpec, p: float, k: int, n: int
    ) -> PrivacyPlan:
        """Memoized problem-(3) solve for one window shape."""
        key = (spec.alpha, spec.delta, p, k, n)
        plan = self._plan_memo.get(key)
        if plan is None:
            plan = optimize_privacy_plan(
                alpha=spec.alpha,
                delta=spec.delta,
                p=p,
                k=k,
                n=n,
                grid_points=self.planner_grid_points,
            )
            if len(self._plan_memo) > 2048:
                self._plan_memo.clear()
            self._plan_memo[key] = plan
        return plan

    # ------------------------------------------------------------------
    # replay (ε′ = 0 post-processing)
    # ------------------------------------------------------------------
    def replay(self, cached: PrivateAnswer, consumer: str) -> PrivateAnswer:
        """Re-release a previously purchased answer to ``consumer``.

        Post-processing: zero privacy cost (no accountant charge, no
        epoch-ledger charge), billed at list price, journaled with
        ε′ = 0 -- the same replay contract as the one-shot broker, so
        the serving cache and gateway work unchanged.
        """
        spec = cached.spec
        assert self.policy is not None
        self.policy.admit(consumer, spec)
        price = self.pricing.price(spec.alpha, spec.delta)
        self._journal_trades([dict(
            kind="replay",
            consumer=consumer,
            dataset=self.dataset,
            low=cached.query.low,
            high=cached.query.high,
            alpha=spec.alpha,
            delta=spec.delta,
            epsilon_prime=0.0,
            price=price,
            store_version=self.station.store_version,
            label=f"{consumer}:[{cached.query.low},{cached.query.high}]",
        )])
        self.policy.settle(consumer, 0.0)
        txn = self.ledger.record(
            consumer=consumer,
            dataset=self.dataset,
            alpha=spec.alpha,
            delta=spec.delta,
            price=price,
            epsilon_prime=0.0,
        )
        self._emit("broker.replays")
        return dataclasses.replace(
            cached,
            consumer=consumer,
            price=price,
            transaction_id=txn.transaction_id,
        )

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def answer(
        self,
        query: RangeQuery,
        spec: AccuracySpec,
        consumer: str = "anonymous",
    ) -> PrivateAnswer:
        """Scalar convenience wrapper over :meth:`answer_batch`."""
        return self.answer_batch([query], [spec], consumer)[0]

    def answer_batch(
        self,
        queries: "List[RangeQuery]",
        spec: "AccuracySpec | Sequence[AccuracySpec]",
        consumer: str = "anonymous",
    ) -> "List[PrivateAnswer]":
        """Answer a batch of window queries in one vectorized pass.

        The batch runs against one atomic :class:`WindowSnapshot`: plans,
        estimates, the journaled ``store_version`` and the per-epoch
        charges all describe the same set of live epochs, even if a roll
        commits while the batch is in flight (the snapshot's summaries
        are immutable).  Admission is atomic across the policy's caps,
        the lifetime accountant, *and* every covered epoch ledger -- the
        batch completes in full or charges nothing.
        """
        if not queries:
            raise ValueError("at least one query is required")
        # Expired requests must not snapshot, plan, or bill (deadline
        # scope installed by the serving gateway, no-op otherwise).
        check_deadline("streaming.answer_batch")
        if isinstance(spec, AccuracySpec):
            specs = [spec] * len(queries)
        else:
            specs = list(spec)
            if len(specs) != len(queries):
                raise ValueError(
                    f"got {len(specs)} specs for {len(queries)} queries; "
                    "pass one spec per query or a single shared spec"
                )
        for query in queries:
            if query.dataset not in ("default", self.dataset):
                raise ValueError(
                    f"query targets dataset {query.dataset!r}, broker "
                    f"serves {self.dataset!r}"
                )
        assert self.policy is not None
        self.policy.admit_batch(consumer, specs)

        snapshot = self.station.snapshot()
        if snapshot.node_count == 0:
            raise InsufficientSamplesError(
                "window holds no samples yet; seal at least one non-empty "
                "epoch before answering"
            )
        n = snapshot.record_count
        k = snapshot.node_count
        p = pooled_rate(snapshot.epochs)
        live = list(snapshot.live_epochs)

        # Plans and prices once per distinct tier (InfeasiblePlanError
        # propagates: streaming has no top-up escape hatch).
        tiers: "Dict[Tuple[float, float], AccuracySpec]" = {}
        for qspec in specs:
            tiers.setdefault((qspec.alpha, qspec.delta), qspec)
        with self._timer("streaming.plan_s"):
            plans = {
                tier: self._plan(tier_spec, p, k, n)
                for tier, tier_spec in tiers.items()
            }
            prices = {
                tier: self.pricing.price(tier_spec.alpha, tier_spec.delta)
                for tier, tier_spec in tiers.items()
            }

        # Atomic admission: per-consumer cap, lifetime budget, and every
        # live epoch's ledger must fit the whole batch.
        total_epsilon = float(sum(
            plans[(s.alpha, s.delta)].epsilon_prime for s in specs
        ))
        if not self.policy.can_release(consumer, total_epsilon):
            raise PolicyViolationError(
                f"consumer {consumer!r} would exceed the per-consumer "
                "privacy cap"
            )
        if not self.accountant.can_afford(self.dataset, total_epsilon):
            raise PrivacyBudgetExceededError(
                f"dataset {self.dataset!r}: batch of {len(queries)} "
                f"releases (ε′={total_epsilon:.6g}) would exceed capacity "
                f"{self.accountant.capacity:.6g}"
            )
        if not self.epoch_accountant.can_afford(
            self.dataset, live, total_epsilon
        ):
            raise PrivacyBudgetExceededError(
                f"dataset {self.dataset!r}: batch ε′={total_epsilon:.6g} "
                f"would exceed the per-epoch capacity "
                f"{self.epoch_accountant.capacity:.6g} on window epochs "
                f"{live}"
            )

        with self._timer("streaming.estimate_s"):
            ranges = [(q.low, q.high) for q in queries]
            estimates = self._pooled_estimates(snapshot, ranges)
        scales = np.asarray([
            plans[(s.alpha, s.delta)].noise_scale for s in specs
        ])
        noise = sample_laplace_many(scales, self.rng)
        raw_values = estimates + noise
        released = np.clip(raw_values, 0.0, float(n))

        # Journal-before-release: trades to the trade journal, epoch
        # charges to the window log, then (and only then) the books.
        journal_records: "List[Dict[str, Any]]" = []
        sales: "List[Dict[str, Any]]" = []
        charge_epsilons: "List[float]" = []
        charge_labels: "List[str]" = []
        for query, qspec in zip(queries, specs):
            tier = (qspec.alpha, qspec.delta)
            plan = plans[tier]
            label = f"{consumer}:[{query.low},{query.high}]@{snapshot.window_id}"
            charge_epsilons.append(plan.epsilon_prime)
            charge_labels.append(label)
            journal_records.append(dict(
                kind="release",
                consumer=consumer,
                dataset=self.dataset,
                low=query.low,
                high=query.high,
                alpha=qspec.alpha,
                delta=qspec.delta,
                epsilon_prime=plan.epsilon_prime,
                price=prices[tier],
                store_version=snapshot.store_version,
                label=label,
            ))
            sales.append(dict(
                consumer=consumer,
                dataset=self.dataset,
                alpha=qspec.alpha,
                delta=qspec.delta,
                price=prices[tier],
                epsilon_prime=plan.epsilon_prime,
            ))
        # Last pre-commit checkpoint before the journal/charge sequence.
        check_deadline("streaming.journal")
        with self._timer("streaming.charge_s"):
            self._journal_trades(journal_records)
            if self.window_log is not None:
                for epsilon, label in zip(charge_epsilons, charge_labels):
                    self.window_log.append_charge(
                        self.dataset, live, epsilon, label
                    )
            for epsilon in charge_epsilons:
                self.policy.settle(consumer, epsilon)
            self.accountant.charge_many(
                self.dataset, charge_epsilons, charge_labels
            )
            for epsilon, label in zip(charge_epsilons, charge_labels):
                self.epoch_accountant.charge_window(
                    self.dataset, live, epsilon, label
                )
            txns = self.ledger.record_many(sales)
        self._emit("streaming.answers", len(queries))
        self._emit("streaming.epsilon_spent", sum(charge_epsilons))
        if self.telemetry is not None:
            self.telemetry.observe("streaming.batch_width", len(queries))

        answers: "List[PrivateAnswer]" = []
        for i, (query, qspec) in enumerate(zip(queries, specs)):
            tier = (qspec.alpha, qspec.delta)
            answers.append(PrivateAnswer(
                value=float(released[i]),
                raw_value=float(raw_values[i]),
                sample_estimate=float(estimates[i]),
                query=query,
                spec=qspec,
                plan=plans[tier],
                price=prices[tier],
                consumer=consumer,
                transaction_id=txns[i].transaction_id,
            ))
        return answers
