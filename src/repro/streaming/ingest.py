"""Continuous ingestion: streaming devices and per-shard epoch ingestors.

Arrival path: the runtime routes timestamped records to a shard, the
shard's :class:`ShardIngestor` routes them round-robin to its
:class:`StreamDevice` buffers, and on every epoch roll each device seals
its buffer -- Bernoulli-samples it at the coordinator's shared epoch rate
(ranks local to the epoch, exactly like a paper node) and ships a
:class:`~repro.iot.messages.StreamReport` over the shard's metered
:class:`~repro.iot.network.Network` channel.  The ingestor folds the
reports into one :class:`~repro.streaming.window.EpochSummary`, journals
it to the :class:`~repro.streaming.journal.WindowLog` **before** touching
the window ring (write-ahead, the streaming analogue of RL006), and only
then applies it.

Late or out-of-order batches are rejected at the edge
(:class:`~repro.errors.StaleEpochError`): sealed epochs are immutable and
already journaled, so admitting stragglers would break both the
estimator's shared-rate invariant and bit-exact recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.streams import epoch_of
from repro.errors import IngestorCrashError, StaleEpochError
from repro.estimators.base import NodeData, NodeSample
from repro.iot.messages import StreamReport
from repro.iot.network import Network
from repro.iot.topology import BASE_STATION_ID
from repro.streaming.journal import WindowLog
from repro.streaming.window import EpochSummary, WindowSummary

__all__ = ["StreamDevice", "ShardIngestor"]


@dataclass
class StreamDevice:
    """A device that buffers arriving readings until its epoch is sealed.

    Unlike the one-shot :class:`~repro.iot.device.SmartDevice` (fixed
    local dataset, re-sampled on demand), a streaming device's local data
    is the *open epoch's* arrivals only: each seal drains the buffer, so
    device memory is bounded by one epoch's arrivals.
    """

    node_id: int
    rng: np.random.Generator
    _pending: List[float] = field(default_factory=list)

    @property
    def pending_count(self) -> int:
        """Readings buffered for the open epoch."""
        return len(self._pending)

    def absorb(self, values: "Sequence[float]") -> None:
        """Buffer arrivals for the open epoch."""
        self._pending.extend(float(v) for v in values)

    def seal(self, epoch: int, rate: float) -> StreamReport:
        """Seal the open epoch: sample the buffer and drain it.

        Ranks are local to the epoch (the buffer is ranked stably
        ascending, like any paper node), so sealed epochs never re-rank.
        The buffer is drained even when empty -- an empty epoch ships an
        empty report so the coordinator can account ``n_e = 0``.
        """
        node = NodeData(
            node_id=self.node_id,
            values=np.asarray(self._pending, dtype=np.float64),
        )
        self._pending.clear()
        sample = node.sample(rate, self.rng)
        return StreamReport(
            sender=self.node_id,
            receiver=BASE_STATION_ID,
            values=tuple(float(v) for v in sample.values),
            ranks=tuple(int(r) for r in sample.ranks),
            node_size=sample.node_size,
            p=rate,
            epoch=epoch,
        )


@dataclass
class ShardIngestor:
    """One shard's ingestion runtime: device buffers + the window ring.

    Parameters
    ----------
    shard_id:
        Global shard index (also the window-log partition key).
    devices:
        This shard's streaming devices (globally unique node ids).
    window_epochs:
        Ring size ``W``; rolls evict epochs that leave the window.
    epoch_length, origin:
        The half-open epoch grid: epoch ``e`` covers
        ``[origin + e·L, origin + (e+1)·L)``.
    network:
        Metered transport for seal-time :class:`StreamReport` shipments
        (``None`` skips metering; samples flow regardless).
    log:
        The shared :class:`WindowLog`; every seal journals its roll entry
        *before* the ring mutates.
    """

    shard_id: int
    devices: List[StreamDevice]
    window_epochs: int
    epoch_length: float = 1.0
    origin: float = 0.0
    network: Optional[Network] = None
    log: Optional[WindowLog] = None

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a shard needs at least one device")
        if self.epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        self._window = WindowSummary(window_epochs=self.window_epochs)
        self._open_epoch = 0
        self._arrivals = 0  # deterministic round-robin routing cursor

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def open_epoch(self) -> int:
        """The epoch currently accepting arrivals."""
        return self._open_epoch

    @property
    def window(self) -> WindowSummary:
        return self._window

    @property
    def pending_count(self) -> int:
        """Open-epoch arrivals buffered across this shard's devices."""
        return sum(d.pending_count for d in self.devices)

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(d.node_id for d in self.devices)

    # ------------------------------------------------------------------
    # arrival side
    # ------------------------------------------------------------------
    def ingest(
        self,
        values: "Sequence[float]",
        timestamps: "Sequence[float]",
    ) -> int:
        """Buffer one timestamped batch into the open epoch.

        Every record must fall inside the open epoch's half-open interval:
        records from already-sealed epochs are *late* and rejected,
        records from future epochs are *out of order* (the roll schedule
        has not opened their epoch yet) and rejected too.  Rejection is
        atomic -- a bad batch buffers nothing.  Returns records accepted.
        """
        values = np.asarray(values, dtype=np.float64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if len(values) != len(timestamps):
            raise ValueError("values and timestamps must be parallel")
        if len(values) == 0:
            return 0
        first = epoch_of(float(np.min(timestamps)), self.epoch_length, self.origin)
        last = epoch_of(float(np.max(timestamps)), self.epoch_length, self.origin)
        if first < self._open_epoch:
            raise StaleEpochError(
                f"shard {self.shard_id}: batch carries records for sealed "
                f"epoch {first} (open epoch is {self._open_epoch}); late "
                "data is rejected at the edge",
                epoch=first,
                open_epoch=self._open_epoch,
            )
        if last > self._open_epoch:
            raise StaleEpochError(
                f"shard {self.shard_id}: batch carries records for future "
                f"epoch {last} (open epoch is {self._open_epoch}); roll the "
                "window before shipping the next epoch",
                epoch=last,
                open_epoch=self._open_epoch,
            )
        k = len(self.devices)
        for offset, value in enumerate(values):
            device = self.devices[(self._arrivals + offset) % k]
            device.absorb([float(value)])
        self._arrivals += len(values)
        return len(values)

    # ------------------------------------------------------------------
    # roll side
    # ------------------------------------------------------------------
    def seal(
        self,
        rate: float,
        crash_after_journal: bool = False,
    ) -> EpochSummary:
        """Seal the open epoch at the coordinator's shared ``rate``.

        Every device samples and ships its buffer; the sealed
        :class:`EpochSummary` is journaled to the window log **before**
        the ring mutates, so a crash between journal and apply (the
        ``crash_after_journal`` chaos hook) loses nothing -- recovery
        replays the log and lands on the identical ring state.  Returns
        the sealed summary and advances the open epoch.
        """
        epoch = self._open_epoch
        record_count = 0
        samples: "List[NodeSample]" = []
        for device in self.devices:
            report = device.seal(epoch, rate)
            if self.network is not None:
                self.network.send(report)
            record_count += report.node_size
            if report.node_size > 0:
                samples.append(
                    NodeSample(
                        node_id=report.sender,
                        values=np.asarray(report.values, dtype=np.float64),
                        ranks=np.asarray(report.ranks, dtype=np.int64),
                        node_size=report.node_size,
                        p=report.p,
                    )
                )
        summary = EpochSummary(
            epoch=epoch,
            samples=tuple(sorted(samples, key=lambda s: s.node_id)),
            record_count=record_count,
            rate=rate if record_count > 0 else 0.0,
        )
        if self.log is not None:
            self.log.append_roll(self.shard_id, summary)
        if crash_after_journal:
            raise IngestorCrashError(
                f"shard {self.shard_id}: simulated crash sealing epoch "
                f"{epoch} (journaled, not applied)"
            )
        self._window.add(summary)
        self._open_epoch = epoch + 1
        return summary

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def restore_window(self, window: WindowSummary) -> None:
        """Adopt a ring rebuilt from the window log (crash recovery).

        The open epoch resumes after the newest recovered epoch; device
        buffers restart empty (in-flight arrivals of the open epoch die
        with the process -- the log only guarantees *sealed* state).
        """
        if window.window_epochs != self.window_epochs:
            raise ValueError(
                f"recovered ring is {window.window_epochs} epochs wide, "
                f"ingestor expects {self.window_epochs}"
            )
        self._window = window
        latest = window.latest_epoch
        self._open_epoch = 0 if latest is None else latest + 1
        for device in self.devices:
            device._pending.clear()
