"""The streaming runtime: shard assembly, coordinated rolls, recovery.

:func:`build_streaming_cluster` stands up the full continuous pipeline --
per-shard :class:`~repro.streaming.ingest.ShardIngestor` fleets pushing
over metered :class:`~repro.iot.network.Network` channels, one shared
:class:`~repro.streaming.journal.WindowLog`, the merged-window
:class:`~repro.streaming.broker.StreamingStation`, and the answering
:class:`~repro.streaming.broker.StreamingBroker` -- under the same
deterministic seeding discipline as :func:`repro.cluster.build_cluster`
(shard-strided channel seeds, per-device rng ``seed·100003 + node_id``),
so a seeded run is bit-reproducible end to end.

The :class:`StreamingCluster` coordinates epoch rolls: it computes **one**
shared Bernoulli rate per epoch (calibrated with the same planner headroom
convention as :class:`~repro.core.continuous.ContinuousMonitor` -- half
the floor tolerance, half the residual confidence -- so window plans keep
ε-optimization slack), seals every shard at that rate, folds the shard
summaries into the station (which push-invalidates the serving cache),
expires departed epoch budgets, and publishes window gauges.

Crash story: a shard that dies mid-roll (the
:class:`~repro.errors.IngestorCrashError` chaos hook) leaves the window
log as the source of truth -- its sealed epoch is journaled even though
the ring never saw it.  :meth:`StreamingCluster.recover` replays the log
into bit-exact per-shard rings, completes the torn roll (unsealed shards
seal empty: their buffered arrivals died with the process, and the log
only guarantees *sealed* state), rebuilds the merged station, and replays
``charge`` entries into a fresh epoch accountant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.query import AccuracySpec
from repro.datasets.streams import epoch_of
from repro.errors import StaleEpochError, StreamingError
from repro.estimators.calibration import required_sampling_rate
from repro.iot.channel import Channel
from repro.iot.network import Network
from repro.iot.topology import FlatTopology
from repro.pricing.functions import InverseVariancePricing, PricingFunction
from repro.pricing.variance_model import VarianceModel
from repro.serving.telemetry import MetricsRegistry
from repro.streaming.accounting import EpochBudgetAccountant
from repro.streaming.broker import StreamingBroker, StreamingStation, WindowSnapshot
from repro.streaming.ingest import ShardIngestor, StreamDevice
from repro.streaming.journal import WindowLog, rebuild_window_state
from repro.streaming.window import (
    EpochSummary,
    WindowSummary,
    merge_epoch_summaries,
)

__all__ = ["StreamingConfig", "StreamingCluster", "build_streaming_cluster"]

#: Seed stride between shards -- same constant as the one-shot cluster, so
#: shard streams never collide for any realistic shard count.
_SHARD_STRIDE = 1_000_003


@dataclass(frozen=True)
class StreamingConfig:
    """Knobs for :func:`build_streaming_cluster`.

    ``floor`` is the accuracy product epoch rates are provisioned for;
    the broker's admission bands pin every sellable tier at or above it.
    ``nominal_records`` calibrates the price sheet (prices are a stable
    market artifact; the live window's ``n`` drifts every roll).
    """

    shards: int = 4
    devices_per_shard: int = 8
    window_epochs: int = 4
    epoch_length: float = 1.0
    floor: AccuracySpec = field(default_factory=lambda: AccuracySpec(0.15, 0.5))
    dataset: str = "stream"
    seed: int = 7
    loss_probability: float = 0.0
    base_price: float = 10.0
    nominal_records: int = 4096
    epoch_capacity: float = float("inf")
    grid_points: int = 512

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.devices_per_shard <= 0:
            raise ValueError("devices_per_shard must be positive")
        if self.window_epochs <= 0:
            raise ValueError("window_epochs must be positive")
        if self.epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        if self.nominal_records <= 0:
            raise ValueError("nominal_records must be positive")


class StreamingCluster:
    """The assembled continuous pipeline plus its roll coordinator."""

    def __init__(
        self,
        config: StreamingConfig,
        ingestors: "List[ShardIngestor]",
        broker: StreamingBroker,
        window_log: WindowLog,
        telemetry: MetricsRegistry,
    ) -> None:
        self.config = config
        self.ingestors = ingestors
        self.broker = broker
        self.window_log = window_log
        self.telemetry = telemetry
        self._arrivals = 0  # global round-robin shard routing cursor

    # ------------------------------------------------------------------
    # convenience views
    # ------------------------------------------------------------------
    @property
    def station(self) -> StreamingStation:
        return self.broker.station

    @property
    def device_count(self) -> int:
        return sum(len(ingestor.devices) for ingestor in self.ingestors)

    @property
    def open_epoch(self) -> int:
        """The epoch currently accepting arrivals (min across shards)."""
        return min(ingestor.open_epoch for ingestor in self.ingestors)

    @property
    def pending_count(self) -> int:
        return sum(ingestor.pending_count for ingestor in self.ingestors)

    # ------------------------------------------------------------------
    # arrival side
    # ------------------------------------------------------------------
    def ingest(
        self,
        values: "Sequence[float]",
        timestamps: "Sequence[float]",
    ) -> int:
        """Route one timestamped batch round-robin across the shards.

        Deterministic: record ``j`` of the stream always lands on shard
        ``j mod shards`` regardless of batch boundaries.  Shard-level
        epoch validation applies (late/future batches raise
        :class:`~repro.errors.StaleEpochError` before anything buffers).
        """
        values = np.asarray(values, dtype=np.float64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if len(values) != len(timestamps):
            raise ValueError("values and timestamps must be parallel")
        if len(values) == 0:
            return 0
        shards = len(self.ingestors)
        offsets = (self._arrivals + np.arange(len(values))) % shards
        # Pre-validate the whole batch against every shard's open epoch so
        # rejection is atomic across shards, not just within one: without
        # this, shard 0 could buffer its slice before shard 1 rejects.
        first = epoch_of(
            float(np.min(timestamps)),
            self.config.epoch_length,
            self.ingestors[0].origin,
        )
        last = epoch_of(
            float(np.max(timestamps)),
            self.config.epoch_length,
            self.ingestors[0].origin,
        )
        for ingestor in self.ingestors:
            if first < ingestor.open_epoch:
                raise StaleEpochError(
                    f"batch carries records for sealed epoch {first} (shard "
                    f"{ingestor.shard_id} is open at {ingestor.open_epoch}); "
                    "late data is rejected at the edge",
                    epoch=first,
                    open_epoch=ingestor.open_epoch,
                )
            if last > ingestor.open_epoch:
                raise StaleEpochError(
                    f"batch carries records for future epoch {last} (shard "
                    f"{ingestor.shard_id} is open at {ingestor.open_epoch}); "
                    "roll the window before shipping the next epoch",
                    epoch=last,
                    open_epoch=ingestor.open_epoch,
                )
        accepted = 0
        for shard_id, ingestor in enumerate(self.ingestors):
            mask = offsets == shard_id
            if not np.any(mask):
                continue
            accepted += ingestor.ingest(values[mask], timestamps[mask])
        self._arrivals += len(values)
        return accepted

    # ------------------------------------------------------------------
    # roll side
    # ------------------------------------------------------------------
    def epoch_rate(self) -> float:
        """The coordinator's shared Bernoulli rate for the open epoch.

        Calibrated so the *post-roll* window supports the floor product
        with planner headroom (half the tolerance, half the residual
        confidence -- the :class:`~repro.core.continuous.ContinuousMonitor`
        convention): ``k_eff`` counts surviving window samples plus every
        device (each may contribute one non-empty sample this epoch), and
        ``n`` counts surviving records plus the pending arrivals.
        """
        snapshot = self.station.snapshot()
        window = self.config.window_epochs
        open_epoch = self.open_epoch
        surviving = [
            s for s in snapshot.epochs if s.epoch > open_epoch - window
        ]
        k_eff = sum(s.node_count for s in surviving) + self.device_count
        n_after = sum(s.record_count for s in surviving) + self.pending_count
        if n_after == 0:
            return 0.0
        floor = self.config.floor
        return required_sampling_rate(
            floor.alpha * 0.5,
            floor.delta + (1.0 - floor.delta) * 0.5,
            k_eff,
            n_after,
        )

    def roll(self, crash_shard: Optional[int] = None) -> WindowSnapshot:
        """Seal the open epoch on every shard and commit the merged roll.

        The commit bumps the station's ``store_version`` and fires its
        commit listeners -- the push that invalidates every cached answer
        keyed on the previous window.  Departed epoch budgets are expired
        (reclaimed) in the same step, and window gauges are refreshed.

        ``crash_shard`` is the chaos hook: that shard journals its seal
        and then dies (:class:`~repro.errors.IngestorCrashError`
        propagates; call :meth:`recover` to resume).
        """
        started = time.perf_counter()
        rate = self.epoch_rate()
        summaries: "List[EpochSummary]" = []
        for ingestor in self.ingestors:
            summaries.append(
                ingestor.seal(
                    rate,
                    crash_after_journal=(ingestor.shard_id == crash_shard),
                )
            )
        snapshot = self.station.commit_roll(summaries)
        floor_epoch = snapshot.live_epochs[0]
        reclaimed = self.broker.epoch_accountant.expire_before(
            self.config.dataset, floor_epoch
        )
        elapsed = time.perf_counter() - started
        self.telemetry.inc("streaming.rolls")
        self.telemetry.set_gauge(
            "streaming.window_occupancy", float(len(snapshot.epochs))
        )
        self.telemetry.set_gauge(
            "streaming.bucket_count", float(snapshot.node_count)
        )
        self.telemetry.set_gauge(
            "streaming.window_records", float(snapshot.record_count)
        )
        self.telemetry.set_gauge("streaming.roll_latency_s", elapsed)
        self.telemetry.observe("streaming.roll_s", elapsed)
        if reclaimed:
            self.telemetry.inc("streaming.epsilon_reclaimed", reclaimed)
        return snapshot

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> WindowSnapshot:
        """Rebuild every layer of window state from the window log.

        1. Replay ``roll`` entries into bit-exact per-shard rings (the
           crashed shard's sealed epoch is journaled, so it recovers even
           though its in-memory ring never saw it).
        2. Complete any torn roll: shards that never sealed the torn
           epoch seal it *empty* at the journaled rate -- their buffered
           arrivals died with the process, and the log only guarantees
           sealed state.
        3. Re-merge the rings into the station (one store-version bump
           per recovered epoch, so version = epochs sealed, exactly as a
           crash-free run would have produced).
        4. Replay ``charge`` entries into a fresh epoch accountant, then
           expire everything below the recovered window floor.
        """
        windows, charges = rebuild_window_state(
            self.window_log.entries(), self.config.window_epochs
        )
        sealed_epochs = sorted({
            summary.epoch
            for window in windows.values()
            for summary in window.epochs()
        })
        if not sealed_epochs:
            raise StreamingError("window log holds no rolls to recover from")
        latest = sealed_epochs[-1]
        # Rates by epoch, from any journaled summary of that epoch.
        rates: "Dict[int, float]" = {}
        for window in windows.values():
            for summary in window.epochs():
                rates.setdefault(summary.epoch, summary.rate)

        # 1 + 2: adopt recovered rings, then seal what the crash tore.
        for ingestor in self.ingestors:
            recovered = windows.get(
                ingestor.shard_id,
                WindowSummary(window_epochs=self.config.window_epochs),
            )
            ingestor.restore_window(recovered)
            while ingestor.open_epoch <= latest:
                ingestor.seal(rates.get(ingestor.open_epoch, 0.0))

        # 3: merged station state, one version per sealed epoch.
        merged_ring = WindowSummary(window_epochs=self.config.window_epochs)
        for epoch in range(
            max(0, latest - self.config.window_epochs + 1), latest + 1
        ):
            merged: "Optional[EpochSummary]" = None
            for ingestor in self.ingestors:
                for summary in ingestor.window.epochs():
                    if summary.epoch != epoch:
                        continue
                    merged = (
                        summary
                        if merged is None
                        else merge_epoch_summaries(merged, summary)
                    )
            if merged is not None:
                merged_ring.add(merged)
        self.station.restore(merged_ring.epochs(), store_version=latest + 1)

        # 4: epoch budgets -- replay, then expire below the live floor.
        accountant = EpochBudgetAccountant(
            capacity=self.broker.epoch_accountant.capacity
        )
        for entry in charges:
            accountant.charge_window(
                entry.data["dataset"],
                [int(e) for e in entry.data["epochs"]],
                float(entry.data["epsilon"]),
                str(entry.data["label"]),
            )
        floor_epoch = latest - self.config.window_epochs + 1
        accountant.expire_before(self.config.dataset, floor_epoch)
        self.broker.epoch_accountant = accountant

        snapshot = self.station.snapshot()
        self.telemetry.inc("streaming.recoveries")
        self.telemetry.set_gauge(
            "streaming.window_occupancy", float(len(snapshot.epochs))
        )
        self.telemetry.set_gauge(
            "streaming.bucket_count", float(snapshot.node_count)
        )
        return snapshot


def build_streaming_cluster(
    config: "Optional[StreamingConfig]" = None,
    pricing: "Optional[PricingFunction]" = None,
    window_log: "Optional[WindowLog]" = None,
    telemetry: "Optional[MetricsRegistry]" = None,
) -> StreamingCluster:
    """Assemble a seeded streaming cluster from one config.

    Seeding mirrors the one-shot cluster: shard ``s``'s channel rng is
    ``default_rng(seed + s·stride)``, device ``i``'s sampling rng is
    ``default_rng(seed·100003 + i)``, and the broker's noise rng is
    ``default_rng(seed + 1 + shards·stride)`` -- all streams disjoint, so
    two same-config builds replay bit-identically.
    """
    config = config or StreamingConfig()
    window_log = window_log if window_log is not None else WindowLog()
    telemetry = telemetry if telemetry is not None else MetricsRegistry()

    ingestors: "List[ShardIngestor]" = []
    for shard_id in range(config.shards):
        device_ids = [
            shard_id * config.devices_per_shard + j + 1
            for j in range(config.devices_per_shard)
        ]
        devices = [
            StreamDevice(
                node_id=node_id,
                rng=np.random.default_rng(config.seed * 100_003 + node_id),
            )
            for node_id in device_ids
        ]
        network = Network(
            topology=FlatTopology(device_ids=device_ids),
            channel=Channel(
                loss_probability=config.loss_probability,
                rng=np.random.default_rng(
                    config.seed + shard_id * _SHARD_STRIDE
                ),
            ),
        )
        ingestors.append(
            ShardIngestor(
                shard_id=shard_id,
                devices=devices,
                window_epochs=config.window_epochs,
                epoch_length=config.epoch_length,
                network=network,
                log=window_log,
            )
        )

    station = StreamingStation(window_epochs=config.window_epochs)
    broker = StreamingBroker(
        station=station,
        pricing=pricing
        or InverseVariancePricing(
            VarianceModel(n=config.nominal_records),
            base_price=config.base_price,
        ),
        floor=config.floor,
        dataset=config.dataset,
        epoch_accountant=EpochBudgetAccountant(capacity=config.epoch_capacity),
        rng=np.random.default_rng(
            config.seed + 1 + config.shards * _SHARD_STRIDE
        ),  # repro-lint: disable=RL002
        planner_grid_points=config.grid_points,
        telemetry=telemetry,
        window_log=window_log,
    )
    return StreamingCluster(
        config=config,
        ingestors=ingestors,
        broker=broker,
        window_log=window_log,
        telemetry=telemetry,
    )
