"""The window log: a write-ahead journal for streaming window state.

The :class:`~repro.durability.journal.TradeJournal` makes *trades*
recoverable; it says nothing about the window ring an ingestor crash can
tear mid-roll.  The :class:`WindowLog` closes that gap with the same
write-ahead discipline: every epoch seal appends a ``roll`` entry --
carrying the sealed epoch's **full sample payload** -- before the ring
mutates, and every window release appends a ``charge`` entry (per-epoch ε
spend) before the epoch accountant mutates.  Replaying the log therefore
rebuilds both the per-shard window rings and the per-epoch budget ledgers
bit-exactly, even when the crash landed between the journal append and the
in-memory apply (the chaos drill's kill point).

Entries are JSONL, one per line, flushed per append, torn-tail tolerant on
load -- the exact durability tier of the trade journal.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import JournalError
from repro.streaming.window import EpochSummary, WindowSummary

__all__ = [
    "WindowLog",
    "WindowLogEntry",
    "rebuild_window_state",
    "STREAM_LOG_FORMAT",
    "STREAM_LOG_VERSION",
]

STREAM_LOG_FORMAT = "repro.stream-journal"
STREAM_LOG_VERSION = 1

#: ``roll`` seals one shard's epoch (full sample payload); ``charge``
#: records one window release's per-epoch ε spend.
LOG_KINDS = ("roll", "charge")


class WindowLogEntry:
    """One logged streaming event; ``seq`` is assigned monotonically from 1."""

    __slots__ = ("seq", "kind", "data")

    def __init__(self, seq: int, kind: str, data: Mapping[str, Any]) -> None:
        if kind not in LOG_KINDS:
            raise JournalError(
                f"unknown window-log entry kind {kind!r}; "
                f"expected one of {LOG_KINDS}"
            )
        if seq < 1:
            raise JournalError("seq must be >= 1")
        self.seq = seq
        self.kind = kind
        self.data = dict(data)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "format": STREAM_LOG_FORMAT,
            "version": STREAM_LOG_VERSION,
            "seq": self.seq,
            "kind": self.kind,
            "data": self.data,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WindowLogEntry":
        if payload.get("format") != STREAM_LOG_FORMAT:
            raise JournalError(
                f"not a stream-journal payload: format={payload.get('format')!r}"
            )
        if payload.get("version") != STREAM_LOG_VERSION:
            raise JournalError(
                f"unsupported stream-journal version "
                f"{payload.get('version')!r} (reader understands "
                f"{STREAM_LOG_VERSION})"
            )
        return cls(
            seq=int(payload["seq"]),
            kind=str(payload["kind"]),
            data=dict(payload["data"]),
        )


class WindowLog:
    """Append-only, thread-safe write-ahead log of window rolls and charges.

    In-memory by default; pass ``path`` to mirror appends to a JSONL file.
    :meth:`load` re-opens a file after a crash, tolerating a torn final
    line (the entry was never applied, by write-ahead ordering).
    """

    def __init__(self, path: "Optional[Union[str, Path]]" = None) -> None:
        self._lock = threading.Lock()
        self._entries: "List[WindowLogEntry]" = []  # guarded-by: _lock
        self._next_seq = 1  # guarded-by: _lock
        self._path: "Optional[Path]" = Path(path) if path is not None else None
        self._file: "Optional[IO[str]]" = None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self._path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, kind: str, **data: Any) -> WindowLogEntry:
        """Log one event; assigns the next ``seq`` and returns the entry."""
        with self._lock:
            entry = WindowLogEntry(self._next_seq, kind, data)
            self._next_seq += 1
            self._entries.append(entry)
            if self._file is not None:
                self._file.write(
                    json.dumps(entry.to_payload(), sort_keys=True) + "\n"
                )
                self._file.flush()
            return entry

    def append_roll(self, shard_id: int, summary: EpochSummary) -> WindowLogEntry:
        """Journal one shard's sealed epoch, pre-apply (write-ahead)."""
        return self.append(
            "roll", shard_id=int(shard_id), **summary.to_payload()
        )

    def append_charge(
        self,
        dataset: str,
        epochs: "List[int]",
        epsilon: float,
        label: str,
    ) -> WindowLogEntry:
        """Journal one window release's per-epoch ε spend, pre-charge."""
        return self.append(
            "charge",
            dataset=dataset,
            epochs=[int(e) for e in epochs],
            epsilon=float(epsilon),
            label=label,
        )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def entries(self) -> "Tuple[WindowLogEntry, ...]":
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def path(self) -> "Optional[Path]":
        return self._path

    def checksum(self) -> str:
        """SHA-256 over the canonical JSON of every entry (determinism probe)."""
        digest = hashlib.sha256()
        for entry in self.entries():
            digest.update(
                json.dumps(entry.to_payload(), sort_keys=True).encode("utf-8")
            )
        return digest.hexdigest()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "WindowLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: "Union[str, Path]") -> "WindowLog":
        """Re-open a file-backed log after a crash (torn tail tolerated)."""
        source = Path(path)
        entries: "List[WindowLogEntry]" = []
        if source.exists():
            with source.open("r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
            for lineno, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    if lineno == len(lines):
                        # Torn tail: died mid-write; the event was never
                        # applied (write-ahead), so dropping it is safe.
                        break
                    raise JournalError(
                        f"{source}: corrupt stream-journal line {lineno}"
                    ) from None
                entries.append(WindowLogEntry.from_payload(payload))
        log = cls(path=source)
        with log._lock:
            log._entries.extend(entries)
            if entries:
                log._next_seq = entries[-1].seq + 1
        return log


def rebuild_window_state(
    entries: "Iterable[WindowLogEntry]",
    window_epochs: int,
) -> "Tuple[Dict[int, WindowSummary], List[WindowLogEntry]]":
    """Replay a window log into per-shard window rings plus charge entries.

    Returns ``(windows, charges)``: one rebuilt :class:`WindowSummary` per
    shard id seen in ``roll`` entries -- containing exactly the live
    epochs after every logged roll, ring eviction included -- and the
    ``charge`` entries in log order (the caller replays those into its
    :class:`~repro.streaming.accounting.EpochBudgetAccountant`).  Replay
    is deterministic, so two logs with equal checksums rebuild bit-equal
    window state.
    """
    windows: "Dict[int, WindowSummary]" = {}
    charges: "List[WindowLogEntry]" = []
    previous = 0
    for entry in entries:
        if entry.seq <= previous:
            raise JournalError(
                f"window log replay out of order: seq {entry.seq} "
                f"after {previous}"
            )
        previous = entry.seq
        if entry.kind == "charge":
            charges.append(entry)
            continue
        data = dict(entry.data)
        shard_id = int(data.pop("shard_id"))
        summary = EpochSummary.from_payload(data)
        windows.setdefault(
            shard_id, WindowSummary(window_epochs=window_epochs)
        ).add(summary)
    return windows, charges
