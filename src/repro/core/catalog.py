"""Multi-dataset catalog: one marketplace front door over many brokers.

The CityPulse feed carries five air-quality indexes; a real data platform
sells all of them.  :class:`DataCatalog` manages one
:class:`~repro.core.service.PrivateRangeCountingService` per dataset key,
routes queries by key, and aggregates the platform-level views an
operator needs: total revenue, privacy spend per dataset, and combined
network cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.query import PrivateAnswer
from repro.core.service import PrivateRangeCountingService
from repro.datasets.citypulse import CityPulseDataset
from repro.errors import ReproError

__all__ = ["DataCatalog", "UnknownDatasetError"]


class UnknownDatasetError(ReproError, KeyError):
    """A query referenced a dataset the catalog does not carry."""


@dataclass
class DataCatalog:
    """Keyed collection of trading services with platform-level views."""

    services: Dict[str, PrivateRangeCountingService] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_citypulse(
        cls,
        data: CityPulseDataset,
        k: int = 16,
        seed: int = 7,
        base_price: float = 1.0,
    ) -> "DataCatalog":
        """Build one service per air-quality index of a CityPulse dataset."""
        catalog = cls()
        for offset, index in enumerate(data.indexes):
            catalog.add(
                index,
                PrivateRangeCountingService.from_citypulse(
                    data, index, k=k, seed=seed + offset,
                    base_price=base_price,
                ),
            )
        return catalog

    def add(self, key: str, service: PrivateRangeCountingService) -> None:
        """Register a service under ``key``."""
        if key in self.services:
            raise ValueError(f"dataset {key!r} already in the catalog")
        self.services[key] = service

    def __contains__(self, key: str) -> bool:
        return key in self.services

    def __len__(self) -> int:
        return len(self.services)

    def keys(self) -> Tuple[str, ...]:
        """Dataset keys in insertion order."""
        return tuple(self.services)

    def service(self, key: str) -> PrivateRangeCountingService:
        """The service for ``key``; raises :class:`UnknownDatasetError`."""
        try:
            return self.services[key]
        except KeyError:
            raise UnknownDatasetError(
                f"dataset {key!r} not in catalog (carries {list(self.services)})"
            ) from None

    # ------------------------------------------------------------------
    # routed operations
    # ------------------------------------------------------------------
    def quote(self, key: str, alpha: float, delta: float) -> float:
        """Quote an ``(α, δ)`` product on one dataset."""
        return self.service(key).quote(alpha, delta)

    def answer(
        self,
        key: str,
        low: float,
        high: float,
        alpha: float,
        delta: float,
        consumer: str = "anonymous",
    ) -> PrivateAnswer:
        """Purchase one private range counting on dataset ``key``."""
        return self.service(key).answer(
            low, high, alpha=alpha, delta=delta, consumer=consumer
        )

    # ------------------------------------------------------------------
    # platform views
    # ------------------------------------------------------------------
    def total_revenue(self) -> float:
        """Revenue across every dataset's billing ledger."""
        return sum(
            s.broker.ledger.total_revenue() for s in self.services.values()
        )

    def privacy_spend(self) -> Dict[str, float]:
        """Cumulative ε′ per dataset key."""
        return {key: s.privacy_spent() for key, s in self.services.items()}

    def network_cost(self) -> Dict[str, int]:
        """Summed communication counters across all services."""
        totals = {"messages": 0, "wire_bytes": 0, "hop_bytes": 0,
                  "sample_pairs": 0}
        for service in self.services.values():
            for name, value in service.communication_report().items():
                totals[name] += value
        return totals

    def spend_of(self, consumer: str) -> float:
        """One consumer's spend across every dataset."""
        return sum(
            s.broker.ledger.spend_of(consumer)
            for s in self.services.values()
        )
