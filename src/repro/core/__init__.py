"""Core trading pipeline: queries, planning, broker, consumers, marketplace.

Extensions beyond the paper's one-shot setting live here too:
:mod:`repro.core.continuous` (standing queries over windowed arrival) and
:mod:`repro.core.audit` (consumer-side verification of purchased answers).
"""

from repro.core.audit import AuditFinding, AuditReport, audit_answer, audit_noise_scale
from repro.core.broker import DataBroker
from repro.core.catalog import DataCatalog, UnknownDatasetError
from repro.core.consumer import ArbitrageConsumer, ArbitrageOutcome, HonestConsumer
from repro.core.continuous import ContinuousMonitor, WindowRelease
from repro.core.histogram import (
    HistogramRelease,
    equal_width_edges,
    release_histogram,
)
from repro.core.planner import QueryPlanner
from repro.core.private_quantile import (
    PrivateQuantileRelease,
    release_quantile,
)
from repro.core.policy import BrokerPolicy, PolicyViolationError
from repro.core.query import AccuracySpec, PrivateAnswer, RangeQuery
from repro.core.reports import operations_report, price_sheet
from repro.core.service import PrivateRangeCountingService
from repro.core.trading import Marketplace, Settlement, Wallet

__all__ = [
    "AuditFinding",
    "AuditReport",
    "audit_answer",
    "audit_noise_scale",
    "DataBroker",
    "DataCatalog",
    "UnknownDatasetError",
    "PrivateQuantileRelease",
    "release_quantile",
    "ArbitrageConsumer",
    "ArbitrageOutcome",
    "HonestConsumer",
    "ContinuousMonitor",
    "HistogramRelease",
    "equal_width_edges",
    "release_histogram",
    "WindowRelease",
    "QueryPlanner",
    "BrokerPolicy",
    "PolicyViolationError",
    "AccuracySpec",
    "PrivateAnswer",
    "RangeQuery",
    "operations_report",
    "price_sheet",
    "PrivateRangeCountingService",
    "Marketplace",
    "Settlement",
    "Wallet",
]
