"""High-level facade: the whole trading stack behind one object.

:class:`PrivateRangeCountingService` assembles dataset partitioning, the
simulated IoT network, the base station, the broker, pricing and the
marketplace so that downstream users (and the examples/) get the paper's
end-to-end pipeline in a few lines:

>>> from repro import PrivateRangeCountingService
>>> from repro.datasets import generate_citypulse
>>> data = generate_citypulse()
>>> service = PrivateRangeCountingService.from_citypulse(data, "ozone", k=16)
>>> answer = service.answer(60.0, 100.0, alpha=0.1, delta=0.5)
>>> answer.value  # doctest: +SKIP
9214.3
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from repro.core.broker import DataBroker
from repro.core.query import AccuracySpec, PrivateAnswer, RangeQuery
from repro.core.trading import Marketplace
from repro.datasets.citypulse import CityPulseDataset
from repro.datasets.partition import partition_even
from repro.estimators.base import NodeData
from repro.estimators.exact import SortedColumn
from repro.iot.base_station import BaseStation
from repro.iot.channel import Channel
from repro.iot.device import SmartDevice
from repro.iot.network import Network
from repro.iot.topology import FlatTopology
from repro.pricing.functions import InverseVariancePricing, PricingFunction
from repro.pricing.variance_model import VarianceModel

if TYPE_CHECKING:  # pragma: no cover - types only, avoids an import cycle
    from repro.serving.admission import AdmissionController
    from repro.serving.answer_cache import AnswerCache
    from repro.serving.gateway import ServingConfig, ServingGateway
    from repro.serving.telemetry import MetricsRegistry

__all__ = ["PrivateRangeCountingService"]


@dataclass
class PrivateRangeCountingService:
    """End-to-end facade over network, broker, pricing and marketplace."""

    broker: DataBroker
    market: Marketplace
    truth: SortedColumn

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        k: int = 16,
        dataset: str = "default",
        seed: int = 7,
        base_price: float = 1.0,
        pricing: Optional[PricingFunction] = None,
        loss_probability: float = 0.0,
        initial_rate: Optional[float] = None,
        shards: int = 1,
        partition: str = "even",
        replicas: bool = True,
    ) -> "PrivateRangeCountingService":
        """Build the full stack over a raw value column.

        Values are partitioned evenly over ``k`` simulated devices on a
        flat topology; pricing defaults to the arbitrage-avoiding
        inverse-variance sheet at ``base_price``.  When ``initial_rate`` is
        given, one collection round runs immediately; otherwise the broker
        collects lazily on the first query.

        With ``shards > 1`` the fleet is federated across that many
        independent base stations behind a scatter-gather
        :class:`~repro.cluster.broker.ClusterBroker` (see
        :mod:`repro.cluster` and ``docs/CLUSTER.md``); ``partition``
        picks the device-data partition strategy and ``replicas``
        controls per-shard failover stations.  ``shards=1`` keeps the
        plain single-station broker (bit-identical to earlier releases).
        """
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot trade over an empty dataset")
        if shards > 1:
            if pricing is not None:
                raise ValueError(
                    "custom pricing is not supported with shards > 1; the "
                    "cluster calibrates per-shard and cluster-level sheets "
                    "itself"
                )
            from repro.cluster.broker import ClusterBroker

            cluster = ClusterBroker.from_values(
                values,
                k=k,
                shards=shards,
                dataset=dataset,
                seed=seed,
                base_price=base_price,
                loss_probability=loss_probability,
                partition=partition,
                replicas=replicas,
            )
            market = Marketplace(broker=cluster)
            service = cls(
                broker=cluster, market=market, truth=SortedColumn(values)
            )
            if initial_rate is not None:
                cluster.ensure_rate(initial_rate)
            return service
        shards = partition_even(values, k)
        topology = FlatTopology.with_devices(k)
        channel = Channel(
            loss_probability=loss_probability,
            rng=np.random.default_rng(seed),
        )
        network = Network(topology=topology, channel=channel)
        station = BaseStation(network=network)
        for node_id, shard in enumerate(shards, start=1):
            device = SmartDevice(
                node_id=node_id,
                data=NodeData(node_id=node_id, values=shard),
                rng=np.random.default_rng(seed * 100_003 + node_id),
            )
            station.register(device)
        if pricing is None:
            pricing = InverseVariancePricing(
                VarianceModel(n=len(values)), base_price=base_price
            )
        broker = DataBroker(
            base_station=station,
            pricing=pricing,
            dataset=dataset,
            rng=np.random.default_rng(seed + 1),
        )
        market = Marketplace(broker=broker)
        service = cls(broker=broker, market=market, truth=SortedColumn(values))
        if initial_rate is not None:
            station.collect(initial_rate)
        return service

    @classmethod
    def from_citypulse(
        cls,
        data: CityPulseDataset,
        index: str,
        k: int = 16,
        seed: int = 7,
        **kwargs,
    ) -> "PrivateRangeCountingService":
        """Build the stack over one air-quality index of a CityPulse dataset."""
        return cls.from_values(
            data.values(index), k=k, dataset=index, seed=seed, **kwargs
        )

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def station(self) -> BaseStation:
        """The underlying base station."""
        return self.broker.base_station

    @property
    def network(self) -> Network:
        """The simulated network (cost meter lives on ``network.meter``)."""
        return self.station.network

    @property
    def n(self) -> int:
        """Total record count served."""
        return self.station.n

    @property
    def k(self) -> int:
        """Device count."""
        return self.station.k

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def collect(self, p: float) -> None:
        """Run (or top up to) a collection round at rate ``p``."""
        self.station.ensure_rate(p)

    def quote(self, alpha: float, delta: float) -> float:
        """List price of an ``(α, δ)`` product."""
        return self.broker.quote(AccuracySpec(alpha=alpha, delta=delta))

    def answer(
        self,
        low: float,
        high: float,
        alpha: float,
        delta: float,
        consumer: str = "anonymous",
    ) -> PrivateAnswer:
        """Purchase one private ``(α, δ)``-range counting."""
        query = RangeQuery(low=low, high=high, dataset=self.broker.dataset)
        spec = AccuracySpec(alpha=alpha, delta=delta)
        return self.broker.answer(query, spec, consumer=consumer)

    def answer_many(
        self,
        ranges: Sequence["tuple[float, float]"],
        alpha: float,
        delta: float,
        consumer: str = "anonymous",
    ) -> "list[PrivateAnswer]":
        """Purchase many ``(α, δ)``-range countings in one vectorized pass.

        Semantically identical to calling :meth:`answer` per range (each
        release is separately noised and separately charged) but served
        through :meth:`~repro.core.broker.DataBroker.answer_batch`, which
        plans once, estimates all ranges vectorized, and draws all noise
        in one call.
        """
        spec = AccuracySpec(alpha=alpha, delta=delta)
        queries = [
            RangeQuery(low=low, high=high, dataset=self.broker.dataset)
            for low, high in ranges
        ]
        return self.broker.answer_batch(queries, spec, consumer=consumer)

    def serve(
        self,
        config: "Optional[ServingConfig]" = None,
        telemetry: "Optional[MetricsRegistry]" = None,
        cache: "Optional[AnswerCache]" = None,
        admission: "Optional[AdmissionController]" = None,
    ) -> "ServingGateway":
        """Build a concurrent serving gateway over this service's broker.

        The gateway queues and coalesces concurrent requests into the
        vectorized batch path, replays repeat queries from a
        privacy-aware cache at zero extra ε, and sheds load before any
        data is touched.  Use as a context manager (workers stop and the
        queue drains on exit)::

            with service.serve() as gateway:
                future = gateway.submit_range(60, 100, 0.1, 0.5, "web")
                print(future.result().value)

        See :mod:`repro.serving` and ``docs/SERVING.md``.
        """
        from repro.serving.gateway import ServingGateway

        return ServingGateway(
            broker=self.broker,
            config=config,
            telemetry=telemetry,
            cache=cache,
            admission=admission,
        )

    def histogram(
        self,
        low: float,
        high: float,
        buckets: int,
        epsilon: float,
        min_rate: float = 0.1,
    ) -> "HistogramRelease":
        """Release a private equal-width histogram over ``[low, high]``.

        Buckets are disjoint, so parallel composition makes the whole
        histogram cost one bucket's amplified budget ε′, which is charged
        to the privacy accountant.  ``min_rate`` bounds the sample density
        used (a collection/top-up runs if the stored sample is sparser).
        """
        from repro.core.histogram import equal_width_edges, release_histogram

        self.station.ensure_rate(min_rate)
        release = release_histogram(
            self.station.samples(),
            equal_width_edges(low, high, buckets),
            epsilon,
            self.broker.rng,
        )
        self.broker.accountant.charge(
            self.broker.dataset,
            release.epsilon_prime,
            label=f"histogram[{low},{high}]x{buckets}",
        )
        return release

    def private_quantile(
        self,
        q: float,
        epsilon: float,
        min_rate: float = 0.1,
        probes: int = 16,
    ) -> "PrivateQuantileRelease":
        """Release the ``q``-quantile privately (noisy binary search).

        The search domain is the observed value span of the stored truth
        column; the amplified cost ε′ is charged to the accountant.
        """
        from repro.core.private_quantile import release_quantile

        self.station.ensure_rate(min_rate)
        domain = (float(self.truth.values[0]), float(self.truth.values[-1]))
        if domain[0] == domain[1]:
            domain = (domain[0] - 0.5, domain[1] + 0.5)
        release = release_quantile(
            self.station.samples(), q, epsilon, domain, self.broker.rng,
            probes=probes,
        )
        self.broker.accountant.charge(
            self.broker.dataset,
            release.epsilon_prime,
            label=f"quantile[{q}]",
        )
        return release

    def estimate_quantile(self, q: float, min_rate: float = 0.1) -> float:
        """Broker-internal ``q``-quantile estimate from the stored sample.

        NOT a private release -- it returns a raw sampled value and is
        meant for the data owner's own calibration (e.g. choosing query
        bands); nothing is charged to the privacy accountant and nothing
        should be handed to consumers.
        """
        from repro.estimators.quantile import estimate_quantile

        self.station.ensure_rate(min_rate)
        return estimate_quantile(self.station.samples(), q)

    def true_count(self, low: float, high: float) -> int:
        """Ground-truth count (experiment harness only; never traded)."""
        return self.truth.count(low, high)

    def communication_report(self) -> Dict[str, int]:
        """Aggregate network-cost counters accumulated so far."""
        return self.network.meter.snapshot()

    def privacy_spent(self) -> float:
        """Cumulative ε′ charged against this service's dataset."""
        return self.broker.accountant.spent(self.broker.dataset)
