"""Query planning: when to reuse samples, when to top up, how to perturb.

The broker serves many queries from one stored sample ("one sample,
multiple queries").  For each request the planner decides:

1. whether the stored sample at rate ``p`` can support the target at all
   (the feasibility condition of optimization problem (3)), and if not,
   which higher rate a top-up collection should aim for;
2. given a feasible rate, the optimal ``(α', δ', ε)`` split via
   :func:`repro.privacy.optimizer.optimize_privacy_plan`.

The top-up target leaves explicit head-room: it calibrates Theorem 3.3 at
``α' = α·alpha_fraction`` and ``δ' = δ + (1 − δ)·delta_fraction`` so that
after collection the optimizer has a non-degenerate search interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasiblePlanError
from repro.estimators.calibration import (
    min_feasible_alpha,
    required_sampling_rate,
)
from repro.core.query import AccuracySpec
from repro.privacy.optimizer import (
    PrivacyPlan,
    SensitivityPolicy,
    optimize_privacy_plan,
)

__all__ = ["QueryPlanner"]


@dataclass
class QueryPlanner:
    """Plans private releases for a fixed fleet shape ``(k, n)``.

    Parameters
    ----------
    k, n:
        Node count and total record count of the dataset served.
    grid_points:
        Resolution of the optimizer's ``α'`` sweep.
    alpha_fraction, delta_fraction:
        Head-room policy for top-up targets (see module docstring).
    sensitivity_policy:
        How the optimizer bounds ``Δγ̂``.
    max_node_size:
        Required when the policy is ``WORST_CASE``.
    """

    k: int
    n: int
    grid_points: int = 512
    alpha_fraction: float = 0.5
    delta_fraction: float = 0.5
    sensitivity_policy: SensitivityPolicy = SensitivityPolicy.EXPECTED
    max_node_size: "int | None" = None

    def __post_init__(self) -> None:
        if self.k <= 0 or self.n <= 0:
            raise ValueError("k and n must be positive")
        if not 0.0 < self.alpha_fraction < 1.0:
            raise ValueError("alpha_fraction must be in (0, 1)")
        if not 0.0 < self.delta_fraction < 1.0:
            raise ValueError("delta_fraction must be in (0, 1)")

    def supports(self, spec: AccuracySpec, p: float) -> bool:
        """Whether a sample at rate ``p`` can satisfy ``spec`` at all.

        Feasibility of problem (3) requires some ``α' < α`` with
        ``δ'(α') > δ``, i.e. ``min_feasible_alpha(p, δ) < α``.
        """
        if not 0.0 < p <= 1.0:
            return False
        return min_feasible_alpha(p, self.k, self.n, spec.delta) < spec.alpha

    def required_rate(self, spec: AccuracySpec) -> float:
        """Sampling rate a top-up should target for ``spec``.

        Calibrates Theorem 3.3 at the head-room point
        ``(α·alpha_fraction, δ + (1 − δ)·delta_fraction)`` so the optimizer
        has room on both sides after collection.
        """
        alpha_target = spec.alpha * self.alpha_fraction
        delta_target = spec.delta + (1.0 - spec.delta) * self.delta_fraction
        return required_sampling_rate(alpha_target, delta_target, self.k, self.n)

    def plan(self, spec: AccuracySpec, p: float) -> PrivacyPlan:
        """Solve problem (3) for ``spec`` against a sample at rate ``p``.

        Raises
        ------
        InfeasiblePlanError
            When the sample cannot support the target; the exception's
            message includes the planner's recommended top-up rate.
        """
        if not self.supports(spec, p):
            rate = self.required_rate(spec)
            raise InfeasiblePlanError(
                f"sample rate p={p:.6g} cannot support (alpha={spec.alpha}, "
                f"delta={spec.delta}); top up to p>={rate:.6g}"
            )
        return optimize_privacy_plan(
            alpha=spec.alpha,
            delta=spec.delta,
            p=p,
            k=self.k,
            n=self.n,
            grid_points=self.grid_points,
            sensitivity_policy=self.sensitivity_policy,
            max_node_size=self.max_node_size,
        )
