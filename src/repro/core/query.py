"""Query and answer types of the trading pipeline.

A consumer request is a :class:`RangeQuery` (which interval, over which
dataset) plus an :class:`AccuracySpec` (the ``(α, δ)`` product tier).  The
broker's response is a :class:`PrivateAnswer` bundling the released value
with the full provenance a paying customer is owed: the privacy plan, the
accuracy guarantee, and the price charged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidAccuracyError, InvalidQueryError
from repro.privacy.optimizer import PrivacyPlan

__all__ = ["RangeQuery", "AccuracySpec", "PrivateAnswer"]


@dataclass(frozen=True)
class RangeQuery:
    """A range-counting request ``γ(low, high, ·)`` over one dataset.

    ``dataset`` is a free-form key (e.g. the air-quality index name) used
    for budget accounting and billing attribution.
    """

    low: float
    high: float
    dataset: str = "default"

    def __post_init__(self) -> None:
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise InvalidQueryError(
                f"range bounds must be finite, got [{self.low}, {self.high}]"
            )
        if self.low > self.high:
            raise InvalidQueryError(
                f"lower bound {self.low} exceeds upper bound {self.high}"
            )

    @property
    def width(self) -> float:
        """The queried interval width ``high − low``."""
        return self.high - self.low


@dataclass(frozen=True)
class AccuracySpec:
    """An ``(α, δ)`` accuracy product (Definition 2.2).

    ``alpha`` is the relative tolerance (error at most ``α·n``) and
    ``delta`` the confidence with which that tolerance holds.  Trading
    requires both to be interior: ``0 < α < 1`` and ``0 < δ < 1`` --
    boundary values correspond to exact counting or impossible guarantees
    and cannot be priced or planned.
    """

    alpha: float
    delta: float

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise InvalidAccuracyError(
                f"alpha must be in (0, 1), got {self.alpha}"
            )
        if not 0.0 < self.delta < 1.0:
            raise InvalidAccuracyError(
                f"delta must be in (0, 1), got {self.delta}"
            )

    def is_stricter_than(self, other: "AccuracySpec") -> bool:
        """Whether this spec dominates ``other`` in both parameters."""
        return self.alpha <= other.alpha and self.delta >= other.delta


@dataclass(frozen=True)
class PrivateAnswer:
    """The broker's released answer with full provenance.

    Attributes
    ----------
    value:
        The released (noisy, clamped to ``[0, n]``) count.
    raw_value:
        The noisy count before clamping -- what the mechanism actually
        produced; adversarial consumers average these.
    sample_estimate:
        The pre-noise sampling estimate (internal; exposed for tests and
        benches only -- a real broker would never release it).
    query, spec:
        What was asked.
    plan:
        The privacy plan used (ε, ε′, α′, δ′, noise scale).
    price:
        The amount charged.
    consumer:
        Name of the purchasing consumer.
    transaction_id:
        Billing-ledger id, when the sale was recorded.
    brownout_rung:
        Which brownout rung (if any) the serving gateway applied before
        dispatch: ``"none"``, ``"cache"``, ``"widen_alpha"``,
        ``"degrade_delta"``.  ``spec`` is always the contract actually
        delivered and billed; under a brownout it may be weaker than the
        one requested.
    requested_spec:
        The originally requested ``(α, δ)`` tier when a brownout rung
        served a weaker one; ``None`` when the answer matches the request.
    """

    value: float
    raw_value: float
    sample_estimate: float
    query: RangeQuery
    spec: AccuracySpec
    plan: PrivacyPlan
    price: float
    consumer: str = "anonymous"
    transaction_id: Optional[int] = None
    brownout_rung: str = "none"
    requested_spec: Optional[AccuracySpec] = None

    @property
    def epsilon_prime(self) -> float:
        """The final amplified privacy guarantee of this release."""
        return self.plan.epsilon_prime

    @property
    def total_variance_bound(self) -> float:
        """Upper bound on the release's variance: sampling + noise.

        The sampling phase contributes at most ``8k/p²`` (Theorem 3.2) and
        the Laplace noise exactly ``2b²``; the two are independent.
        """
        sampling = 8.0 * self.plan.k / (self.plan.p**2)
        return sampling + self.plan.noise_variance

    def chebyshev_interval(self, confidence: float) -> "tuple[float, float]":
        """A distribution-free confidence interval around the release.

        Chebyshev with the total variance bound: half-width
        ``√(Var / (1 − confidence))``, clipped to the legal count range
        ``[0, n]``.  Conservative by construction (A6 measures ~4–9× slack
        in the sampling term alone).
        """
        if not 0.0 <= confidence < 1.0:
            raise ValueError(f"confidence must be in [0, 1), got {confidence}")
        half_width = (self.total_variance_bound / (1.0 - confidence)) ** 0.5
        return (
            max(0.0, self.value - half_width),
            min(float(self.plan.n), self.value + half_width),
        )

    def within_tolerance(self, true_count: float) -> bool:
        """Whether the release met its advertised ``α·n`` tolerance."""
        return abs(self.value - true_count) <= self.spec.alpha * self.plan.n
