"""Consumers: honest buyers and the arbitrage adversary of Example 4.1.

:class:`HonestConsumer` buys products at list price.
:class:`ArbitrageConsumer` is the paper's adversary: instead of paying for
a low-variance ``(α, δ)`` product, it searches the price sheet for a
cheaper high-variance product, buys ``m`` copies, and averages the raw
answers (Formula (4)).  :meth:`ArbitrageConsumer.attempt` reports whether
the attack actually undercut the list price -- against an
arbitrage-avoiding sheet it never does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.broker import DataBroker
from repro.core.query import AccuracySpec, PrivateAnswer, RangeQuery
from repro.pricing.arbitrage import ArbitrageAttack, find_averaging_attack

__all__ = ["HonestConsumer", "ArbitrageConsumer", "ArbitrageOutcome"]


@dataclass
class HonestConsumer:
    """Buys exactly what it needs, at list price."""

    name: str
    purchases: List[PrivateAnswer] = field(default_factory=list)

    def buy(
        self, broker: DataBroker, query: RangeQuery, spec: AccuracySpec
    ) -> PrivateAnswer:
        """Purchase one product and keep the receipt."""
        answer = broker.answer(query, spec, consumer=self.name)
        self.purchases.append(answer)
        return answer

    @property
    def total_spent(self) -> float:
        """Sum of all purchase prices."""
        return sum(a.price for a in self.purchases)


@dataclass(frozen=True)
class ArbitrageOutcome:
    """Result of one attempted averaging attack.

    ``succeeded`` is True when the adversary obtained target-grade variance
    for strictly less money than the list price.  ``estimate`` is the
    averaged answer (None when no candidate attack existed and the
    adversary fell back to an honest purchase).
    """

    target_spec: AccuracySpec
    list_price: float
    paid: float
    estimate: float
    purchases: int
    attack: Optional[ArbitrageAttack]

    @property
    def succeeded(self) -> bool:
        """Whether money was saved relative to the list price."""
        return self.attack is not None and self.paid < self.list_price

    @property
    def savings(self) -> float:
        """List price minus actual spend (negative = attack overpaid)."""
        return self.list_price - self.paid


@dataclass
class ArbitrageConsumer:
    """The Example 4.1 adversary: buy cheap, average, undercut.

    Parameters
    ----------
    name:
        Billing identity (all attack purchases appear on the ledger).
    candidate_alphas, candidate_deltas:
        The menu of cheaper products the adversary considers; defaults to
        a coarse interior grid.
    max_copies:
        Largest number of repeat purchases the adversary tolerates.
    """

    name: str = "arbitrageur"
    candidate_alphas: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8)
    candidate_deltas: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8)
    max_copies: int = 128

    def plan_attack(
        self, broker: DataBroker, spec: AccuracySpec
    ) -> Optional[ArbitrageAttack]:
        """Search the broker's price sheet for a profitable averaging attack."""
        return find_averaging_attack(
            broker.pricing,
            target_alpha=spec.alpha,
            target_delta=spec.delta,
            candidate_alphas=self.candidate_alphas,
            candidate_deltas=self.candidate_deltas,
            max_copies=self.max_copies,
        )

    def attempt(
        self, broker: DataBroker, query: RangeQuery, spec: AccuracySpec
    ) -> ArbitrageOutcome:
        """Execute the best available attack, or buy honestly if none exists.

        When an attack exists the adversary buys ``m`` copies of the cheap
        product and averages their *raw* (unclamped) answers -- clamping
        would bias the average.  Otherwise it pays the list price once.
        """
        list_price = broker.quote(spec)
        attack = self.plan_attack(broker, spec)
        if attack is None:
            answer = broker.answer(query, spec, consumer=self.name)
            return ArbitrageOutcome(
                target_spec=spec,
                list_price=list_price,
                paid=answer.price,
                estimate=answer.value,
                purchases=1,
                attack=None,
            )
        cheap_spec = AccuracySpec(alpha=attack.purchase[0], delta=attack.purchase[1])
        answers = [
            broker.answer(query, cheap_spec, consumer=self.name)
            for _ in range(attack.copies)
        ]
        paid = sum(a.price for a in answers)
        averaged = sum(a.raw_value for a in answers) / len(answers)
        return ArbitrageOutcome(
            target_spec=spec,
            list_price=list_price,
            paid=paid,
            estimate=averaged,
            purchases=len(answers),
            attack=attack,
        )
