"""Private histogram release over disjoint value buckets.

Extension composing the paper's pieces: pollution dashboards rarely want a
single range count -- they want the whole banded distribution.  A
histogram over ``B`` disjoint buckets is ``B`` range counts whose
sensitivities do *not* add: a single record lands in exactly one bucket,
so the Laplace releases compose in **parallel** and the whole histogram
costs the budget of one bucket (``ε' = ln(1 + p(e^ε − 1))``, once).

Each bucket count is estimated with RankCounting from the shared sample
and perturbed with ``Lap((1/p)/ε)``; the release records both the noisy
counts and the single amplified guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.estimators.base import NodeSample
from repro.estimators.rank import RankCountingEstimator
from repro.privacy.amplification import amplified_epsilon
from repro.privacy.composition import parallel_composition
from repro.privacy.laplace import sample_laplace

__all__ = ["HistogramRelease", "release_histogram", "equal_width_edges"]


def equal_width_edges(low: float, high: float, buckets: int) -> Tuple[float, ...]:
    """``buckets + 1`` equally spaced edges spanning ``[low, high]``."""
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    if not low < high:
        raise ValueError("need low < high")
    return tuple(float(e) for e in np.linspace(low, high, buckets + 1))


@dataclass(frozen=True)
class HistogramRelease:
    """A released private histogram.

    ``edges`` has one more entry than ``counts``; bucket ``b`` covers
    ``[edges[b], edges[b+1])`` except the last, which is closed on both
    sides so the edges exactly tile the requested span.
    """

    edges: Tuple[float, ...]
    counts: Tuple[float, ...]
    raw_counts: Tuple[float, ...]
    epsilon: float
    epsilon_prime: float
    p: float
    n: int

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.counts) + 1:
            raise ValueError("edges must be one longer than counts")

    @property
    def buckets(self) -> int:
        """Number of buckets."""
        return len(self.counts)

    def total(self) -> float:
        """Sum of released bucket counts."""
        return float(sum(self.counts))

    def bucket_of(self, value: float) -> int:
        """Index of the bucket containing ``value``.

        Raises :class:`ValueError` when the value is outside the span.
        """
        if not self.edges[0] <= value <= self.edges[-1]:
            raise ValueError(f"{value} outside histogram span")
        idx = int(np.searchsorted(self.edges, value, side="right")) - 1
        return min(idx, self.buckets - 1)


def release_histogram(
    samples: Sequence[NodeSample],
    edges: Sequence[float],
    epsilon: float,
    rng: np.random.Generator,
) -> HistogramRelease:
    """Release a private histogram from per-node rank samples.

    Parameters
    ----------
    samples:
        The shared per-node samples (one collection serves all buckets).
    edges:
        Strictly increasing bucket edges (``B + 1`` values).
    epsilon:
        Per-bucket Laplace budget; by parallel composition it is also the
        histogram's pre-amplification total.
    rng:
        Noise randomness.
    """
    edges = [float(e) for e in edges]
    if len(edges) < 2:
        raise ValueError("need at least two edges")
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValueError("edges must be strictly increasing")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not samples:
        raise ValueError("at least one node sample is required")

    estimator = RankCountingEstimator()
    non_empty = [s for s in samples if s.node_size > 0]
    p = non_empty[0].p if non_empty else 1.0
    n = sum(s.node_size for s in samples)
    scale = (1.0 / p) / epsilon

    raw: List[float] = []
    noisy: List[float] = []
    for b in range(len(edges) - 1):
        low = edges[b]
        # Half-open buckets: shave the upper edge except for the last
        # bucket, which stays closed so the span is tiled exactly.
        high = edges[b + 1]
        if b < len(edges) - 2:
            high = np.nextafter(high, -np.inf)
        estimate = estimator.estimate(samples, low, float(high)).estimate
        noise = float(sample_laplace(scale, rng))
        raw.append(estimate + noise)
        noisy.append(float(min(max(estimate + noise, 0.0), n)))

    # Disjoint buckets: parallel composition, then Lemma 3.4 amplification.
    total_epsilon = parallel_composition([epsilon] * (len(edges) - 1))
    return HistogramRelease(
        edges=tuple(edges),
        counts=tuple(noisy),
        raw_counts=tuple(raw),
        epsilon=total_epsilon,
        epsilon_prime=amplified_epsilon(total_epsilon, p),
        p=p,
        n=n,
    )
