"""Consumer-side auditing of purchased answers.

A paying consumer receives a :class:`~repro.core.query.PrivateAnswer` whose
provenance (plan, price, spec) the broker *claims* is consistent.  The
auditor re-derives every checkable claim from public quantities:

* **pricing** -- the charged price matches the published sheet;
* **plan feasibility** -- the `(α', δ', ε)` triple satisfies every
  constraint of optimization problem (3) against the advertised
  ``(p, k, n)``;
* **amplification** -- the reported ε′ equals ``ln(1 + p(e^ε − 1))``;
* **consistency** -- the plan's target matches the purchased spec, and the
  released value lies in the valid count range ``[0, n]``.

What cannot be audited from one answer -- that the noise was *actually*
drawn at the stated scale -- is flagged as out of scope rather than
silently assumed; detecting under-noising requires repeated purchases
(see :func:`audit_noise_scale`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.query import PrivateAnswer
from repro.estimators.calibration import achieved_delta
from repro.pricing.functions import PricingFunction
from repro.privacy.amplification import amplified_epsilon
from repro.privacy.laplace import laplace_tail_within

__all__ = ["AuditFinding", "AuditReport", "audit_answer", "audit_noise_scale"]

_REL_TOL = 1e-6


@dataclass(frozen=True)
class AuditFinding:
    """One failed audit check."""

    check: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return f"[{self.check}] {self.detail}"


@dataclass
class AuditReport:
    """All findings of one audit; empty means the answer checks out."""

    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no check failed."""
        return not self.findings

    def add(self, check: str, detail: str) -> None:
        """Record a failed check."""
        self.findings.append(AuditFinding(check=check, detail=detail))


def audit_answer(
    answer: PrivateAnswer,
    pricing: Optional[PricingFunction] = None,
) -> AuditReport:
    """Audit one purchased answer against its own provenance.

    Parameters
    ----------
    answer:
        The purchased answer.
    pricing:
        The broker's *published* price sheet, when the consumer has it;
        price checks are skipped otherwise.
    """
    report = AuditReport()
    plan = answer.plan
    spec = answer.spec

    # Spec ↔ plan consistency.
    if abs(plan.alpha - spec.alpha) > _REL_TOL * spec.alpha:
        report.add(
            "spec", f"plan targets alpha={plan.alpha}, purchased {spec.alpha}"
        )
    if abs(plan.delta - spec.delta) > _REL_TOL * spec.delta:
        report.add(
            "spec", f"plan targets delta={plan.delta}, purchased {spec.delta}"
        )

    # Released value must be a legal count.
    if not 0.0 <= answer.value <= plan.n:
        report.add("range", f"released value {answer.value} outside [0, {plan.n}]")

    # Plan-internal constraints of optimization problem (3).
    if not 0.0 < plan.alpha_prime < plan.alpha:
        report.add(
            "plan", f"alpha'={plan.alpha_prime} not inside (0, {plan.alpha})"
        )
    if not plan.delta < plan.delta_prime < 1.0:
        report.add(
            "plan", f"delta'={plan.delta_prime} not inside ({plan.delta}, 1)"
        )
    else:
        certified = achieved_delta(plan.p, plan.alpha_prime, plan.k, plan.n)
        if plan.delta_prime > certified + _REL_TOL:
            report.add(
                "plan",
                f"delta'={plan.delta_prime} exceeds what p={plan.p} "
                f"certifies ({certified:.6g})",
            )
        if plan.noise_tolerance > 0:
            tail = laplace_tail_within(plan.noise_scale, plan.noise_tolerance)
            if tail < plan.delta / plan.delta_prime - _REL_TOL:
                report.add(
                    "plan",
                    f"noise tail {tail:.6g} below required "
                    f"{plan.delta / plan.delta_prime:.6g}",
                )

    if plan.epsilon <= 0:
        report.add("privacy", f"epsilon={plan.epsilon} not positive")
    else:
        expected = amplified_epsilon(plan.epsilon, plan.p)
        if abs(plan.epsilon_prime - expected) > _REL_TOL * max(expected, 1e-12):
            report.add(
                "privacy",
                f"epsilon'={plan.epsilon_prime} inconsistent with "
                f"amplification of eps={plan.epsilon} at p={plan.p} "
                f"({expected:.6g})",
            )
        scale = plan.sensitivity / plan.epsilon
        if abs(plan.noise_scale - scale) > _REL_TOL * scale:
            report.add(
                "privacy",
                f"noise scale {plan.noise_scale} != sensitivity/epsilon "
                f"({scale:.6g})",
            )

    # Published-price check.
    if pricing is not None:
        listed = pricing.price(spec.alpha, spec.delta)
        if abs(answer.price - listed) > _REL_TOL * max(listed, 1e-12):
            report.add(
                "price",
                f"charged {answer.price:.6g}, sheet lists {listed:.6g}",
            )
    return report


def audit_noise_scale(
    answers: Sequence[PrivateAnswer],
    significance: float = 4.0,
) -> AuditReport:
    """Statistically audit that repeated answers carry the claimed noise.

    Given many purchases of the *same query at the same spec*, the raw
    answers should scatter with variance at least the plan's Laplace noise
    variance (sampling noise only adds more).  A broker that quietly
    under-noises -- selling the same ε′ certificate while leaking more --
    shows up as an implausibly small empirical variance.

    ``significance`` scales the tolerance: the check fails when the
    empirical variance is below ``noise_variance / significance``.
    """
    if len(answers) < 8:
        raise ValueError("need at least 8 repeated answers for a noise audit")
    report = AuditReport()
    plans = {(
        a.plan.noise_scale, a.spec.alpha, a.spec.delta, a.query.low,
        a.query.high,
    ) for a in answers}
    if len(plans) != 1:
        report.add(
            "protocol",
            "answers mix different queries, specs, or noise scales; "
            "a noise audit needs identical repeated purchases",
        )
        return report
    raw = np.array([a.raw_value for a in answers], dtype=np.float64)
    empirical = float(raw.var(ddof=1))
    claimed = answers[0].plan.noise_variance
    if empirical < claimed / significance:
        report.add(
            "noise",
            f"empirical variance {empirical:.6g} implausibly small vs "
            f"claimed noise variance {claimed:.6g}",
        )
    return report
