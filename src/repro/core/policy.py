"""Broker admission policies: who may buy what, and how much.

A benefit-concerned broker (Section II-B's phrase) does more than price
correctly -- it gates requests.  :class:`BrokerPolicy` bundles the
admission rules a production deployment needs:

* **spec bounds** -- refuse products stricter than the fleet can ever
  serve (α below ``min_alpha``) or looser than worth selling;
* **per-consumer privacy caps** -- bound the cumulative ε′ any single
  consumer can extract, independent of the dataset-wide accountant
  (defense in depth against one identity draining the budget);
* **per-consumer purchase caps** -- a crude but effective damper on the
  repeated-purchase behaviour every averaging attack needs.

The policy is consulted by :class:`~repro.core.broker.DataBroker` before
any data is touched; a refusal raises :class:`PolicyViolationError` and
charges nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.query import AccuracySpec
from repro.errors import ReproError

__all__ = ["PolicyViolationError", "BrokerPolicy"]


class PolicyViolationError(ReproError):
    """A request was refused by the broker's admission policy."""


@dataclass
class BrokerPolicy:
    """Configurable admission rules, all disabled by default.

    Parameters
    ----------
    min_alpha, max_alpha:
        Sellable tolerance band; requests outside are refused.
    min_delta, max_delta:
        Sellable confidence band.
    max_epsilon_per_consumer:
        Cap on cumulative ε′ released to one consumer.
    max_purchases_per_consumer:
        Cap on the number of answers sold to one consumer.
    """

    min_alpha: float = 0.0
    max_alpha: float = 1.0
    min_delta: float = 0.0
    max_delta: float = 1.0
    max_epsilon_per_consumer: float = float("inf")
    max_purchases_per_consumer: int = 2**63 - 1

    _epsilon_spent: Dict[str, float] = field(default_factory=dict)
    _purchases: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_alpha <= self.max_alpha <= 1.0:
            raise ValueError("need 0 <= min_alpha <= max_alpha <= 1")
        if not 0.0 <= self.min_delta <= self.max_delta <= 1.0:
            raise ValueError("need 0 <= min_delta <= max_delta <= 1")
        if self.max_epsilon_per_consumer < 0:
            raise ValueError("max_epsilon_per_consumer must be non-negative")
        if self.max_purchases_per_consumer < 0:
            raise ValueError("max_purchases_per_consumer must be non-negative")

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, consumer: str, spec: AccuracySpec) -> None:
        """Raise :class:`PolicyViolationError` unless the request may run."""
        if not self.min_alpha <= spec.alpha <= self.max_alpha:
            raise PolicyViolationError(
                f"alpha={spec.alpha} outside sellable band "
                f"[{self.min_alpha}, {self.max_alpha}]"
            )
        if not self.min_delta <= spec.delta <= self.max_delta:
            raise PolicyViolationError(
                f"delta={spec.delta} outside sellable band "
                f"[{self.min_delta}, {self.max_delta}]"
            )
        if self._purchases.get(consumer, 0) >= self.max_purchases_per_consumer:
            raise PolicyViolationError(
                f"consumer {consumer!r} reached the purchase cap "
                f"({self.max_purchases_per_consumer})"
            )

    def admit_batch(self, consumer: str, specs: "list[AccuracySpec]") -> None:
        """Admit a whole batch atomically, or refuse it before any release.

        Spec-band checks run once per distinct ``(α, δ)`` tier, and the
        purchase cap is checked against the *entire* batch size -- a batch
        that could not finish under per-query admission is refused up
        front, so a batched trade never half-completes.
        """
        seen: "set[tuple[float, float]]" = set()
        for spec in specs:
            key = (spec.alpha, spec.delta)
            if key in seen:
                continue
            seen.add(key)
            if not self.min_alpha <= spec.alpha <= self.max_alpha:
                raise PolicyViolationError(
                    f"alpha={spec.alpha} outside sellable band "
                    f"[{self.min_alpha}, {self.max_alpha}]"
                )
            if not self.min_delta <= spec.delta <= self.max_delta:
                raise PolicyViolationError(
                    f"delta={spec.delta} outside sellable band "
                    f"[{self.min_delta}, {self.max_delta}]"
                )
        purchases = self._purchases.get(consumer, 0)
        if purchases + len(specs) > self.max_purchases_per_consumer:
            raise PolicyViolationError(
                f"consumer {consumer!r} cannot buy {len(specs)} more answers "
                f"under the purchase cap ({self.max_purchases_per_consumer}, "
                f"{purchases} already bought)"
            )

    def can_release(self, consumer: str, epsilon_prime: float) -> bool:
        """Whether releasing ``epsilon_prime`` to ``consumer`` fits the cap."""
        spent = self._epsilon_spent.get(consumer, 0.0)
        return spent + epsilon_prime <= self.max_epsilon_per_consumer + 1e-12

    def settle(self, consumer: str, epsilon_prime: float) -> None:
        """Record a completed release against the consumer's caps.

        Raises
        ------
        PolicyViolationError
            If the release would overshoot the consumer's ε′ cap; callers
            must check :meth:`can_release` *before* producing the answer.
        """
        if epsilon_prime < 0:
            raise ValueError("epsilon_prime must be non-negative")
        if not self.can_release(consumer, epsilon_prime):
            raise PolicyViolationError(
                f"consumer {consumer!r} would exceed the per-consumer "
                f"privacy cap {self.max_epsilon_per_consumer}"
            )
        self._epsilon_spent[consumer] = (
            self._epsilon_spent.get(consumer, 0.0) + epsilon_prime
        )
        self._purchases[consumer] = self._purchases.get(consumer, 0) + 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def epsilon_spent_by(self, consumer: str) -> float:
        """Cumulative ε′ released to one consumer."""
        return self._epsilon_spent.get(consumer, 0.0)

    def purchases_by(self, consumer: str) -> int:
        """Number of completed purchases by one consumer."""
        return self._purchases.get(consumer, 0)
