"""Continuous monitoring: standing queries over windowed data arrival.

.. deprecated::
    This module predates :mod:`repro.streaming` and is kept as a thin
    compatibility wrapper over it.  New code should use the streaming
    subsystem directly -- :func:`repro.streaming.build_streaming_cluster`
    for the full sharded pipeline (bounded-memory window rings, per-epoch
    budgets with expiry, crash-safe window journaling, cache
    push-invalidation), or :mod:`repro.streaming.window` for the summary
    primitives.  :class:`ContinuousMonitor` keeps every generation
    forever and budgets against one lifetime ledger, which is exactly the
    unbounded-spend failure mode the streaming subsystem exists to fix;
    its API and seeded outputs remain bit-for-bit stable for existing
    experiments.

Design (unchanged): each arrival window becomes a *generation* -- a
frozen per-device sub-dataset sampled once at a rate calibrated for the
standing accuracy target.  A generation is exactly a streaming
:class:`~repro.streaming.window.EpochSummary` (ranks local to the window,
one shared rate), so a standing query is answered by summing RankCounting
estimates over all generations; with ``W`` windows of ``k`` devices the
variance bound is ``8·k·W/p²`` and Theorem 3.3 carries over with
``k_eff = k·W``.  Laplace noise is budgeted per release by the same
optimization problem (3) against the *current* total size ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.query import AccuracySpec, RangeQuery
from repro.datasets.partition import partition_round_robin
from repro.errors import InsufficientSamplesError
from repro.estimators.base import NodeData, NodeSample
from repro.estimators.calibration import required_sampling_rate
from repro.estimators.rank import RankCountingEstimator
from repro.privacy.budget import BudgetAccountant
from repro.privacy.laplace import sample_laplace
from repro.privacy.optimizer import PrivacyPlan
from repro.streaming.window import (
    EpochSummary,
    pooled_estimate,
    pooled_plan,
)

__all__ = ["WindowRelease", "ContinuousMonitor"]


@dataclass(frozen=True)
class WindowRelease:
    """One periodic private release of a standing query."""

    window_index: int
    total_records: int
    value: float
    raw_value: float
    plan: PrivacyPlan

    @property
    def epsilon_prime(self) -> float:
        """The amplified privacy cost of this release."""
        return self.plan.epsilon_prime


@dataclass
class ContinuousMonitor:
    """Answers a standing ``(α, δ)``-range counting over arriving data.

    Parameters
    ----------
    query, spec:
        The standing query and its accuracy product.
    k:
        Devices per window (arrivals are split round-robin).
    accountant:
        Privacy ledger; releases stop with
        :class:`~repro.errors.PrivacyBudgetExceededError` when the
        configured capacity is exhausted -- the natural lifetime bound of
        a continuous private release.
    rng:
        Randomness for sampling and noise.
    """

    query: RangeQuery
    spec: AccuracySpec
    k: int = 8
    accountant: BudgetAccountant = field(default_factory=BudgetAccountant)
    rng: np.random.Generator = field(
        # One session == one stream; the fixed default keeps continuous
        # experiments replayable end to end.
        default_factory=lambda: np.random.default_rng(23)  # repro-lint: disable=RL002
    )

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be a positive device count")
        self._generations: List[EpochSummary] = []
        self._generation_truth_nodes: List[List[NodeData]] = []
        self._releases: List[WindowRelease] = []
        self._estimator = RankCountingEstimator()

    # ------------------------------------------------------------------
    # arrival side
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        """Number of ingested windows (generations)."""
        return len(self._generations)

    @property
    def total_records(self) -> int:
        """Total records across all windows."""
        return sum(g.record_count for g in self._generations)

    @property
    def effective_nodes(self) -> int:
        """``k_eff = k·W`` -- logical node count across generations."""
        return sum(len(g.samples) for g in self._generations)

    def ingest_window(self, values: np.ndarray) -> float:
        """Ingest one window of arrivals; returns the sampling rate used.

        The window is split round-robin over ``k`` logical devices and
        sampled at the Theorem 3.3 rate for the standing target computed
        against the *post-ingest* total size and effective node count
        (looser targets on more data need sparser samples).
        """
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot ingest an empty window")
        new_total = self.total_records + len(values)
        k_eff = self.effective_nodes + self.k
        p = required_sampling_rate(
            self.spec.alpha * 0.5,
            self.spec.delta + (1 - self.spec.delta) * 0.5,
            k_eff,
            new_total,
        )
        shards = partition_round_robin(values, self.k)
        base_id = self.effective_nodes + 1
        generation: List[NodeSample] = []
        nodes: List[NodeData] = []
        for offset, shard in enumerate(shards):
            node = NodeData(node_id=base_id + offset, values=shard)
            nodes.append(node)
            generation.append(node.sample(p, self.rng))
        self._generations.append(EpochSummary(
            epoch=self.window_count,
            samples=tuple(generation),
            record_count=len(values),
            rate=p,
        ))
        self._generation_truth_nodes.append(nodes)
        return p

    # ------------------------------------------------------------------
    # release side
    # ------------------------------------------------------------------
    def release(self) -> WindowRelease:
        """Produce one private release of the standing query.

        Raises
        ------
        InsufficientSamplesError
            Before the first window arrives.
        PrivacyBudgetExceededError
            When the accountant's capacity is exhausted.
        """
        if not self._generations:
            raise InsufficientSamplesError("no windows ingested yet")
        total = self.total_records
        estimate = pooled_estimate(
            self._generations, self._estimator, self.query.low, self.query.high
        )
        plan = pooled_plan(
            self._generations, self.spec.alpha, self.spec.delta
        )
        noise = float(sample_laplace(plan.noise_scale, self.rng))
        raw = estimate + noise
        released = float(min(max(raw, 0.0), float(total)))
        self.accountant.charge(
            self.query.dataset,
            plan.epsilon_prime,
            label=f"window-{self.window_count}",
        )
        record = WindowRelease(
            window_index=self.window_count,
            total_records=total,
            value=released,
            raw_value=raw,
            plan=plan,
        )
        self._releases.append(record)
        return record

    @property
    def releases(self) -> Tuple[WindowRelease, ...]:
        """All releases so far, oldest first."""
        return tuple(self._releases)

    def privacy_spent(self) -> float:
        """Cumulative ε′ across all releases."""
        return self.accountant.spent(self.query.dataset)

    def true_count(self) -> int:
        """Ground truth of the standing query (harness use only)."""
        return sum(
            node.exact_count(self.query.low, self.query.high)
            for nodes in self._generation_truth_nodes
            for node in nodes
        )
