"""The data broker: the trading pipeline's orchestrator (Section II-A).

For each purchased query the broker

1. **plans** -- checks the stored sample supports the ``(α, δ)`` target,
   triggering an incremental top-up collection when it does not;
2. **estimates** -- runs RankCounting over the per-node samples to get an
   ``(α', δ')``-range counting;
3. **perturbs** -- adds Laplace noise at the optimizer's ε so the noisy
   answer is still an ``(α, δ)``-range counting with the smallest amplified
   budget ε′ (optimization problem (3));
4. **charges** -- prices the product with the configured pricing function,
   records the sale in the billing ledger and the ε′ in the privacy
   accountant.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.core.planner import QueryPlanner
from repro.core.policy import BrokerPolicy, PolicyViolationError
from repro.core.query import AccuracySpec, PrivateAnswer, RangeQuery
from repro.errors import InfeasiblePlanError, PrivacyBudgetExceededError
from repro.estimators.base import RangeCountingEstimator
from repro.estimators.rank import RankCountingEstimator
from repro.iot.base_station import BaseStation
from repro.pricing.functions import PricingFunction
from repro.pricing.ledger import BillingLedger
from repro.privacy.budget import BudgetAccountant
from repro.privacy.laplace import sample_laplace, sample_laplace_many
from repro.resilience.deadline import check_deadline

if TYPE_CHECKING:  # pragma: no cover - types only, avoids an import cycle
    from repro.durability.journal import TradeJournal
    from repro.serving.telemetry import MetricsRegistry

__all__ = ["DataBroker"]


@dataclass
class DataBroker:
    """Answers priced, differentially private ``(α, δ)``-range counting.

    Parameters
    ----------
    base_station:
        Source of per-node samples (and the handle for top-up rounds).
    pricing:
        The price sheet; its variance model must be built for the same
        ``n`` as the base station serves.
    dataset:
        Billing/budget key of the dataset this broker serves.
    estimator:
        The sampling estimator; RankCounting by default.
    ledger, accountant:
        Billing and privacy accounting; fresh unlimited instances by
        default.
    rng:
        Noise randomness (seeded for reproducible experiments).
    auto_top_up:
        When True (default) an infeasible request triggers an incremental
        collection round at the planner's recommended rate; when False the
        request fails with :class:`InfeasiblePlanError` instead.
    """

    base_station: BaseStation
    pricing: PricingFunction
    dataset: str = "default"
    estimator: RangeCountingEstimator = field(default_factory=RankCountingEstimator)
    ledger: BillingLedger = field(default_factory=BillingLedger)
    accountant: BudgetAccountant = field(default_factory=BudgetAccountant)
    # A broker is a process singleton; the fixed default seed is the
    # documented determinism contract (tests pin golden answers to it).
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(7))  # repro-lint: disable=RL002
    auto_top_up: bool = True
    planner_grid_points: int = 512
    policy: BrokerPolicy = field(default_factory=BrokerPolicy)
    memoize_answers: bool = False
    #: Optional :class:`~repro.serving.telemetry.MetricsRegistry`; when
    #: set, the broker reports stage timings and release counters under
    #: ``broker.*``.  Duck-typed (no serving import) to keep the core
    #: layer dependency-free.
    telemetry: "Optional[MetricsRegistry]" = None
    #: Optional :class:`~repro.durability.journal.TradeJournal`; when set,
    #: every trade is journaled *before* the answer is released or any
    #: accounting state mutates (crash-safety invariant RL006), so
    #: :func:`~repro.durability.recovery.recover_accounting` can rebuild
    #: the exact books after a crash.
    journal: "Optional[TradeJournal]" = None

    def __post_init__(self) -> None:
        # Cache of released answers keyed by (query, spec, sample rate);
        # see ``memoize_answers`` in :meth:`answer`.
        self._answer_cache: "dict[tuple, PrivateAnswer]" = {}
        # Memo of optimizer runs: the grid search is a pure function of
        # (α, δ, p) for this broker's fixed fleet shape, and cluster
        # routing multiplies the distinct sub-specs each shard sees per
        # batch -- re-planning per batch would dominate latency.
        self._plan_memo: "dict[tuple[float, float, float], PrivacyPlan]" = {}
        self._planner = QueryPlanner(
            k=self.base_station.k,
            n=self.base_station.n,
            grid_points=self.planner_grid_points,
        )
        if self.pricing.variance_model.n != self.base_station.n:
            raise ValueError(
                "pricing variance model is calibrated for "
                f"n={self.pricing.variance_model.n}, but the base station "
                f"serves n={self.base_station.n}"
            )

    @property
    def planner(self) -> QueryPlanner:
        """The planner bound to this broker's fleet shape."""
        return self._planner

    def _plan(self, spec: AccuracySpec, p: float) -> PrivacyPlan:
        """Memoized :meth:`QueryPlanner.plan` (pure in ``(α, δ, p)``)."""
        key = (spec.alpha, spec.delta, p)
        plan = self._plan_memo.get(key)
        if plan is None:
            plan = self._planner.plan(spec, p)
            if len(self._plan_memo) > 2048:
                self._plan_memo.clear()
            self._plan_memo[key] = plan
        return plan

    def quote(self, spec: AccuracySpec) -> float:
        """List price of an ``(α, δ)`` product (no data is touched)."""
        return self.pricing.price(spec.alpha, spec.delta)

    def _timer(self, name: str):
        """A stage timer into the attached telemetry, or a no-op."""
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.timer(name)

    def _emit(self, name: str, amount: float = 1.0) -> None:
        if self.telemetry is not None:
            self.telemetry.inc(name, amount)

    def _journal_trades(self, records: "list[dict]") -> None:
        """Commit trades to the write-ahead journal, pre-release.

        Must run **before** ``policy.settle`` / ``accountant.charge`` /
        ``ledger.record`` and before the answer object is returned
        (journal-before-release, RL006): a crash after the append can only
        make recovery *over*-count ε, never under-count it.  No-op when no
        journal is attached.
        """
        if self.journal is not None:
            self.journal.append_many(records)

    def replay(self, cached: PrivateAnswer, consumer: str) -> PrivateAnswer:
        """Re-release a previously purchased answer to ``consumer``.

        Re-releasing a released value is post-processing: it costs **zero**
        privacy budget (nothing is charged to the accountant and the
        policy settles ε′ = 0) and it starves averaging attacks, since m
        identical answers average to themselves.  The sale is still billed
        at list price and recorded in the ledger with ``epsilon_prime=0``,
        so the books show every hand-over.

        This is the single replay path shared by the broker's own
        memoized-answer cache and the serving layer's
        :class:`~repro.serving.answer_cache.AnswerCache`.
        """
        spec = cached.spec
        self.policy.admit(consumer, spec)
        price = self.pricing.price(spec.alpha, spec.delta)
        self._journal_trades([dict(
            kind="replay",
            consumer=consumer,
            dataset=self.dataset,
            low=cached.query.low,
            high=cached.query.high,
            alpha=spec.alpha,
            delta=spec.delta,
            epsilon_prime=0.0,
            price=price,
            store_version=self.base_station.store_version,
            label=f"{consumer}:[{cached.query.low},{cached.query.high}]",
        )])
        self.policy.settle(consumer, 0.0)
        txn = self.ledger.record(
            consumer=consumer,
            dataset=self.dataset,
            alpha=spec.alpha,
            delta=spec.delta,
            price=price,
            epsilon_prime=0.0,
        )
        self._emit("broker.replays")
        return dataclasses.replace(
            cached,
            consumer=consumer,
            price=price,
            transaction_id=txn.transaction_id,
        )

    def _ensure_feasible(self, spec: AccuracySpec) -> None:
        p = self.base_station.sampling_rate
        if p > 0.0 and self._planner.supports(spec, p):
            return
        if not self.auto_top_up:
            raise InfeasiblePlanError(
                f"stored sample (p={p:.6g}) cannot support "
                f"(alpha={spec.alpha}, delta={spec.delta}) and auto_top_up "
                "is disabled"
            )
        target = self._planner.required_rate(spec)
        self.base_station.ensure_rate(max(target, p if p > 0 else target))

    def answer(
        self,
        query: RangeQuery,
        spec: AccuracySpec,
        consumer: str = "anonymous",
    ) -> PrivateAnswer:
        """Run the full trade: plan, estimate, perturb, charge.

        Returns the :class:`PrivateAnswer` released to the consumer.  Cost
        of any triggered top-up round lands on the network meter; the
        privacy cost ε′ is charged to the accountant under this broker's
        dataset key.
        """
        if query.dataset not in ("default", self.dataset):
            raise ValueError(
                f"query targets dataset {query.dataset!r}, broker serves "
                f"{self.dataset!r}"
            )
        self.policy.admit(consumer, spec)

        cache_key = (query.low, query.high, spec.alpha, spec.delta)
        if self.memoize_answers and cache_key in self._answer_cache:
            return self.replay(self._answer_cache[cache_key], consumer)

        with self._timer("broker.plan_s"):
            self._ensure_feasible(spec)
            p = self.base_station.sampling_rate
            plan = self._plan(spec, p)
        if not self.policy.can_release(consumer, plan.epsilon_prime):
            raise PolicyViolationError(
                f"consumer {consumer!r} would exceed the per-consumer "
                "privacy cap"
            )

        with self._timer("broker.estimate_s"):
            samples = self.base_station.samples()
            estimate = self.estimator.estimate(samples, query.low, query.high)
        noise = float(sample_laplace(plan.noise_scale, self.rng))
        raw_value = estimate.estimate + noise
        released = float(min(max(raw_value, 0.0), float(self.base_station.n)))

        with self._timer("broker.charge_s"):
            price = self.pricing.price(spec.alpha, spec.delta)
            self._journal_trades([dict(
                kind="release",
                consumer=consumer,
                dataset=self.dataset,
                low=query.low,
                high=query.high,
                alpha=spec.alpha,
                delta=spec.delta,
                epsilon_prime=plan.epsilon_prime,
                price=price,
                store_version=self.base_station.store_version,
                label=f"{consumer}:[{query.low},{query.high}]",
            )])
            self.policy.settle(consumer, plan.epsilon_prime)
            self.accountant.charge(
                self.dataset,
                plan.epsilon_prime,
                label=f"{consumer}:[{query.low},{query.high}]",
            )
            txn = self.ledger.record(
                consumer=consumer,
                dataset=self.dataset,
                alpha=spec.alpha,
                delta=spec.delta,
                price=price,
                epsilon_prime=plan.epsilon_prime,
            )
        self._emit("broker.answers")
        self._emit("broker.epsilon_spent", plan.epsilon_prime)
        answer = PrivateAnswer(
            value=released,
            raw_value=raw_value,
            sample_estimate=estimate.estimate,
            query=query,
            spec=spec,
            plan=plan,
            price=price,
            consumer=consumer,
            transaction_id=txn.transaction_id,
        )
        if self.memoize_answers:
            self._answer_cache[cache_key] = answer
        return answer

    def answer_batch(
        self,
        queries: "list[RangeQuery]",
        spec: "AccuracySpec | Sequence[AccuracySpec]",
        consumer: str = "anonymous",
    ) -> "list[PrivateAnswer]":
        """Answer several queries in one vectorized pass.

        Semantically identical to calling :meth:`answer` per query --
        each release is separately noised and separately charged
        (different ranges overlap, so sequential composition applies) and
        the memoized-answer cache behaves exactly as in the scalar loop
        (cache hits, including duplicates *within* the batch, cost
        ε′ = 0) -- but the work is amortized across the batch:

        * feasibility, privacy planning, and pricing run **once per
          distinct** ``(α, δ)`` tier instead of once per query;
        * the sample store is fetched once and all deterministic
          estimates come from the estimator's vectorized
          ``estimate_many`` (bit-identical to scalar ``estimate``);
        * Laplace noise is drawn in one vectorized call that consumes
          the generator's bitstream exactly like per-query draws, so
          batched answers are bit-for-bit the scalar loop's answers;
        * ledger transactions and accountant entries are appended in
          bulk, in query order, with per-entry records unchanged.

        ``spec`` may be a single shared tier or one
        :class:`AccuracySpec` per query.  Admission is **atomic**: the
        whole batch is checked against the policy's purchase and ε′ caps
        (and the dataset budget) before anything is released, so a batch
        either completes in full or charges nothing.  When mixed tiers
        trigger a top-up, every tier is planned at the final post-top-up
        rate (a scalar loop would plan earlier queries at the sparser
        pre-top-up rate; both plans are valid, the batch's is tighter).
        """
        if not queries:
            raise ValueError("at least one query is required")
        # A request whose deadline already passed must not plan, estimate,
        # or bill; the scope is installed by the serving gateway.
        check_deadline("broker.answer_batch")
        if isinstance(spec, AccuracySpec):
            specs = [spec] * len(queries)
        else:
            specs = list(spec)
            if len(specs) != len(queries):
                raise ValueError(
                    f"got {len(specs)} specs for {len(queries)} queries; "
                    "pass one spec per query or a single shared spec"
                )
        for query in queries:
            if query.dataset not in ("default", self.dataset):
                raise ValueError(
                    f"query targets dataset {query.dataset!r}, broker serves "
                    f"{self.dataset!r}"
                )
        self.policy.admit_batch(consumer, specs)

        # Split the batch into cache hits and fresh releases, walking the
        # cache exactly as the scalar loop would: a duplicate of an
        # earlier in-batch release is a hit against that release.
        cache_keys = [
            (q.low, q.high, s.alpha, s.delta) for q, s in zip(queries, specs)
        ]
        miss_indices: "list[int]" = []
        in_batch_source: "dict[tuple, int]" = {}
        hit_of: "dict[int, PrivateAnswer | int]" = {}
        for i, key in enumerate(cache_keys):
            if self.memoize_answers and key in self._answer_cache:
                hit_of[i] = self._answer_cache[key]
            elif self.memoize_answers and key in in_batch_source:
                hit_of[i] = in_batch_source[key]
            else:
                miss_indices.append(i)
                if self.memoize_answers:
                    in_batch_source[key] = i

        # Feasibility, planning, and pricing: once per distinct tier that
        # actually needs a fresh release (pure-hit tiers touch no data,
        # as in the scalar path).
        miss_tiers: "dict[tuple[float, float], AccuracySpec]" = {}
        for i in miss_indices:
            miss_tiers.setdefault((specs[i].alpha, specs[i].delta), specs[i])
        with self._timer("broker.batch.plan_s"):
            for tier_spec in miss_tiers.values():
                self._ensure_feasible(tier_spec)
            p = self.base_station.sampling_rate
            plans = {
                tier: self._plan(tier_spec, p)
                for tier, tier_spec in miss_tiers.items()
            }
            prices = {
                (s.alpha, s.delta): self.pricing.price(s.alpha, s.delta)
                for s in specs
            }

        # Atomic admission against the ε′ caps: the whole batch must fit
        # before anything is estimated, noised, or charged.
        total_epsilon = sum(
            plans[(specs[i].alpha, specs[i].delta)].epsilon_prime
            for i in miss_indices
        )
        if not self.policy.can_release(consumer, total_epsilon):
            raise PolicyViolationError(
                f"consumer {consumer!r} would exceed the per-consumer "
                "privacy cap"
            )
        if not self.accountant.can_afford(self.dataset, total_epsilon):
            raise PrivacyBudgetExceededError(
                f"dataset {self.dataset!r}: batch of {len(miss_indices)} "
                f"releases (ε′={total_epsilon:.6g}) would exceed capacity "
                f"{self.accountant.capacity:.6g}"
            )

        # One sample fetch, one vectorized estimation pass, one noise draw.
        estimates = np.zeros(0, dtype=np.float64)
        if miss_indices:
            with self._timer("broker.batch.estimate_s"):
                samples = self.base_station.samples()
                ranges = [
                    (queries[i].low, queries[i].high) for i in miss_indices
                ]
                estimate_many = getattr(self.estimator, "estimate_many", None)
                if estimate_many is not None:
                    estimates = np.asarray(estimate_many(samples, ranges))
                else:
                    estimates = np.asarray([
                        self.estimator.estimate(samples, low, high).estimate
                        for low, high in ranges
                    ])
            scales = np.asarray([
                plans[(specs[i].alpha, specs[i].delta)].noise_scale
                for i in miss_indices
            ])
            noise = sample_laplace_many(scales, self.rng)
            raw_values = estimates + noise
            released = np.clip(raw_values, 0.0, float(self.base_station.n))

        # Settle in query order: identical per-entry ledger transactions,
        # accountant entries, and policy counters to the scalar loop --
        # appended in bulk, and journaled as one atomic batch *before*
        # any accounting state mutates (journal-before-release, RL006).
        answers: "list[Optional[PrivateAnswer]]" = [None] * len(queries)
        sales: "list[dict]" = []
        journal_records: "list[dict]" = []
        settle_epsilons: "list[float]" = []
        charge_epsilons: "list[float]" = []
        charge_labels: "list[str]" = []
        store_version = self.base_station.store_version
        miss_position = {idx: pos for pos, idx in enumerate(miss_indices)}
        for i, (query, qspec) in enumerate(zip(queries, specs)):
            tier = (qspec.alpha, qspec.delta)
            price = prices[tier]
            label = f"{consumer}:[{query.low},{query.high}]"
            if i in hit_of:
                epsilon_prime = 0.0
            else:
                plan = plans[tier]
                epsilon_prime = plan.epsilon_prime
                charge_epsilons.append(epsilon_prime)
                charge_labels.append(label)
            settle_epsilons.append(epsilon_prime)
            journal_records.append(dict(
                kind="replay" if i in hit_of else "release",
                consumer=consumer,
                dataset=self.dataset,
                low=query.low,
                high=query.high,
                alpha=qspec.alpha,
                delta=qspec.delta,
                epsilon_prime=epsilon_prime,
                price=price,
                store_version=store_version,
                label=label,
            ))
            sales.append(dict(
                consumer=consumer,
                dataset=self.dataset,
                alpha=qspec.alpha,
                delta=qspec.delta,
                price=price,
                epsilon_prime=epsilon_prime,
            ))
        # Last pre-commit checkpoint: past here the trade is journaled and
        # charged, so an expired deadline must abort *now* or not at all.
        check_deadline("broker.journal")
        with self._timer("broker.batch.charge_s"):
            self._journal_trades(journal_records)
            for epsilon_prime in settle_epsilons:
                self.policy.settle(consumer, epsilon_prime)
            if charge_epsilons:
                self.accountant.charge_many(
                    self.dataset, charge_epsilons, charge_labels
                )
            txns = self.ledger.record_many(sales)
        self._emit("broker.batches")
        self._emit("broker.answers", len(queries))
        self._emit("broker.replays", len(hit_of))
        self._emit("broker.epsilon_spent", sum(charge_epsilons))
        if self.telemetry is not None:
            self.telemetry.observe("broker.batch_width", len(queries))

        for i, (query, qspec) in enumerate(zip(queries, specs)):
            if i in hit_of:
                continue
            pos = miss_position[i]
            answer = PrivateAnswer(
                value=float(released[pos]),
                raw_value=float(raw_values[pos]),
                sample_estimate=float(estimates[pos]),
                query=query,
                spec=qspec,
                plan=plans[(qspec.alpha, qspec.delta)],
                price=prices[(qspec.alpha, qspec.delta)],
                consumer=consumer,
                transaction_id=txns[i].transaction_id,
            )
            answers[i] = answer
            if self.memoize_answers:
                self._answer_cache[cache_keys[i]] = answer
        for i, source in hit_of.items():
            cached = answers[source] if isinstance(source, int) else source
            answers[i] = dataclasses.replace(
                cached,
                consumer=consumer,
                price=txns[i].price,
                transaction_id=txns[i].transaction_id,
            )
        return answers
