"""The data broker: the trading pipeline's orchestrator (Section II-A).

For each purchased query the broker

1. **plans** -- checks the stored sample supports the ``(α, δ)`` target,
   triggering an incremental top-up collection when it does not;
2. **estimates** -- runs RankCounting over the per-node samples to get an
   ``(α', δ')``-range counting;
3. **perturbs** -- adds Laplace noise at the optimizer's ε so the noisy
   answer is still an ``(α, δ)``-range counting with the smallest amplified
   budget ε′ (optimization problem (3));
4. **charges** -- prices the product with the configured pricing function,
   records the sale in the billing ledger and the ε′ in the privacy
   accountant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.planner import QueryPlanner
from repro.core.policy import BrokerPolicy, PolicyViolationError
from repro.core.query import AccuracySpec, PrivateAnswer, RangeQuery
from repro.errors import InfeasiblePlanError
from repro.estimators.base import RangeCountingEstimator
from repro.estimators.rank import RankCountingEstimator
from repro.iot.base_station import BaseStation
from repro.pricing.functions import PricingFunction
from repro.pricing.ledger import BillingLedger
from repro.privacy.budget import BudgetAccountant
from repro.privacy.laplace import sample_laplace

__all__ = ["DataBroker"]


@dataclass
class DataBroker:
    """Answers priced, differentially private ``(α, δ)``-range counting.

    Parameters
    ----------
    base_station:
        Source of per-node samples (and the handle for top-up rounds).
    pricing:
        The price sheet; its variance model must be built for the same
        ``n`` as the base station serves.
    dataset:
        Billing/budget key of the dataset this broker serves.
    estimator:
        The sampling estimator; RankCounting by default.
    ledger, accountant:
        Billing and privacy accounting; fresh unlimited instances by
        default.
    rng:
        Noise randomness (seeded for reproducible experiments).
    auto_top_up:
        When True (default) an infeasible request triggers an incremental
        collection round at the planner's recommended rate; when False the
        request fails with :class:`InfeasiblePlanError` instead.
    """

    base_station: BaseStation
    pricing: PricingFunction
    dataset: str = "default"
    estimator: RangeCountingEstimator = field(default_factory=RankCountingEstimator)
    ledger: BillingLedger = field(default_factory=BillingLedger)
    accountant: BudgetAccountant = field(default_factory=BudgetAccountant)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(7))
    auto_top_up: bool = True
    planner_grid_points: int = 512
    policy: BrokerPolicy = field(default_factory=BrokerPolicy)
    memoize_answers: bool = False

    def __post_init__(self) -> None:
        # Cache of released answers keyed by (query, spec, sample rate);
        # see ``memoize_answers`` in :meth:`answer`.
        self._answer_cache: "dict[tuple, PrivateAnswer]" = {}
        self._planner = QueryPlanner(
            k=self.base_station.k,
            n=self.base_station.n,
            grid_points=self.planner_grid_points,
        )
        if self.pricing.variance_model.n != self.base_station.n:
            raise ValueError(
                "pricing variance model is calibrated for "
                f"n={self.pricing.variance_model.n}, but the base station "
                f"serves n={self.base_station.n}"
            )

    @property
    def planner(self) -> QueryPlanner:
        """The planner bound to this broker's fleet shape."""
        return self._planner

    def quote(self, spec: AccuracySpec) -> float:
        """List price of an ``(α, δ)`` product (no data is touched)."""
        return self.pricing.price(spec.alpha, spec.delta)

    def _ensure_feasible(self, spec: AccuracySpec) -> None:
        p = self.base_station.sampling_rate
        if p > 0.0 and self._planner.supports(spec, p):
            return
        if not self.auto_top_up:
            raise InfeasiblePlanError(
                f"stored sample (p={p:.6g}) cannot support "
                f"(alpha={spec.alpha}, delta={spec.delta}) and auto_top_up "
                "is disabled"
            )
        target = self._planner.required_rate(spec)
        self.base_station.ensure_rate(max(target, p if p > 0 else target))

    def answer(
        self,
        query: RangeQuery,
        spec: AccuracySpec,
        consumer: str = "anonymous",
    ) -> PrivateAnswer:
        """Run the full trade: plan, estimate, perturb, charge.

        Returns the :class:`PrivateAnswer` released to the consumer.  Cost
        of any triggered top-up round lands on the network meter; the
        privacy cost ε′ is charged to the accountant under this broker's
        dataset key.
        """
        if query.dataset not in ("default", self.dataset):
            raise ValueError(
                f"query targets dataset {query.dataset!r}, broker serves "
                f"{self.dataset!r}"
            )
        self.policy.admit(consumer, spec)

        cache_key = (query.low, query.high, spec.alpha, spec.delta)
        if self.memoize_answers and cache_key in self._answer_cache:
            # Re-releasing a previously released value is post-processing:
            # it costs no privacy budget, and it starves averaging attacks
            # (m identical answers average to themselves).  The sale is
            # still billed at list price.
            cached = self._answer_cache[cache_key]
            price = self.pricing.price(spec.alpha, spec.delta)
            self.policy.settle(consumer, 0.0)
            txn = self.ledger.record(
                consumer=consumer,
                dataset=self.dataset,
                alpha=spec.alpha,
                delta=spec.delta,
                price=price,
                epsilon_prime=0.0,
            )
            return dataclasses.replace(
                cached,
                consumer=consumer,
                price=price,
                transaction_id=txn.transaction_id,
            )

        self._ensure_feasible(spec)
        p = self.base_station.sampling_rate
        plan = self._planner.plan(spec, p)
        if not self.policy.can_release(consumer, plan.epsilon_prime):
            raise PolicyViolationError(
                f"consumer {consumer!r} would exceed the per-consumer "
                "privacy cap"
            )

        samples = self.base_station.samples()
        estimate = self.estimator.estimate(samples, query.low, query.high)
        noise = float(sample_laplace(plan.noise_scale, self.rng))
        raw_value = estimate.estimate + noise
        released = float(min(max(raw_value, 0.0), float(self.base_station.n)))

        price = self.pricing.price(spec.alpha, spec.delta)
        self.policy.settle(consumer, plan.epsilon_prime)
        self.accountant.charge(
            self.dataset,
            plan.epsilon_prime,
            label=f"{consumer}:[{query.low},{query.high}]",
        )
        txn = self.ledger.record(
            consumer=consumer,
            dataset=self.dataset,
            alpha=spec.alpha,
            delta=spec.delta,
            price=price,
            epsilon_prime=plan.epsilon_prime,
        )
        answer = PrivateAnswer(
            value=released,
            raw_value=raw_value,
            sample_estimate=estimate.estimate,
            query=query,
            spec=spec,
            plan=plan,
            price=price,
            consumer=consumer,
            transaction_id=txn.transaction_id,
        )
        if self.memoize_answers:
            self._answer_cache[cache_key] = answer
        return answer

    def answer_batch(
        self,
        queries: "list[RangeQuery]",
        spec: AccuracySpec,
        consumer: str = "anonymous",
    ) -> "list[PrivateAnswer]":
        """Answer several queries at one accuracy tier.

        Semantically identical to calling :meth:`answer` per query --
        each release is separately noised and separately charged
        (different ranges overlap, so sequential composition applies) --
        but any needed top-up collection runs once up front, which is the
        batch's efficiency point.
        """
        if not queries:
            raise ValueError("at least one query is required")
        self._ensure_feasible(spec)
        return [self.answer(query, spec, consumer=consumer) for query in queries]
