"""Differentially private quantile release via noisy binary search.

:mod:`repro.estimators.quantile` estimates quantiles for the *data owner*;
selling a quantile to a consumer needs privacy.  This module releases one
privately: a binary search over the value domain where every probe is a
noisy cumulative count.

Budgeting: the search makes exactly ``probes`` adaptive releases on the
same data, so sequential composition applies -- each probe gets
``ε/probes`` and the whole release is ε-DP before amplification, with the
final guarantee ``ε' = ln(1 + p(e^ε − 1))`` (Lemma 3.4; the cumulative
count has the same expected sensitivity ``1/p`` as the range count).

Accuracy: ``probes = ⌈log2(domain/resolution)⌉`` suffice to localize the
quantile to ``resolution``; the rank error is driven by the per-probe
noise scale ``(1/p)·probes/ε`` plus the sampling deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.estimators.base import NodeSample
from repro.estimators.quantile import estimate_cumulative
from repro.privacy.amplification import amplified_epsilon
from repro.privacy.laplace import sample_laplace

__all__ = ["PrivateQuantileRelease", "release_quantile"]


@dataclass(frozen=True)
class PrivateQuantileRelease:
    """A released private quantile with its privacy provenance."""

    q: float
    value: float
    epsilon: float
    epsilon_prime: float
    probes: int
    p: float
    n: int


def release_quantile(
    samples: Sequence[NodeSample],
    q: float,
    epsilon: float,
    domain: Tuple[float, float],
    rng: np.random.Generator,
    probes: int = 16,
) -> PrivateQuantileRelease:
    """Release the ``q``-quantile under ε-differential privacy.

    Parameters
    ----------
    samples:
        Per-node rank samples (one collection serves this too).
    q:
        Quantile in ``[0, 1]``.
    epsilon:
        Total pre-amplification budget, split evenly over the probes.
    domain:
        ``(low, high)`` value range to search; the release always lies
        inside it, which is itself a data-independent guarantee.
    rng:
        Noise randomness.
    probes:
        Number of binary-search steps (adaptive sequential releases).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if probes <= 0:
        raise ValueError("probes must be positive")
    low, high = float(domain[0]), float(domain[1])
    if not (math.isfinite(low) and math.isfinite(high) and low < high):
        raise ValueError(f"domain must be a finite ordered pair, got {domain}")
    if not samples:
        raise ValueError("at least one node sample is required")

    non_empty = [s for s in samples if s.node_size > 0]
    if not non_empty:
        raise ValueError("cannot take a quantile of empty data")
    p = non_empty[0].p
    if p <= 0:
        raise ValueError("sampling probability must be positive")
    n = sum(s.node_size for s in samples)
    target = q * n
    per_probe_epsilon = epsilon / probes
    scale = (1.0 / p) / per_probe_epsilon

    lo, hi = low, high
    for _ in range(probes):
        mid = (lo + hi) / 2.0
        noisy_count = estimate_cumulative(samples, mid) + float(
            sample_laplace(scale, rng)
        )
        if noisy_count >= target:
            hi = mid
        else:
            lo = mid
    value = (lo + hi) / 2.0
    return PrivateQuantileRelease(
        q=q,
        value=value,
        epsilon=epsilon,
        epsilon_prime=amplified_epsilon(epsilon, p),
        probes=probes,
        p=p,
        n=n,
    )
