"""The marketplace: wallets, purchases, and trade settlement.

The broker prices and answers; the marketplace adds the money flow of the
system model's trading loop -- consumers hold :class:`Wallet` balances,
purchases debit them atomically (a failed answer never charges), and the
market keeps a settlement history that examples and benches can audit
alongside the broker's billing ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.broker import DataBroker
from repro.core.query import AccuracySpec, PrivateAnswer, RangeQuery
from repro.errors import LedgerError

__all__ = ["Wallet", "Settlement", "Marketplace"]


@dataclass
class Wallet:
    """A consumer's spendable balance."""

    owner: str
    balance: float = 0.0

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise LedgerError("initial balance must be non-negative")

    def deposit(self, amount: float) -> float:
        """Add funds; returns the new balance."""
        if amount < 0:
            raise LedgerError("deposit amount must be non-negative")
        self.balance += amount
        return self.balance

    def withdraw(self, amount: float) -> float:
        """Remove funds; raises :class:`LedgerError` on insufficient balance."""
        if amount < 0:
            raise LedgerError("withdrawal amount must be non-negative")
        if amount > self.balance + 1e-12:
            raise LedgerError(
                f"wallet {self.owner!r}: balance {self.balance:.6g} cannot "
                f"cover {amount:.6g}"
            )
        self.balance -= amount
        return self.balance


@dataclass(frozen=True)
class Settlement:
    """One settled trade: who paid what for which product."""

    consumer: str
    query: RangeQuery
    spec: AccuracySpec
    price: float
    epsilon_prime: float


@dataclass
class Marketplace:
    """Funds-checked front door to a :class:`DataBroker`.

    Parameters
    ----------
    broker:
        The answering broker (owns pricing, privacy, and billing).
    """

    broker: DataBroker
    wallets: Dict[str, Wallet] = field(default_factory=dict)
    settlements: List[Settlement] = field(default_factory=list)

    def open_account(self, consumer: str, funds: float) -> Wallet:
        """Create a wallet with initial ``funds`` for ``consumer``."""
        if consumer in self.wallets:
            raise LedgerError(f"consumer {consumer!r} already has an account")
        wallet = Wallet(owner=consumer, balance=funds)
        self.wallets[consumer] = wallet
        return wallet

    def balance_of(self, consumer: str) -> float:
        """Current balance of one consumer."""
        return self._wallet(consumer).balance

    def _wallet(self, consumer: str) -> Wallet:
        try:
            return self.wallets[consumer]
        except KeyError:
            raise LedgerError(f"consumer {consumer!r} has no account") from None

    def quote(self, spec: AccuracySpec) -> float:
        """List price for an ``(α, δ)`` product."""
        return self.broker.quote(spec)

    def buy(
        self, consumer: str, query: RangeQuery, spec: AccuracySpec
    ) -> PrivateAnswer:
        """Settle one purchase atomically.

        The wallet is checked before the broker runs and debited only after
        the answer is produced, so a failed answer never costs money.
        """
        wallet = self._wallet(consumer)
        price = self.broker.quote(spec)
        if price > wallet.balance + 1e-12:
            raise LedgerError(
                f"consumer {consumer!r}: balance {wallet.balance:.6g} cannot "
                f"cover quoted price {price:.6g}"
            )
        answer = self.broker.answer(query, spec, consumer=consumer)
        wallet.withdraw(answer.price)
        self.settlements.append(
            Settlement(
                consumer=consumer,
                query=query,
                spec=spec,
                price=answer.price,
                epsilon_prime=answer.epsilon_prime,
            )
        )
        return answer

    def settle_answer(self, consumer: str, answer: PrivateAnswer) -> Settlement:
        """Debit the consumer's wallet for an already-produced answer.

        The settlement path shared by :meth:`buy`, :meth:`buy_many`, and
        the serving gateway (which produces answers through the broker
        and settles wallets afterwards).  Raises
        :class:`~repro.errors.LedgerError` when the wallet cannot cover
        the billed price -- callers that need the funds check *before*
        the broker runs should quote and verify up front, as
        :meth:`buy` does.
        """
        wallet = self._wallet(consumer)
        wallet.withdraw(answer.price)
        settlement = Settlement(
            consumer=consumer,
            query=answer.query,
            spec=answer.spec,
            price=answer.price,
            epsilon_prime=answer.epsilon_prime,
        )
        self.settlements.append(settlement)
        return settlement

    def buy_many(
        self,
        consumer: str,
        queries: List[RangeQuery],
        spec: AccuracySpec,
    ) -> List[PrivateAnswer]:
        """Settle a whole batch atomically through the vectorized path.

        The wallet must cover the *sum* of the quoted prices before the
        broker runs; the batch then goes through
        :meth:`~repro.core.broker.DataBroker.answer_batch` (one plan per
        tier, one estimation pass, one noise draw) and every answer is
        settled individually so audits see one settlement per query.
        """
        if not queries:
            raise LedgerError("at least one query is required")
        wallet = self._wallet(consumer)
        price = self.broker.quote(spec)
        total = price * len(queries)
        if total > wallet.balance + 1e-12:
            raise LedgerError(
                f"consumer {consumer!r}: balance {wallet.balance:.6g} cannot "
                f"cover quoted batch price {total:.6g}"
            )
        answers = self.broker.answer_batch(queries, spec, consumer=consumer)
        for query, answer in zip(queries, answers):
            wallet.withdraw(answer.price)
            self.settlements.append(
                Settlement(
                    consumer=consumer,
                    query=query,
                    spec=spec,
                    price=answer.price,
                    epsilon_prime=answer.epsilon_prime,
                )
            )
        return answers

    @property
    def total_settled(self) -> float:
        """Total money moved through the market."""
        return sum(s.price for s in self.settlements)

    def spend_of(self, consumer: str) -> float:
        """Total settled spend of one consumer."""
        return sum(s.price for s in self.settlements if s.consumer == consumer)
