"""Operator reports: one screen of business + privacy + network state.

A broker operator needs three dashboards -- money (who bought what),
privacy (how much of each dataset's budget is gone), and radio (what the
fleet paid in bytes).  :func:`operations_report` composes them from the
live objects into the harness's ASCII format; :func:`price_sheet` renders
the consumer-facing menu for a grid of products.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.broker import DataBroker
from repro.pricing.functions import PricingFunction

__all__ = ["price_sheet", "operations_report"]


def price_sheet(
    pricing: PricingFunction,
    alphas: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
    deltas: Sequence[float] = (0.5, 0.7, 0.9),
) -> str:
    """Render the consumer-facing price menu: one row per α, one column
    per δ (prices rise left-to-right and bottom-to-top for sane sheets)."""
    if not alphas or not deltas:
        raise ValueError("need at least one alpha and one delta")
    headers = ["alpha \\ delta"] + [f"{d:g}" for d in deltas]
    rows: List[Tuple[object, ...]] = []
    for alpha in alphas:
        rows.append(
            (f"{alpha:g}", *(pricing.price(alpha, delta) for delta in deltas))
        )
    return format_table(headers, rows)


def operations_report(
    broker: DataBroker,
    budget_capacity: Optional[float] = None,
) -> str:
    """Compose the operator's one-screen status report.

    Sections: sales summary, top consumers, privacy-budget utilization,
    and network cost.  ``budget_capacity`` overrides the accountant's own
    capacity for the utilization line (useful when the accountant is
    uncapped but an operating target exists).
    """
    ledger = broker.ledger
    station = broker.base_station
    meter = station.network.meter

    sections: List[str] = []

    # --- sales ----------------------------------------------------------
    sales_rows = [
        ("answers_sold", len(ledger)),
        ("total_revenue", ledger.total_revenue()),
        ("datasets", ", ".join(sorted(ledger.revenue_by_dataset())) or "-"),
    ]
    sections.append("== sales ==\n" + format_table(["metric", "value"],
                                                   sales_rows))

    # --- top consumers ---------------------------------------------------
    by_consumer = sorted(
        ledger.revenue_by_consumer().items(),
        key=lambda item: -item[1],
    )[:5]
    if by_consumer:
        sections.append(
            "== top consumers ==\n"
            + format_table(["consumer", "spend"], by_consumer)
        )

    # --- privacy ----------------------------------------------------------
    capacity = (
        budget_capacity
        if budget_capacity is not None
        else broker.accountant.capacity
    )
    spent = broker.accountant.spent(broker.dataset)
    utilization = (
        f"{spent / capacity:.1%}" if capacity not in (0, float("inf"))
        else "uncapped"
    )
    privacy_rows = [
        ("dataset", broker.dataset),
        ("eps_prime_spent", spent),
        ("capacity", capacity),
        ("utilization", utilization),
        ("releases", len(broker.accountant.history(broker.dataset))),
    ]
    sections.append("== privacy ==\n" + format_table(["metric", "value"],
                                                     privacy_rows))

    # --- network ----------------------------------------------------------
    snap = meter.snapshot()
    per_answer = (
        snap["sample_pairs"] / len(ledger) if len(ledger) else 0.0
    )
    network_rows = [
        ("sampling_rate", station.sampling_rate),
        ("messages", snap["messages"]),
        ("wire_bytes", snap["wire_bytes"]),
        ("sample_pairs", snap["sample_pairs"]),
        ("pairs_per_answer", per_answer),
    ]
    sections.append("== network ==\n" + format_table(["metric", "value"],
                                                     network_rows))

    return "\n\n".join(sections)
