"""Public test helpers -- build realistic fixtures in one line.

Downstream users integrating against this library need the same scaffolds
our own test suite uses: a populated base station, a wired broker, seeded
node data.  This module ships them as supported API (in the spirit of
``numpy.testing``), so integration tests elsewhere don't re-derive the
wiring every time.

Everything is deterministic given ``seed`` and built on a loss-free
channel unless asked otherwise.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.broker import DataBroker
from repro.core.service import PrivateRangeCountingService
from repro.estimators.base import NodeData, NodeSample
from repro.iot.base_station import BaseStation
from repro.iot.channel import Channel
from repro.iot.device import SmartDevice
from repro.iot.network import Network
from repro.iot.topology import FlatTopology
from repro.pricing.functions import InverseVariancePricing, PricingFunction
from repro.pricing.variance_model import VarianceModel

__all__ = [
    "make_nodes",
    "make_samples",
    "make_station",
    "make_broker",
    "make_service",
]


def make_nodes(
    k: int = 4,
    size: int = 300,
    low: float = 0.0,
    high: float = 100.0,
    seed: int = 0,
) -> List[NodeData]:
    """``k`` nodes of uniform data on ``[low, high)``, ``size`` records each."""
    if k <= 0 or size < 0:
        raise ValueError("k must be positive and size non-negative")
    rng = np.random.default_rng(seed)
    return [
        NodeData(node_id=i + 1, values=rng.uniform(low, high, size))
        for i in range(k)
    ]


def make_samples(
    nodes: List[NodeData],
    p: float = 0.3,
    seed: int = 1,
) -> List[NodeSample]:
    """Bernoulli(p) samples of every node, from one seeded generator."""
    rng = np.random.default_rng(seed)
    return [node.sample(p, rng) for node in nodes]


def make_station(
    k: int = 4,
    size: int = 300,
    seed: int = 0,
    loss_probability: float = 0.0,
    max_retries: int = 3,
) -> BaseStation:
    """A registered fleet on a flat topology, ready to ``collect``."""
    network = Network(
        topology=FlatTopology.with_devices(k),
        channel=Channel(
            loss_probability=loss_probability,
            rng=np.random.default_rng(seed),
        ),
        max_retries=max_retries,
    )
    station = BaseStation(network=network)
    for node in make_nodes(k=k, size=size, seed=seed + 1):
        station.register(
            SmartDevice(
                node_id=node.node_id,
                data=node,
                rng=np.random.default_rng(seed * 7919 + node.node_id),
            )
        )
    return station


def make_broker(
    k: int = 4,
    size: int = 300,
    seed: int = 0,
    base_price: float = 100.0,
    pricing: Optional[PricingFunction] = None,
    **station_kwargs,
) -> DataBroker:
    """A broker over a fresh fleet (arbitrage-avoiding pricing by default)."""
    station = make_station(k=k, size=size, seed=seed, **station_kwargs)
    if pricing is None:
        pricing = InverseVariancePricing(
            VarianceModel(n=station.n), base_price=base_price
        )
    return DataBroker(
        base_station=station,
        pricing=pricing,
        dataset="default",
        rng=np.random.default_rng(seed + 2),
    )


def make_service(
    n: int = 2000,
    k: int = 4,
    seed: int = 0,
    **kwargs,
) -> PrivateRangeCountingService:
    """The full facade over ``n`` uniform records split across ``k`` devices."""
    values = np.random.default_rng(seed).uniform(0.0, 100.0, n)
    return PrivateRangeCountingService.from_values(
        values, k=k, dataset="default", seed=seed, **kwargs
    )
