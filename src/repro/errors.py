"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can distinguish library failures from programming errors with a single
``except`` clause.  Sub-hierarchies mirror the package layout: query
validation, estimator calibration, privacy planning, pricing and IoT
transport each get their own branch.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidQueryError",
    "InvalidAccuracyError",
    "CalibrationError",
    "InfeasiblePlanError",
    "PrivacyBudgetExceededError",
    "PricingError",
    "ArbitrageError",
    "NetworkError",
    "DeliveryError",
    "InsufficientSamplesError",
    "LedgerError",
    "JournalError",
    "ServingError",
    "ServiceOverloadedError",
    "RateLimitedError",
    "QuotaExceededError",
    "GatewayClosedError",
    "DeadlineExceededError",
    "BrownoutShedError",
    "ClusterError",
    "ShardUnavailableError",
    "StreamingError",
    "StaleEpochError",
    "IngestorCrashError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class InvalidQueryError(ReproError, ValueError):
    """A range query is malformed (e.g. lower bound above upper bound)."""


class InvalidAccuracyError(ReproError, ValueError):
    """An ``(alpha, delta)`` accuracy specification is out of its domain."""


class CalibrationError(ReproError, ValueError):
    """Sampling-rate calibration failed (Theorem 3.3 preconditions broken)."""


class InfeasiblePlanError(ReproError):
    """The privacy optimizer found no feasible ``(alpha', delta', eps)``.

    Raised by the planner when the collected sample is too sparse to meet the
    requested ``(alpha, delta)`` target even before adding any noise, i.e.
    the search space of optimization problem (3) in the paper is empty.
    """


class PrivacyBudgetExceededError(ReproError):
    """A privacy accountant refused a query that would overspend epsilon."""


class PricingError(ReproError, ValueError):
    """A pricing function was constructed or evaluated outside its domain."""


class ArbitrageError(ReproError):
    """A pricing function failed an arbitrage-avoidance requirement."""


class NetworkError(ReproError):
    """Base class for simulated-network transport failures."""


class DeliveryError(NetworkError):
    """A message could not be delivered (node unknown or link down).

    When raised by retry exhaustion the error carries the route context —
    ``attempts`` made, ``hops`` on the path, and the ``sender``/``receiver``
    endpoints — so operators can tell a congested multi-hop link from a
    dead neighbour without re-running the simulation.
    """

    def __init__(
        self,
        message: str,
        attempts: int | None = None,
        hops: int | None = None,
        sender: str | None = None,
        receiver: str | None = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.hops = hops
        self.sender = sender
        self.receiver = receiver


class InsufficientSamplesError(ReproError):
    """The base station holds too few samples for the requested accuracy.

    Carries the sampling rate that *would* satisfy the request so callers
    can trigger a top-up collection round (paper, Section III-A: "the base
    station will inform the underlying nodes to collect more samples").
    """

    def __init__(self, message: str, required_rate: float | None = None):
        super().__init__(message)
        self.required_rate = required_rate


class LedgerError(ReproError):
    """A billing or budget ledger was used inconsistently."""


class JournalError(ReproError):
    """The trade journal was misused or a journal file is corrupt."""


class ServingError(ReproError):
    """Base class for failures of the query-serving gateway layer.

    All serving refusals are *load-shedding* errors: they fire before the
    broker touches any data, so a refused request is never billed and never
    spends privacy budget.
    """


class ServiceOverloadedError(ServingError):
    """The gateway's bounded request queue is full (backpressure shed)."""


class RateLimitedError(ServingError):
    """A consumer exceeded its token-bucket request rate."""


class QuotaExceededError(ServingError):
    """A consumer's spending would exceed its registered deposit/quota."""


class GatewayClosedError(ServingError):
    """A request was submitted to a gateway that is not running."""


class DeadlineExceededError(ServingError):
    """A queued request sat past its ``request_ttl`` deadline.

    Fired at dispatch time, before the broker touches any data: a
    deadline-exceeded request is never billed and never spends privacy
    budget — it fails fast instead of riding a late batch.
    """


class BrownoutShedError(ServingError):
    """The gateway is at the top brownout rung and shed this request.

    Like every serving refusal it fires before the broker touches data, so
    a shed request is never billed and never spends privacy budget.  Carries
    a ``retry_after`` hint (seconds) so well-behaved consumers back off for
    at least one brownout evaluation window instead of hammering a gateway
    that has already told them it is saturated.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class ClusterError(ReproError):
    """Base class for failures of the multi-station federation layer."""


class ShardUnavailableError(ClusterError):
    """A shard cannot answer: its primary station is down and no live
    replica can take over the gather step."""


class StreamingError(ReproError):
    """Base class for failures of the continuous-ingestion layer."""


class StaleEpochError(StreamingError):
    """A batch arrived for an epoch that is already sealed (or not yet
    open).

    Sealed epochs are immutable: their per-node samples were drawn at the
    epoch's shared rate and journaled, so accepting late records would
    silently break both the estimator's rate invariant and the window
    log's bit-exact recovery guarantee.  Carries the offending and the
    currently open epoch indexes for operator triage.
    """

    def __init__(
        self,
        message: str,
        epoch: int | None = None,
        open_epoch: int | None = None,
    ):
        super().__init__(message)
        self.epoch = epoch
        self.open_epoch = open_epoch


class IngestorCrashError(StreamingError):
    """A (simulated) ingestor crash between journaling a roll and applying
    it -- the chaos harness's mid-roll kill point.  Recovery replays the
    window log, which already holds the sealed epoch."""
