"""Coordinator-side worker process manager.

:class:`WorkerPool` owns one spawned worker process per key (a shard id,
or ``"stream"`` for the streaming window worker).  Each worker gets a
duplex pipe and the name of the control segment it should follow;
requests are serialised per worker under a lock, while distinct workers
serve concurrently -- the pipe ``recv`` releases the GIL, which is what
lets the broker's thread fan-out overlap multi-core computation.

Crash handling: a send/recv that hits a broken pipe (the worker was
SIGKILLed, OOM-killed, or died on its own) triggers exactly one respawn;
the fresh worker re-attaches the same control segment at the *current*
``store_version`` and the request is replayed.  A second failure raises
:class:`WorkerCrashError` so the caller can fall back to bit-identical
local computation.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.workers.worker import worker_main

__all__ = ["WorkerCrashError", "WorkerHandle", "WorkerPool"]

_JOIN_TIMEOUT_S = 2.0


class WorkerCrashError(RuntimeError):
    """A worker died and its one respawn-and-replay attempt also failed."""


@dataclass
class WorkerHandle:
    """One live worker process plus its coordinator-side plumbing.

    ``process`` is a spawn-context ``Process``; ``conn`` the coordinator
    end of its duplex pipe; ``lock`` serialises round-trips per worker.
    (Typed ``Any``: the multiprocessing stubs name these differently
    across versions.)
    """

    key: Hashable
    control_name: str
    process: Any
    conn: Any
    lock: Any = field(default_factory=threading.Lock)
    respawns: int = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """Spawn, talk to, respawn, and reap per-key worker processes."""

    def __init__(self) -> None:
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: Dict[Hashable, WorkerHandle] = {}
        self._lock = threading.Lock()
        self._closed = False

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def keys(self) -> List[Hashable]:
        return list(self._workers)

    def worker_pids(self) -> Dict[Hashable, Optional[int]]:
        """Live worker pids by key (chaos injection targets these)."""
        return {key: handle.pid for key, handle in self._workers.items()}

    def respawn_count(self, key: Hashable) -> int:
        handle = self._workers.get(key)
        return 0 if handle is None else handle.respawns

    def ensure_worker(self, key: Hashable, control_name: str) -> WorkerHandle:
        """Spawn (once) the worker for ``key`` following ``control_name``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            handle = self._workers.get(key)
            if handle is not None:
                return handle
            handle = self._spawn(key, control_name)
            self._workers[key] = handle
            return handle

    def _spawn(self, key: Hashable, control_name: str) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, control_name),
            name=f"repro-worker-{key}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return WorkerHandle(
            key=key,
            control_name=control_name,
            process=process,
            conn=parent_conn,
        )

    def request(self, key: Hashable, payload: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Round-trip one request to ``key``'s worker, respawning once on crash.

        The respawned worker re-attaches the control segment, so it serves
        the current ``store_version`` without any coordinator-side state
        transfer -- the store itself is the recovery point.
        """
        handle = self._workers.get(key)
        if handle is None:
            raise KeyError(f"no worker for key {key!r}")
        with handle.lock:
            try:
                return self._round_trip(handle, payload)
            except (BrokenPipeError, ConnectionResetError, EOFError, OSError):
                replacement = self._respawn_locked(handle)
                try:
                    return self._round_trip(replacement, payload)
                except (BrokenPipeError, ConnectionResetError,
                        EOFError, OSError) as exc:
                    raise WorkerCrashError(
                        f"worker {key!r} died twice on one request"
                    ) from exc

    @staticmethod
    def _round_trip(
        handle: WorkerHandle, payload: Tuple[Any, ...]
    ) -> Tuple[Any, ...]:
        handle.conn.send(payload)
        return tuple(handle.conn.recv())

    def _respawn_locked(self, handle: WorkerHandle) -> WorkerHandle:
        """Replace a dead worker in place (caller holds ``handle.lock``)."""
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if handle.process.is_alive():  # pragma: no cover - raced exit
            handle.process.terminate()
        handle.process.join(_JOIN_TIMEOUT_S)
        fresh = self._spawn(handle.key, handle.control_name)
        handle.process = fresh.process
        handle.conn = fresh.conn
        handle.respawns += 1
        return handle

    def ping(self, key: Hashable) -> int:
        """Liveness probe; returns the worker's pid."""
        reply = self.request(key, ("ping",))
        if reply[0] != "pong":  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected ping reply: {reply!r}")
        return int(reply[1])

    def close(self) -> None:
        """Shut every worker down cooperatively, then forcefully.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._workers.clear()
        for handle in workers:
            with handle.lock:
                try:
                    handle.conn.send(("shutdown",))
                    handle.conn.recv()
                except (BrokenPipeError, ConnectionResetError,
                        EOFError, OSError):
                    pass
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                handle.process.join(_JOIN_TIMEOUT_S)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(_JOIN_TIMEOUT_S)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # repro-lint: shed -- GC-time close; interpreter may be tearing down
            pass
