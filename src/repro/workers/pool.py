"""Coordinator-side worker process manager.

:class:`WorkerPool` owns one spawned worker process per key (a shard id,
or ``"stream"`` for the streaming window worker).  Each worker gets a
duplex pipe and the name of the control segment it should follow;
requests are serialised per worker under a lock, while distinct workers
serve concurrently -- the pipe ``recv`` releases the GIL, which is what
lets the broker's thread fan-out overlap multi-core computation.

Crash handling: a send/recv that hits a broken pipe (the worker was
SIGKILLed, OOM-killed, or died on its own) triggers exactly one respawn;
the fresh worker re-attaches the same control segment at the *current*
``store_version`` and the request is replayed.  A second failure raises
:class:`WorkerCrashError` so the caller can fall back to bit-identical
local computation.

Stall handling is deliberately different: with :attr:`WorkerPool.
request_timeout` set, a worker that does not reply in time raises
:class:`WorkerTimeoutError` *without* a respawn -- a stalled worker
(SIGSTOP, scheduler starvation, page-cache storm) is usually alive and
holding the shared-memory store attached; killing it would turn a
latency blip into a cold respawn.  Requests are sequence-tagged so the
stale reply a resumed worker eventually sends is recognised and
discarded instead of being mistaken for the next request's answer.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.resilience.deadline import check_deadline
from repro.workers.worker import worker_main

__all__ = [
    "WorkerCrashError",
    "WorkerHandle",
    "WorkerPool",
    "WorkerTimeoutError",
]

_JOIN_TIMEOUT_S = 2.0


class WorkerCrashError(RuntimeError):
    """A worker died and its one respawn-and-replay attempt also failed."""


class WorkerTimeoutError(WorkerCrashError):
    """A worker failed to reply within the pool's request timeout.

    Subclasses :class:`WorkerCrashError` so every existing fallback path
    (bit-identical local computation) also absorbs stalls -- but the
    pool does **not** respawn on timeout: the worker is likely stalled
    rather than dead, and its late reply is discarded by sequence tag
    on the next round-trip.
    """


@dataclass
class WorkerHandle:
    """One live worker process plus its coordinator-side plumbing.

    ``process`` is a spawn-context ``Process``; ``conn`` the coordinator
    end of its duplex pipe; ``lock`` serialises round-trips per worker.
    (Typed ``Any``: the multiprocessing stubs name these differently
    across versions.)
    """

    key: Hashable
    control_name: str
    process: Any
    conn: Any
    lock: Any = field(default_factory=threading.Lock)
    respawns: int = 0
    #: Monotonic per-handle request tag; replies carrying an older tag
    #: are leftovers from timed-out requests and are discarded.
    seq: int = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """Spawn, talk to, respawn, and reap per-key worker processes."""

    def __init__(self) -> None:
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: Dict[Hashable, WorkerHandle] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: Seconds to wait for any reply before raising
        #: :class:`WorkerTimeoutError` (no respawn).  ``None`` (default)
        #: waits forever -- the pre-stall behaviour.  Chaos drills set
        #: this when injecting SIGSTOP stalls so coordinators shed to
        #: local computation instead of hanging.
        self.request_timeout: Optional[float] = None

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def keys(self) -> List[Hashable]:
        return list(self._workers)

    def worker_pids(self) -> Dict[Hashable, Optional[int]]:
        """Live worker pids by key (chaos injection targets these)."""
        return {key: handle.pid for key, handle in self._workers.items()}

    def respawn_count(self, key: Hashable) -> int:
        handle = self._workers.get(key)
        return 0 if handle is None else handle.respawns

    def ensure_worker(self, key: Hashable, control_name: str) -> WorkerHandle:
        """Spawn (once) the worker for ``key`` following ``control_name``."""
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            handle = self._workers.get(key)
            if handle is not None:
                return handle
            handle = self._spawn(key, control_name)
            self._workers[key] = handle
            return handle

    def _spawn(self, key: Hashable, control_name: str) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, control_name),
            name=f"repro-worker-{key}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return WorkerHandle(
            key=key,
            control_name=control_name,
            process=process,
            conn=parent_conn,
        )

    def request(
        self,
        key: Hashable,
        payload: Tuple[Any, ...],
        timeout: Optional[float] = None,
    ) -> Tuple[Any, ...]:
        """Round-trip one request to ``key``'s worker, respawning once on crash.

        The respawned worker re-attaches the control segment, so it serves
        the current ``store_version`` without any coordinator-side state
        transfer -- the store itself is the recovery point.

        ``timeout`` (default: the pool's :attr:`request_timeout`) bounds
        the wait for a reply; exceeding it raises
        :class:`WorkerTimeoutError` without a respawn.  An ambient
        request deadline (installed by the serving gateway) is checked
        *before* the send, so an already-expired request never queues
        pipe work.
        """
        check_deadline("workers.request")
        handle = self._workers.get(key)
        if handle is None:
            raise KeyError(f"no worker for key {key!r}")
        wait = self.request_timeout if timeout is None else timeout
        with handle.lock:
            try:
                return self._round_trip(handle, payload, wait)
            except (BrokenPipeError, ConnectionResetError, EOFError, OSError):
                replacement = self._respawn_locked(handle)
                try:
                    return self._round_trip(replacement, payload, wait)
                except (BrokenPipeError, ConnectionResetError,
                        EOFError, OSError) as exc:
                    raise WorkerCrashError(
                        f"worker {key!r} died twice on one request"
                    ) from exc

    @staticmethod
    def _round_trip(
        handle: WorkerHandle,
        payload: Tuple[Any, ...],
        timeout: Optional[float],
    ) -> Tuple[Any, ...]:
        handle.seq += 1
        seq = handle.seq
        handle.conn.send((seq, payload))
        limit = None if timeout is None else time.monotonic() + timeout
        while True:
            if limit is not None:
                remaining = limit - time.monotonic()
                if remaining <= 0.0 or not handle.conn.poll(remaining):
                    raise WorkerTimeoutError(
                        f"worker {handle.key!r} did not reply within "
                        f"{timeout:.3f}s (stall suspected; not respawning)"
                    )
            tag, reply = handle.conn.recv()
            if tag == seq:
                return tuple(reply)
            # An older tag is the late answer to a request that already
            # timed out; drop it and keep waiting for ours.

    def _respawn_locked(self, handle: WorkerHandle) -> WorkerHandle:
        """Replace a dead worker in place (caller holds ``handle.lock``)."""
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if handle.process.is_alive():  # pragma: no cover - raced exit
            handle.process.terminate()
        handle.process.join(_JOIN_TIMEOUT_S)
        fresh = self._spawn(handle.key, handle.control_name)
        handle.process = fresh.process
        handle.conn = fresh.conn
        handle.respawns += 1
        return handle

    def ping(self, key: Hashable) -> int:
        """Liveness probe; returns the worker's pid."""
        reply = self.request(key, ("ping",))
        if reply[0] != "pong":  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected ping reply: {reply!r}")
        return int(reply[1])

    def close(self) -> None:
        """Shut every worker down cooperatively, then forcefully.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._workers.clear()
        for handle in workers:
            with handle.lock:
                try:
                    handle.seq += 1
                    handle.conn.send((handle.seq, ("shutdown",)))
                    # Drain stale replies (timed-out requests) until the
                    # shutdown ack or the bounded wait runs out; a worker
                    # stalled under SIGSTOP never acks and is reaped below.
                    while handle.conn.poll(_JOIN_TIMEOUT_S):
                        tag, _reply = handle.conn.recv()
                        if tag == handle.seq:
                            break
                except (BrokenPipeError, ConnectionResetError,
                        EOFError, OSError):
                    pass
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                handle.process.join(_JOIN_TIMEOUT_S)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(_JOIN_TIMEOUT_S)
                if handle.process.is_alive():  # pragma: no cover - stalled worker
                    # SIGTERM is not delivered to a SIGSTOPped process;
                    # SIGKILL reaps it regardless of run state.
                    handle.process.kill()
                    handle.process.join(_JOIN_TIMEOUT_S)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # repro-lint: shed -- GC-time close; interpreter may be tearing down
            pass
