"""Multi-process shard worker runtime over a shared-memory sample store.

The GIL caps every thread-based layer in this repo at one core.  This
package escapes it for the one hot, *pure* computation in the serving
path -- RankCounting estimation -- while leaving everything that touches
RNG state, the ledger, the accountant, or the trade journal in the
coordinator process, so accounting is bit-identical to the threaded path.

The pieces:

* :mod:`repro.workers.store` -- an immutable, versioned sample store laid
  out in ``multiprocessing.shared_memory`` segments, published by a single
  writer with a seqlock-style atomic version-bump commit protocol.
* :mod:`repro.workers.worker` -- the spawn-safe worker process main loop.
  Workers are read-only consumers of the store and never construct or
  consume RNG state (enforced by RL002's strict mode over this package).
* :mod:`repro.workers.pool` -- :class:`WorkerPool`, the coordinator-side
  process manager: spawn, request/response over pipes, crash detection,
  respawn + re-attach at the current ``store_version``.
* :mod:`repro.workers.backend` -- glue that slots the pool behind the
  existing duck-typed broker surfaces (``ClusterBroker.use_processes()``,
  ``StreamingBroker.use_processes()``).

See ``docs/WORKERS.md`` for the commit-protocol diagram and guidance on
choosing threads vs processes.
"""

from repro.workers.backend import (
    ClusterProcessBackend,
    RemoteShardEstimator,
    StreamingProcessBackend,
)
from repro.workers.pool import WorkerCrashError, WorkerPool
from repro.workers.store import (
    ControlBlock,
    StorePublisher,
    StoreReader,
    TornStoreError,
)

__all__ = [
    "ClusterProcessBackend",
    "ControlBlock",
    "RemoteShardEstimator",
    "StorePublisher",
    "StoreReader",
    "StreamingProcessBackend",
    "TornStoreError",
    "WorkerCrashError",
    "WorkerPool",
]
