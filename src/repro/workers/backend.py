"""Process-execution backends behind the duck-typed broker surfaces.

Two backends, one per broker shape:

* :class:`ClusterProcessBackend` -- worker processes behind the cluster
  broker.  By default one worker per shard: each shard's primary station
  gets a :class:`StorePublisher` hooked to its commit listeners (publish
  happens inside the same commit that bumps ``store_version``, so the
  store a worker sees is never behind the samples the coordinator
  planned against), and the shard's primary estimator is wrapped in a
  :class:`RemoteShardEstimator` that forwards batch estimation to the
  worker.  With ``attach(shards, workers=N)`` several shards share one
  worker through a *shared* store (one group per member shard, version =
  sum of member ``store_version``\\ s) -- and the broker's pre-scatter
  :meth:`ClusterProcessBackend.prime` hook collapses those shards'
  sub-queries into a single ``estimate_multi`` pipe round-trip.
* :class:`StreamingProcessBackend` -- one worker for the merged window.
  Every committed roll republishes the whole window (one group per
  epoch), and a pooled window estimate is a single worker round-trip.

Both backends only ever offload the *pure* RankCounting computation;
planning, Laplace draws, journaling, and accounting stay in the
coordinator, so switching backends never changes an answer or a book
entry (asserted by ``tests/workers/test_backend_identity.py``).  Every
fallback path -- crashed worker, stale store, foreign estimator input --
recomputes locally with the exact same estimator, trading throughput for
the same bits.
"""

from __future__ import annotations

import threading
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.estimators.base import EstimateResult, NodeSample
from repro.estimators.rank import RankCountingEstimator
from repro.workers.pool import WorkerCrashError, WorkerPool
from repro.workers.store import StorePublisher

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serving.telemetry import MetricsRegistry

__all__ = [
    "ClusterProcessBackend",
    "RemoteShardEstimator",
    "StreamingProcessBackend",
]


def _require_rank_counting(estimator: object) -> None:
    """Workers always run RankCounting; refuse to shadow a custom estimator."""
    if not isinstance(estimator, RankCountingEstimator):
        raise ValueError(
            "the process backend offloads RankCounting estimation; broker "
            f"estimator {getattr(estimator, 'name', estimator)!r} is not "
            "RankCountingEstimator"
        )


class _BackendCounters:
    """Thread-safe offload/fallback tallies (tests assert offload happened)."""

    def __init__(self, telemetry: "Optional[MetricsRegistry]" = None) -> None:
        self._lock = threading.Lock()
        self._telemetry = telemetry
        self.offloads = 0
        self.fallbacks = 0

    def offload(self) -> None:
        with self._lock:
            self.offloads += 1
        if self._telemetry is not None:
            self._telemetry.inc("workers.offloads")

    def fallback(self) -> None:
        with self._lock:
            self.fallbacks += 1
        if self._telemetry is not None:
            self._telemetry.inc("workers.fallbacks")


class RemoteShardEstimator:
    """Estimator proxy: batch estimation in a worker, everything else local.

    Conforms to the :class:`~repro.estimators.base.RangeCountingEstimator`
    protocol so it can sit in ``DataBroker.estimator`` unchanged.  The
    scalar :meth:`estimate` path (quotes, planners, diagnostics) stays
    local -- it is cold and needs the full :class:`EstimateResult`; the
    hot vectorized :meth:`estimate_many` path forwards ``(store_version,
    ranges)`` to the shard's worker.

    The proxy only offloads when the ``samples`` argument is the
    station's *current* committed sample list (cheap element-identity
    check against the station's cache) -- a concurrent top-up between the
    broker's read and this call falls back to local computation, which is
    bit-identical anyway.

    When several shards share one worker, ``group_index`` names this
    shard's group in the shared store and ``version_stations`` lists
    every member station (in group order); the published version is the
    *sum* of member ``store_version``\\ s, so any member's top-up
    invalidates the whole group's store exactly once.  A pre-scatter
    :meth:`prime_store` deposit (one ``estimate_multi`` round-trip for
    all co-hosted shards) is consumed here without a second round-trip
    when its ``(version, ranges)`` key still matches.
    """

    def __init__(
        self,
        pool: WorkerPool,
        key: Hashable,
        publisher: StorePublisher,
        inner: RankCountingEstimator,
        station: Any,
        counters: Optional[_BackendCounters] = None,
        group_index: int = 0,
        version_stations: Optional[Sequence[Any]] = None,
    ) -> None:
        _require_rank_counting(inner)
        self._pool = pool
        self._key = key
        self._publisher = publisher
        self._inner = inner
        self._station = station
        self._counters = counters or _BackendCounters()
        self._group_index = int(group_index)
        self._version_stations = (
            list(version_stations) if version_stations is not None else None
        )
        # One-slot prime buffer: (key, totals) deposited by the backend's
        # pre-scatter batch round-trip, consumed by the next matching
        # estimate_many on this shard's scatter thread.
        self._primed: Optional[Tuple[Tuple[int, Tuple[Tuple[float, float], ...]], np.ndarray]] = None

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def inner(self) -> RankCountingEstimator:
        """The wrapped local estimator (restored by ``use_threads``)."""
        return self._inner

    def estimate(
        self, samples: Sequence[NodeSample], low: float, high: float
    ) -> EstimateResult:
        return self._inner.estimate(samples, low, high)

    def _committed_version(self, samples: Sequence[NodeSample]) -> Optional[int]:
        """The store version ``samples`` was committed at, or None.

        None means the argument is not the station's current sample list
        (a top-up raced in, or the caller passed foreign samples) and the
        request must be computed locally.
        """
        station = self._station
        try:
            version = int(station.store_version)
            current = station.samples()
        except Exception:  # repro-lint: shed -- any station hiccup means fall back to local compute
            return None
        if len(current) != len(samples):
            return None
        for mine, theirs in zip(samples, current):
            if mine is not theirs:
                return None
        if int(station.store_version) != version:
            return None
        if self._version_stations is None:
            return version
        # Shared store: the published version sums every member's
        # store_version.  A peer commit racing this sum just makes the
        # worker answer "stale" (republish-and-retry, then local
        # fallback) -- this shard's group samples are pinned by the
        # identity check above either way.
        try:
            combined = sum(
                int(peer.store_version) for peer in self._version_stations
            )
        except Exception:  # repro-lint: shed -- any station hiccup means fall back to local compute
            return None
        if int(station.store_version) != version:
            return None
        return combined

    def prime_store(
        self,
        version: int,
        ranges: Sequence[Tuple[float, float]],
        totals: Sequence[float],
    ) -> None:
        """Deposit pre-scattered worker totals for ``(version, ranges)``.

        Called by :meth:`ClusterProcessBackend.prime` on the gather
        thread *before* the scatter fans out; the deposit is single-use
        and only served while the committed version still matches, so a
        racing top-up silently degrades to the normal round-trip.
        """
        key = (
            int(version),
            tuple((float(low), float(high)) for low, high in ranges),
        )
        self._primed = (key, np.asarray(totals, dtype=np.float64))

    def estimate_many(
        self,
        samples: Sequence[NodeSample],
        ranges: Sequence[Tuple[float, float]],
    ) -> np.ndarray:
        version = self._committed_version(samples)
        ranges_f = [(float(low), float(high)) for low, high in ranges]
        if version is not None:
            primed = self._primed
            if primed is not None:
                self._primed = None
                if primed[0] == (version, tuple(ranges_f)):
                    self._counters.offload()
                    return primed[1].copy()
            if self._ensure_published(version):
                payload = (
                    "estimate_many", version, self._group_index, ranges_f,
                )
                totals = self._round_trip(version, payload)
                if totals is not None:
                    self._counters.offload()
                    return totals
        self._counters.fallback()
        return self._inner.estimate_many(samples, ranges)

    def _ensure_published(self, version: int) -> bool:
        if self._publisher.version == version:
            return True
        self._publisher.republish()
        return self._publisher.version == version

    def _round_trip(
        self, version: int, payload: Tuple[Any, ...]
    ) -> Optional[np.ndarray]:
        for attempt in range(2):
            try:
                reply = self._pool.request(self._key, payload)
            except (WorkerCrashError, KeyError):
                return None
            if reply[0] == "ok":
                return np.asarray(reply[1], dtype=np.float64)
            if reply[0] == "stale" and attempt == 0:
                # Worker never saw this version (e.g. it was respawned
                # after the publish); push the store again and retry once.
                if not self._ensure_published(version):
                    return None
                continue
            return None
        return None  # pragma: no cover - loop always returns


class _WorkerGroup:
    """One worker process serving one or more shards through one store."""

    def __init__(
        self,
        key: Hashable,
        publisher: StorePublisher,
        shards: List[Any],
        stations: List[Any],
    ) -> None:
        self.key = key
        self.publisher = publisher
        self.shards = shards
        self.stations = stations
        self.proxies: "List[RemoteShardEstimator]" = []

    def version(self) -> int:
        return sum(int(station.store_version) for station in self.stations)

    def ensure_published(self, version: int) -> bool:
        if self.publisher.version == version:
            return True
        self.publisher.republish()
        return self.publisher.version == version


class ClusterProcessBackend:
    """Worker processes behind :class:`ClusterBroker`.

    ``attach`` wraps every shard's primary estimator and starts the
    workers; ``detach`` restores the original estimators, shuts the
    workers down, and unlinks every shared-memory segment.  Replica
    (failover) brokers intentionally stay local: degraded gathers are
    rare and their values are identical either way.

    ``workers=N`` (default: one per shard) round-robins shards onto
    ``N`` workers.  Co-hosted shards publish through one *shared* store
    -- one group per member shard, version = sum of member
    ``store_version``\\ s -- and :meth:`prime` answers all of their
    sub-queries in a single ``estimate_multi`` pipe round-trip before
    the broker's scatter fans out.
    """

    def __init__(self, telemetry: "Optional[MetricsRegistry]" = None) -> None:
        self.pool = WorkerPool()
        self.counters = _BackendCounters(telemetry)
        self._attached: "List[Tuple[Any, Any]]" = []
        self._groups: "List[_WorkerGroup]" = []
        self._active = False

    @property
    def shard_keys(self) -> List[Hashable]:
        return [shard.shard_id for shard, _inner in self._attached]

    def worker_pids(self) -> Dict[Hashable, Optional[int]]:
        return self.pool.worker_pids()

    def attach(
        self, shards: Sequence[Any], workers: Optional[int] = None
    ) -> None:
        if self._active:
            return
        self._active = True
        count = (
            len(shards) if workers is None
            else max(1, min(int(workers), len(shards)))
        )
        buckets: "List[List[Any]]" = [[] for _ in range(count)]
        for index, shard in enumerate(shards):
            buckets[index % count].append(shard)
        for bucket_index, members in enumerate(buckets):
            if not members:
                continue
            for shard in members:
                _require_rank_counting(shard.primary.estimator)
            stations = [shard.primary.base_station for shard in members]
            if len(members) == 1:
                key: Hashable = members[0].shard_id
                station = stations[0]
                publisher = StorePublisher(
                    lambda station=station: (
                        station.store_version, [station.samples()]
                    )
                )
            else:
                key = f"group{bucket_index}"
                publisher = StorePublisher(
                    lambda stations=stations: (
                        sum(int(s.store_version) for s in stations),
                        [s.samples() for s in stations],
                    )
                )
            group = _WorkerGroup(key, publisher, list(members), stations)
            try:
                publisher.republish()
            except Exception:  # repro-lint: shed -- station not collected yet; commit listener publishes later
                pass
            for station in stations:
                station.subscribe_commits(
                    lambda version, group=group, station=station:
                    self._on_commit(group, station, version)
                )
            self.pool.ensure_worker(key, publisher.control_name)
            for member_index, shard in enumerate(members):
                primary = shard.primary
                inner = primary.estimator
                proxy = RemoteShardEstimator(
                    pool=self.pool,
                    key=key,
                    publisher=publisher,
                    inner=inner,
                    station=primary.base_station,
                    counters=self.counters,
                    group_index=member_index,
                    version_stations=(
                        stations if len(members) > 1 else None
                    ),
                )
                primary.estimator = proxy
                group.proxies.append(proxy)
                self._attached.append((shard, inner))
            self._groups.append(group)

    def _on_commit(
        self, group: _WorkerGroup, station: Any, version: int
    ) -> None:
        if not self._active:
            return
        try:
            if len(group.stations) == 1:
                group.publisher.publish(version, [station.samples()])
            else:
                # Shared store: re-read every member so the combined
                # version the supply computes includes this commit.
                group.publisher.republish()
        except Exception:  # repro-lint: shed -- a publish failure must never break the commit path; estimate-time republish or local fallback covers it
            pass

    def prime(
        self,
        ranges_by_shard: "Dict[int, Sequence[Tuple[float, float]]]",
    ) -> None:
        """Batch co-hosted shards' sub-queries into one round-trip each.

        For every worker serving two or more of the shards named in
        ``ranges_by_shard``, one ``estimate_multi`` request fetches all
        of their batch totals at once; each member proxy's
        :meth:`RemoteShardEstimator.prime_store` deposit is then served
        locally when the scatter reaches that shard.  Best-effort: any
        mismatch (raced commit, shard-broker cache partially filtering
        the batch, worker stall) falls back to the normal per-shard
        round-trip with bit-identical results.
        """
        if not self._active:
            return
        for group in self._groups:
            members = [
                (member_index, shard, proxy)
                for member_index, (shard, proxy)
                in enumerate(zip(group.shards, group.proxies))
                if ranges_by_shard.get(shard.shard_id)
            ]
            if len(members) < 2:
                continue
            version = group.version()
            if not group.ensure_published(version):
                continue
            payload = (
                "estimate_multi", version,
                [
                    (
                        member_index,
                        [
                            (float(low), float(high))
                            for low, high in ranges_by_shard[shard.shard_id]
                        ],
                    )
                    for member_index, shard, _proxy in members
                ],
            )
            try:
                reply = self.pool.request(group.key, payload)
            except (WorkerCrashError, KeyError):
                continue
            if reply[0] != "ok":
                continue
            for (_, shard, proxy), totals in zip(members, reply[1]):
                proxy.prime_store(
                    version, ranges_by_shard[shard.shard_id], totals
                )

    def detach(self) -> None:
        """Restore local estimators and release every process/segment."""
        if not self._active:
            return
        self._active = False
        for shard, inner in self._attached:
            if isinstance(shard.primary.estimator, RemoteShardEstimator):
                shard.primary.estimator = inner
        for group in self._groups:
            group.publisher.close()
        self._attached.clear()
        self._groups.clear()
        self.pool.close()


class StreamingProcessBackend:
    """One window worker behind :class:`StreamingBroker`.

    The whole merged window is one store: group ``g`` holds epoch ``g``'s
    samples (oldest first), so a pooled estimate -- the per-epoch sum
    :func:`~repro.streaming.window.pooled_estimate_many` computes -- is a
    single ``pooled_many`` round-trip.
    """

    KEY = "stream"

    def __init__(
        self,
        station: Any,
        estimator: object,
        telemetry: "Optional[MetricsRegistry]" = None,
    ) -> None:
        _require_rank_counting(estimator)
        self.station = station
        self.pool = WorkerPool()
        self.counters = _BackendCounters(telemetry)
        self._active = True
        self.publisher = StorePublisher(self._supply)
        station.subscribe_commits(self._on_commit)
        self.publisher.republish()
        self.pool.ensure_worker(self.KEY, self.publisher.control_name)

    def _supply(self) -> Tuple[int, List[List[NodeSample]]]:
        snapshot = self.station.snapshot()
        return (
            snapshot.store_version,
            [list(summary.samples) for summary in snapshot.epochs],
        )

    def _on_commit(self, version: int) -> None:
        if not self._active:
            return
        try:
            self.publisher.republish()
        except Exception:  # repro-lint: shed -- a publish failure must never break the commit path; estimate-time republish or local fallback covers it
            pass

    def worker_pids(self) -> Dict[Hashable, Optional[int]]:
        return self.pool.worker_pids()

    def pooled_estimate_many(
        self,
        snapshot: Any,
        ranges: Sequence[Tuple[float, float]],
    ) -> Optional[np.ndarray]:
        """Window estimate via the worker, or None to signal local fallback."""
        version = int(snapshot.store_version)
        if not self._ensure_published(version):
            self.counters.fallback()
            return None
        payload = (
            "pooled_many", version,
            [(float(low), float(high)) for low, high in ranges],
        )
        for attempt in range(2):
            try:
                reply = self.pool.request(self.KEY, payload)
            except WorkerCrashError:
                break
            if reply[0] == "ok":
                self.counters.offload()
                return np.asarray(reply[1], dtype=np.float64)
            if reply[0] == "stale" and attempt == 0:
                if not self._ensure_published(version):
                    break
                continue
            break
        self.counters.fallback()
        return None

    def _ensure_published(self, version: int) -> bool:
        if self.publisher.version == version:
            return True
        self.publisher.republish()
        return self.publisher.version == version

    def close(self) -> None:
        if not self._active:
            return
        self._active = False
        self.publisher.close()
        self.pool.close()
