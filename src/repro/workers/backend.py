"""Process-execution backends behind the duck-typed broker surfaces.

Two backends, one per broker shape:

* :class:`ClusterProcessBackend` -- one worker process per shard.  Each
  shard's primary station gets a :class:`StorePublisher` hooked to its
  commit listeners (publish happens inside the same commit that bumps
  ``store_version``, so the store a worker sees is never behind the
  samples the coordinator planned against), and the shard's primary
  estimator is wrapped in a :class:`RemoteShardEstimator` that forwards
  batch estimation to the worker.
* :class:`StreamingProcessBackend` -- one worker for the merged window.
  Every committed roll republishes the whole window (one group per
  epoch), and a pooled window estimate is a single worker round-trip.

Both backends only ever offload the *pure* RankCounting computation;
planning, Laplace draws, journaling, and accounting stay in the
coordinator, so switching backends never changes an answer or a book
entry (asserted by ``tests/workers/test_backend_identity.py``).  Every
fallback path -- crashed worker, stale store, foreign estimator input --
recomputes locally with the exact same estimator, trading throughput for
the same bits.
"""

from __future__ import annotations

import threading
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.estimators.base import EstimateResult, NodeSample
from repro.estimators.rank import RankCountingEstimator
from repro.workers.pool import WorkerCrashError, WorkerPool
from repro.workers.store import StorePublisher

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serving.telemetry import MetricsRegistry

__all__ = [
    "ClusterProcessBackend",
    "RemoteShardEstimator",
    "StreamingProcessBackend",
]


def _require_rank_counting(estimator: object) -> None:
    """Workers always run RankCounting; refuse to shadow a custom estimator."""
    if not isinstance(estimator, RankCountingEstimator):
        raise ValueError(
            "the process backend offloads RankCounting estimation; broker "
            f"estimator {getattr(estimator, 'name', estimator)!r} is not "
            "RankCountingEstimator"
        )


class _BackendCounters:
    """Thread-safe offload/fallback tallies (tests assert offload happened)."""

    def __init__(self, telemetry: "Optional[MetricsRegistry]" = None) -> None:
        self._lock = threading.Lock()
        self._telemetry = telemetry
        self.offloads = 0
        self.fallbacks = 0

    def offload(self) -> None:
        with self._lock:
            self.offloads += 1
        if self._telemetry is not None:
            self._telemetry.inc("workers.offloads")

    def fallback(self) -> None:
        with self._lock:
            self.fallbacks += 1
        if self._telemetry is not None:
            self._telemetry.inc("workers.fallbacks")


class RemoteShardEstimator:
    """Estimator proxy: batch estimation in a worker, everything else local.

    Conforms to the :class:`~repro.estimators.base.RangeCountingEstimator`
    protocol so it can sit in ``DataBroker.estimator`` unchanged.  The
    scalar :meth:`estimate` path (quotes, planners, diagnostics) stays
    local -- it is cold and needs the full :class:`EstimateResult`; the
    hot vectorized :meth:`estimate_many` path forwards ``(store_version,
    ranges)`` to the shard's worker.

    The proxy only offloads when the ``samples`` argument is the
    station's *current* committed sample list (cheap element-identity
    check against the station's cache) -- a concurrent top-up between the
    broker's read and this call falls back to local computation, which is
    bit-identical anyway.
    """

    def __init__(
        self,
        pool: WorkerPool,
        key: Hashable,
        publisher: StorePublisher,
        inner: RankCountingEstimator,
        station: Any,
        counters: Optional[_BackendCounters] = None,
    ) -> None:
        _require_rank_counting(inner)
        self._pool = pool
        self._key = key
        self._publisher = publisher
        self._inner = inner
        self._station = station
        self._counters = counters or _BackendCounters()

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def inner(self) -> RankCountingEstimator:
        """The wrapped local estimator (restored by ``use_threads``)."""
        return self._inner

    def estimate(
        self, samples: Sequence[NodeSample], low: float, high: float
    ) -> EstimateResult:
        return self._inner.estimate(samples, low, high)

    def _committed_version(self, samples: Sequence[NodeSample]) -> Optional[int]:
        """The store version ``samples`` was committed at, or None.

        None means the argument is not the station's current sample list
        (a top-up raced in, or the caller passed foreign samples) and the
        request must be computed locally.
        """
        station = self._station
        try:
            version = int(station.store_version)
            current = station.samples()
        except Exception:  # repro-lint: shed -- any station hiccup means fall back to local compute
            return None
        if len(current) != len(samples):
            return None
        for mine, theirs in zip(samples, current):
            if mine is not theirs:
                return None
        if int(station.store_version) != version:
            return None
        return version

    def estimate_many(
        self,
        samples: Sequence[NodeSample],
        ranges: Sequence[Tuple[float, float]],
    ) -> np.ndarray:
        version = self._committed_version(samples)
        if version is not None and self._ensure_published(version):
            payload = (
                "estimate_many", version, 0,
                [(float(low), float(high)) for low, high in ranges],
            )
            totals = self._round_trip(version, payload)
            if totals is not None:
                self._counters.offload()
                return totals
        self._counters.fallback()
        return self._inner.estimate_many(samples, ranges)

    def _ensure_published(self, version: int) -> bool:
        if self._publisher.version == version:
            return True
        self._publisher.republish()
        return self._publisher.version == version

    def _round_trip(
        self, version: int, payload: Tuple[Any, ...]
    ) -> Optional[np.ndarray]:
        for attempt in range(2):
            try:
                reply = self._pool.request(self._key, payload)
            except (WorkerCrashError, KeyError):
                return None
            if reply[0] == "ok":
                return np.asarray(reply[1], dtype=np.float64)
            if reply[0] == "stale" and attempt == 0:
                # Worker never saw this version (e.g. it was respawned
                # after the publish); push the store again and retry once.
                if not self._ensure_published(version):
                    return None
                continue
            return None
        return None  # pragma: no cover - loop always returns


class ClusterProcessBackend:
    """Per-shard worker processes behind :class:`ClusterBroker`.

    ``attach`` wraps every shard's primary estimator and starts its
    worker; ``detach`` restores the original estimators, shuts the
    workers down, and unlinks every shared-memory segment.  Replica
    (failover) brokers intentionally stay local: degraded gathers are
    rare and their values are identical either way.
    """

    def __init__(self, telemetry: "Optional[MetricsRegistry]" = None) -> None:
        self.pool = WorkerPool()
        self.counters = _BackendCounters(telemetry)
        self._attached: "List[Tuple[Any, Any, StorePublisher]]" = []
        self._active = False

    @property
    def shard_keys(self) -> List[Hashable]:
        return [shard.shard_id for shard, _inner, _pub in self._attached]

    def worker_pids(self) -> Dict[Hashable, Optional[int]]:
        return self.pool.worker_pids()

    def attach(self, shards: Sequence[Any]) -> None:
        if self._active:
            return
        self._active = True
        for shard in shards:
            primary = shard.primary
            _require_rank_counting(primary.estimator)
            station = primary.base_station
            publisher = StorePublisher(
                lambda station=station: (
                    station.store_version, [station.samples()]
                )
            )
            try:
                publisher.republish()
            except Exception:  # repro-lint: shed -- station not collected yet; commit listener publishes later
                pass
            station.subscribe_commits(
                lambda version, publisher=publisher, station=station:
                self._on_commit(publisher, station, version)
            )
            self.pool.ensure_worker(shard.shard_id, publisher.control_name)
            inner = primary.estimator
            primary.estimator = RemoteShardEstimator(
                pool=self.pool,
                key=shard.shard_id,
                publisher=publisher,
                inner=inner,
                station=station,
                counters=self.counters,
            )
            self._attached.append((shard, inner, publisher))

    def _on_commit(
        self, publisher: StorePublisher, station: Any, version: int
    ) -> None:
        if not self._active:
            return
        try:
            publisher.publish(version, [station.samples()])
        except Exception:  # repro-lint: shed -- a publish failure must never break the commit path; estimate-time republish or local fallback covers it
            pass

    def detach(self) -> None:
        """Restore local estimators and release every process/segment."""
        if not self._active:
            return
        self._active = False
        for shard, inner, publisher in self._attached:
            if isinstance(shard.primary.estimator, RemoteShardEstimator):
                shard.primary.estimator = inner
            publisher.close()
        self._attached.clear()
        self.pool.close()


class StreamingProcessBackend:
    """One window worker behind :class:`StreamingBroker`.

    The whole merged window is one store: group ``g`` holds epoch ``g``'s
    samples (oldest first), so a pooled estimate -- the per-epoch sum
    :func:`~repro.streaming.window.pooled_estimate_many` computes -- is a
    single ``pooled_many`` round-trip.
    """

    KEY = "stream"

    def __init__(
        self,
        station: Any,
        estimator: object,
        telemetry: "Optional[MetricsRegistry]" = None,
    ) -> None:
        _require_rank_counting(estimator)
        self.station = station
        self.pool = WorkerPool()
        self.counters = _BackendCounters(telemetry)
        self._active = True
        self.publisher = StorePublisher(self._supply)
        station.subscribe_commits(self._on_commit)
        self.publisher.republish()
        self.pool.ensure_worker(self.KEY, self.publisher.control_name)

    def _supply(self) -> Tuple[int, List[List[NodeSample]]]:
        snapshot = self.station.snapshot()
        return (
            snapshot.store_version,
            [list(summary.samples) for summary in snapshot.epochs],
        )

    def _on_commit(self, version: int) -> None:
        if not self._active:
            return
        try:
            self.publisher.republish()
        except Exception:  # repro-lint: shed -- a publish failure must never break the commit path; estimate-time republish or local fallback covers it
            pass

    def worker_pids(self) -> Dict[Hashable, Optional[int]]:
        return self.pool.worker_pids()

    def pooled_estimate_many(
        self,
        snapshot: Any,
        ranges: Sequence[Tuple[float, float]],
    ) -> Optional[np.ndarray]:
        """Window estimate via the worker, or None to signal local fallback."""
        version = int(snapshot.store_version)
        if not self._ensure_published(version):
            self.counters.fallback()
            return None
        payload = (
            "pooled_many", version,
            [(float(low), float(high)) for low, high in ranges],
        )
        for attempt in range(2):
            try:
                reply = self.pool.request(self.KEY, payload)
            except WorkerCrashError:
                break
            if reply[0] == "ok":
                self.counters.offload()
                return np.asarray(reply[1], dtype=np.float64)
            if reply[0] == "stale" and attempt == 0:
                if not self._ensure_published(version):
                    break
                continue
            break
        self.counters.fallback()
        return None

    def _ensure_published(self, version: int) -> bool:
        if self.publisher.version == version:
            return True
        self.publisher.republish()
        return self.publisher.version == version

    def close(self) -> None:
        if not self._active:
            return
        self._active = False
        self.publisher.close()
        self.pool.close()
