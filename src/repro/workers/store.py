"""Versioned shared-memory sample store with an atomic publish protocol.

One writer (the coordinator's journal/roll path) serialises the current
sorted node samples into an immutable data segment, then flips a small
*control* segment to point at it.  Readers in worker processes follow the
control segment; the seqlock-style generation counter guarantees a reader
can never act on a torn pointer:

* a **data segment** is written completely before it is ever named in the
  control block, and is never mutated afterwards;
* the control block's ``generation`` word is bumped to an odd value before
  the (version, segment-name) pair is rewritten and to the next even value
  after -- a reader that observes an odd generation, or a generation that
  changed across its read, discards the read and keeps serving the segment
  it already has attached (the *old* version, never a torn one).

Layout of a data segment (all integers little-endian int64)::

    header   int64[8]   magic, layout, store_version, group_count,
                        node_count, value_count, 0, 0
    groups   int64[group_count, 2]   (node_offset, node_count)
    nodes    int64[node_count, 4]    (node_id, node_size,
                                      value_offset, sample_len)
    rates    float64[node_count]     per-node sampling rate p
    values   float64[value_count]    sorted sample values, per node
    ranks    int64[value_count]      matching local ranks

A *group* is one independently-estimable sample set: the single station
sample list for a cluster shard, or one epoch of a streaming window (so a
pooled window estimate is a sum over groups, all inside one worker
round-trip).

The publisher keeps the last two data segments alive so a reader that is
one version behind can finish its current request before re-attaching.
Segments are unlinked on :meth:`StorePublisher.close`; if the coordinator
is SIGKILLed first, the ``multiprocessing`` resource tracker (a separate
process that survives the kill) reaps every registered segment -- see
``tests/workers/test_store_lifecycle.py``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.estimators.base import NodeSample

__all__ = [
    "ControlBlock",
    "StorePublisher",
    "StoreReader",
    "TornStoreError",
    "serialize_groups",
]

_MAGIC = 0x52505257524B5331  # "RPRWRKS1"
_LAYOUT = 1
_HEADER_WORDS = 8
_CONTROL_MAGIC = 0x52505257524B4331  # "RPRWRKC1"
_CONTROL_SIZE = 512
_NAME_CAP = 256


class TornStoreError(RuntimeError):
    """A control-block read never stabilised (writer stuck mid-publish)."""


def _require_contiguous_int64(label: str, value: int) -> int:
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{label} must be an integer, got {type(value)!r}")
    return int(value)


def serialize_groups(
    store_version: int, groups: Sequence[Sequence[NodeSample]]
) -> bytes:
    """Serialise sample groups into the immutable data-segment layout."""
    store_version = _require_contiguous_int64("store_version", store_version)
    group_rows: List[Tuple[int, int]] = []
    node_rows: List[Tuple[int, int, int, int]] = []
    rates: List[float] = []
    value_parts: List[np.ndarray] = []
    rank_parts: List[np.ndarray] = []
    node_cursor = 0
    value_cursor = 0
    for group in groups:
        group_rows.append((node_cursor, len(group)))
        for sample in group:
            sample_len = len(sample.values)
            node_rows.append(
                (int(sample.node_id), int(sample.node_size),
                 value_cursor, sample_len)
            )
            rates.append(float(sample.p))
            value_parts.append(np.asarray(sample.values, dtype=np.float64))
            rank_parts.append(np.asarray(sample.ranks, dtype=np.int64))
            node_cursor += 1
            value_cursor += sample_len

    header = np.array(
        [_MAGIC, _LAYOUT, store_version, len(group_rows),
         node_cursor, value_cursor, 0, 0],
        dtype=np.int64,
    )
    group_table = np.array(group_rows, dtype=np.int64).reshape(-1, 2)
    node_table = np.array(node_rows, dtype=np.int64).reshape(-1, 4)
    rate_arr = np.array(rates, dtype=np.float64)
    values = (
        np.concatenate(value_parts) if value_parts
        else np.zeros(0, dtype=np.float64)
    )
    ranks = (
        np.concatenate(rank_parts) if rank_parts
        else np.zeros(0, dtype=np.int64)
    )
    return b"".join(
        part.tobytes()
        for part in (header, group_table, node_table, rate_arr, values, ranks)
    )


def _parse_segment(
    buf: memoryview,
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Parse a data segment into (version, groups, nodes, rates, values, ranks).

    Returned arrays are zero-copy views into ``buf``; callers must drop
    them before closing the backing shared-memory segment.
    """
    header = np.frombuffer(buf, dtype=np.int64, count=_HEADER_WORDS)
    if int(header[0]) != _MAGIC or int(header[1]) != _LAYOUT:
        raise ValueError("shared-memory segment is not a repro sample store")
    store_version = int(header[2])
    group_count = int(header[3])
    node_count = int(header[4])
    value_count = int(header[5])
    offset = _HEADER_WORDS * 8
    groups = np.frombuffer(
        buf, dtype=np.int64, count=group_count * 2, offset=offset
    ).reshape(group_count, 2)
    offset += group_count * 2 * 8
    nodes = np.frombuffer(
        buf, dtype=np.int64, count=node_count * 4, offset=offset
    ).reshape(node_count, 4)
    offset += node_count * 4 * 8
    rates = np.frombuffer(buf, dtype=np.float64, count=node_count, offset=offset)
    offset += node_count * 8
    values = np.frombuffer(buf, dtype=np.float64, count=value_count, offset=offset)
    offset += value_count * 8
    ranks = np.frombuffer(buf, dtype=np.int64, count=value_count, offset=offset)
    return store_version, groups, nodes, rates, values, ranks


@dataclass(frozen=True)
class ControlBlock:
    """One stable read of the control segment."""

    generation: int
    version: int
    segment_name: str


class _ControlCodec:
    """Pack/unpack the fixed-size control block.

    Words (little-endian int64): magic, generation, version, name_len,
    followed by up to ``_NAME_CAP`` bytes of UTF-8 segment name.
    """

    _HEAD = struct.Struct("<qqqq")

    @classmethod
    def write(cls, buf: memoryview, generation: int, version: int,
              name: str) -> None:
        raw = name.encode("utf-8")
        if len(raw) > _NAME_CAP:
            raise ValueError(f"segment name too long: {name!r}")
        buf[: cls._HEAD.size] = cls._HEAD.pack(
            _CONTROL_MAGIC, generation, version, len(raw)
        )
        buf[cls._HEAD.size: cls._HEAD.size + len(raw)] = raw

    @classmethod
    def write_generation(cls, buf: memoryview, generation: int) -> None:
        buf[8:16] = struct.pack("<q", generation)

    @classmethod
    def read(cls, buf: memoryview) -> ControlBlock:
        magic, generation, version, name_len = cls._HEAD.unpack(
            bytes(buf[: cls._HEAD.size])
        )
        if magic != _CONTROL_MAGIC:
            raise ValueError("segment is not a repro worker control block")
        raw = bytes(buf[cls._HEAD.size: cls._HEAD.size + name_len])
        return ControlBlock(
            generation=generation,
            version=version,
            segment_name=raw.decode("utf-8"),
        )


class StorePublisher:
    """Single-writer publisher of versioned sample stores.

    ``supplier`` returns the current ``(store_version, groups)`` pair; it
    is invoked by :meth:`republish` (the safety net a remote estimator
    pulls when a worker reports a version it cannot serve).  Ordinary
    publishes go through :meth:`publish`, hooked to the station's commit
    listeners so the published version always equals ``store_version``
    before any estimate is requested.
    """

    def __init__(
        self,
        supplier: Callable[[], Tuple[int, Sequence[Sequence[NodeSample]]]],
        *,
        keep_segments: int = 2,
    ) -> None:
        if keep_segments < 1:
            raise ValueError("must keep at least the live segment")
        self._supplier = supplier
        self._keep = keep_segments
        self._generation = 0
        self._version: Optional[int] = None
        self._segments: "Dict[int, shared_memory.SharedMemory]" = {}
        self._closed = False
        self._control = shared_memory.SharedMemory(
            create=True, size=_CONTROL_SIZE
        )
        _ControlCodec.write(self._control.buf, 0, -1, "")

    @property
    def control_name(self) -> str:
        """Name of the control segment workers attach to."""
        return self._control.name

    @property
    def version(self) -> Optional[int]:
        """Version of the most recently published store (None before any)."""
        return self._version

    @property
    def segment_names(self) -> List[str]:
        """Names of the data segments currently alive (newest last)."""
        return [self._segments[v].name for v in sorted(self._segments)]

    def publish(
        self, store_version: int, groups: Sequence[Sequence[NodeSample]]
    ) -> None:
        """Write a new immutable data segment and atomically point at it."""
        if self._closed:
            return
        if self._version is not None and store_version <= self._version:
            # Republish of the live version (or a stale listener firing
            # late): the store is immutable per version, nothing to do.
            return
        payload = serialize_groups(store_version, groups)
        segment = shared_memory.SharedMemory(
            create=True, size=max(len(payload), 1)
        )
        segment.buf[: len(payload)] = payload
        # Seqlock flip: odd generation marks the pointer as in-flux; the
        # even bump commits it.  A reader observing the odd value (or a
        # changed value across its read) keeps its current segment.
        self._generation += 1
        _ControlCodec.write_generation(self._control.buf, self._generation)
        _ControlCodec.write(
            self._control.buf, self._generation, store_version, segment.name
        )
        self._generation += 1
        _ControlCodec.write_generation(self._control.buf, self._generation)
        self._segments[store_version] = segment
        self._version = store_version
        self._reap_old()

    def republish(self) -> Optional[int]:
        """Publish whatever the supplier currently holds; return its version."""
        if self._closed:
            return None
        store_version, groups = self._supplier()
        self.publish(store_version, groups)
        return self._version

    def begin_torn_publish(self) -> None:
        """Leave the control block mid-publish (odd generation).

        Test hook for the torn-read protocol: simulates a writer that died
        between the two generation bumps.  :meth:`abort_torn_publish`
        restores the committed state.
        """
        self._generation += 1
        _ControlCodec.write_generation(self._control.buf, self._generation)

    def abort_torn_publish(self) -> None:
        """Complete a :meth:`begin_torn_publish` without changing the pointer."""
        self._generation += 1
        _ControlCodec.write_generation(self._control.buf, self._generation)

    def _reap_old(self) -> None:
        versions = sorted(self._segments)
        while len(versions) > self._keep:
            stale = versions.pop(0)
            segment = self._segments.pop(stale)
            segment.close()
            segment.unlink()

    def close(self) -> None:
        """Unlink every segment this publisher owns.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments.values():
            segment.close()
            segment.unlink()
        self._segments.clear()
        self._control.close()
        self._control.unlink()

    def __enter__(self) -> "StorePublisher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # repro-lint: shed -- GC-time close; interpreter may be tearing down
            pass


class StoreReader:
    """Worker-side reader: follow the control block, parse data segments.

    Never mutates shared memory and never touches RNG state.  A reader
    holds at most one data segment attached; :meth:`refresh` re-reads the
    control block and swaps segments only on a *stable* (even, unchanged)
    generation pair, so a mid-publish reader keeps serving the old
    version.
    """

    def __init__(self, control_name: str, *, spins: int = 64) -> None:
        self._control = shared_memory.SharedMemory(name=control_name)
        self._spins = spins
        self._retired: List[shared_memory.SharedMemory] = []
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._segment_name: Optional[str] = None
        self._version: Optional[int] = None
        self._groups: Optional[np.ndarray] = None
        self._nodes: Optional[np.ndarray] = None
        self._rates: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._ranks: Optional[np.ndarray] = None

    @property
    def version(self) -> Optional[int]:
        """Version of the currently attached store (None before first attach)."""
        return self._version

    @property
    def group_count(self) -> int:
        return 0 if self._groups is None else int(len(self._groups))

    def read_control(self) -> Optional[ControlBlock]:
        """One stable read of the control block, or None if it never settles."""
        for _ in range(self._spins):
            before = _ControlCodec.read(self._control.buf)
            if before.generation % 2 != 0:
                continue
            after = _ControlCodec.read(self._control.buf)
            if after.generation == before.generation:
                return before
        return None

    def refresh(self) -> Optional[int]:
        """Re-read the control block; attach the current segment if it moved.

        Returns the attached version (which is the *old* version when the
        writer is mid-publish -- the torn-read guarantee).
        """
        block = self.read_control()
        if block is None or block.version < 0:
            return self._version
        if block.version == self._version:
            return self._version
        try:
            segment = shared_memory.SharedMemory(name=block.segment_name)
        except FileNotFoundError:
            # The writer advanced again and reaped this segment between our
            # control read and the attach; the next refresh will land.
            return self._version
        self._detach_segment()
        self._segment = segment
        self._segment_name = block.segment_name
        (self._version, self._groups, self._nodes, self._rates,
         self._values, self._ranks) = _parse_segment(segment.buf)
        return self._version

    def group_samples(self, group_index: int) -> List[NodeSample]:
        """Reconstruct one group's samples as zero-copy NodeSample views."""
        if (
            self._groups is None or self._nodes is None
            or self._rates is None or self._values is None
            or self._ranks is None
        ):
            raise RuntimeError("no store attached; call refresh() first")
        node_offset, node_count = (
            int(self._groups[group_index, 0]),
            int(self._groups[group_index, 1]),
        )
        samples: List[NodeSample] = []
        for row in range(node_offset, node_offset + node_count):
            node_id, node_size, value_offset, sample_len = (
                int(self._nodes[row, 0]), int(self._nodes[row, 1]),
                int(self._nodes[row, 2]), int(self._nodes[row, 3]),
            )
            samples.append(
                NodeSample(
                    node_id=node_id,
                    values=self._values[value_offset: value_offset + sample_len],
                    ranks=self._ranks[value_offset: value_offset + sample_len],
                    node_size=node_size,
                    p=float(self._rates[row]),
                )
            )
        return samples

    def _detach_segment(self) -> None:
        # Numpy views pin the mmap: close() raises BufferError while any
        # NodeSample view handed out by group_samples() is still alive.
        # Such segments are parked on a retired list and re-tried on the
        # next detach, so a long-lived caller converges to zero leaks.
        self._groups = None
        self._nodes = None
        self._rates = None
        self._values = None
        self._ranks = None
        if self._segment is not None:
            self._retired.append(self._segment)
            self._segment = None
            self._segment_name = None
        still_pinned: List[shared_memory.SharedMemory] = []
        for segment in self._retired:
            try:
                segment.close()
            except BufferError:
                still_pinned.append(segment)
        self._retired = still_pinned

    def close(self) -> None:
        """Detach from all segments (never unlinks -- readers don't own them)."""
        self._detach_segment()
        self._version = None
        try:
            self._control.close()
        except BufferError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "StoreReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
