"""Spawn-safe worker process main loop.

A worker is a read-only estimation server: it attaches the control block
named at spawn time, follows published store versions, and answers
RankCounting batch estimates over pipe-delivered ``(version, ranges)``
requests.  Everything stochastic -- Laplace draws, sampling top-ups,
device channels -- stays in the coordinator, so this module must never
construct or consume a numpy RNG (RL002 enforces a strict no-RNG rule
over ``repro.workers``; see ``tests/lint/test_rules.py``).

The request protocol (tuples over a duplex pipe).  Every message is
sequence-tagged: the coordinator sends ``(seq, payload)`` and the worker
echoes the tag in its reply ``(seq, reply)``.  Tags let the coordinator
discard the late reply of a request it has already given up on (a
stalled worker resumed by SIGCONT answers eventually; without tags that
stale reply would be mistaken for the answer to the *next* request).

* ``("ping",)`` -> ``("pong", pid)``
* ``("estimate_many", version, group_index, ranges)`` ->
  ``("ok", totals)`` or ``("stale", attached_version)``
* ``("estimate_multi", version, group_ranges)`` where ``group_ranges``
  is ``[(group_index, ranges), ...]`` -> ``("ok", [totals, ...])``, one
  totals list per requested group -- several shards' sub-queries in one
  round-trip when those shards share a worker
* ``("pooled_many", version, ranges)`` -> per-group estimates summed
  (one round-trip for a whole streaming window) -> same replies
* ``("shutdown",)`` -> worker exits 0

A worker that cannot see the requested version after bounded refresh
retries answers ``("stale", ...)`` -- the coordinator then republishes
and retries, or falls back to bit-identical local computation.  The loop
exits on EOF so workers never outlive a dead coordinator.
"""

from __future__ import annotations

import os
import time
from typing import List, Sequence, Tuple

from repro.estimators.rank import RankCountingEstimator
from repro.workers.store import StoreReader

__all__ = ["worker_main"]

#: Bounded wait for a version the coordinator says it has published.
_REFRESH_ATTEMPTS = 200
_REFRESH_SLEEP_S = 0.0005


def _await_version(reader: StoreReader, version: int) -> bool:
    """Refresh until the reader serves ``version``; False if it never shows."""
    if reader.refresh() == version:
        return True
    for _ in range(_REFRESH_ATTEMPTS):
        time.sleep(_REFRESH_SLEEP_S)
        if reader.refresh() == version:
            return True
    return False


def _estimate_groups(
    reader: StoreReader,
    group_indices: Sequence[int],
    ranges: Sequence[Tuple[float, float]],
    skip_empty: bool,
) -> List[float]:
    """Sum RankCounting batch estimates over the requested groups.

    Runs the exact same pure computation as the coordinator's
    :meth:`RankCountingEstimator.estimate_many` (and, for the pooled
    path, :func:`~repro.streaming.window.pooled_estimate_many`, which
    skips sample-less epochs), so results are bit-identical to the
    threaded path -- including the accumulation order.
    """
    estimator = RankCountingEstimator()
    totals = [0.0] * len(ranges)
    for group_index in group_indices:
        samples = reader.group_samples(group_index)
        if skip_empty and not samples:
            continue
        estimates = estimator.estimate_many(samples, ranges)
        for i in range(len(ranges)):
            totals[i] += float(estimates[i])
    return totals


def worker_main(conn: object, control_name: str) -> None:
    """Entry point for a spawned worker process.

    ``conn`` is the worker end of a duplex pipe; ``control_name`` names
    the publisher's control segment.  Must stay importable at module
    level -- spawn pickles the target by reference.
    """
    reader = StoreReader(control_name)
    try:
        while True:
            try:
                seq, request = conn.recv()  # type: ignore[attr-defined]
            except (EOFError, OSError):
                break  # coordinator is gone; exit instead of lingering
            op = request[0]
            if op == "shutdown":
                conn.send((seq, ("bye",)))  # type: ignore[attr-defined]
                break
            if op == "ping":
                conn.send(  # type: ignore[attr-defined]
                    (seq, ("pong", os.getpid()))
                )
                continue
            try:
                totals: object
                if op == "estimate_many":
                    _, version, group_index, ranges = request
                    if not _await_version(reader, version):
                        conn.send(  # type: ignore[attr-defined]
                            (seq, ("stale", reader.version))
                        )
                        continue
                    totals = _estimate_groups(
                        reader, [group_index], ranges, skip_empty=False
                    )
                elif op == "estimate_multi":
                    _, version, group_ranges = request
                    if not _await_version(reader, version):
                        conn.send(  # type: ignore[attr-defined]
                            (seq, ("stale", reader.version))
                        )
                        continue
                    totals = [
                        _estimate_groups(
                            reader, [group_index], ranges, skip_empty=False
                        )
                        for group_index, ranges in group_ranges
                    ]
                elif op == "pooled_many":
                    _, version, ranges = request
                    if not _await_version(reader, version):
                        conn.send(  # type: ignore[attr-defined]
                            (seq, ("stale", reader.version))
                        )
                        continue
                    totals = _estimate_groups(
                        reader, range(reader.group_count), ranges,
                        skip_empty=True,
                    )
                else:
                    conn.send(  # type: ignore[attr-defined]
                        (seq, ("error", f"unknown op {op!r}"))
                    )
                    continue
            except Exception as exc:  # repro-lint: shed -- reported to the coordinator as an ('error', repr) reply
                conn.send(  # type: ignore[attr-defined]
                    (seq, ("error", repr(exc)))
                )
                continue
            conn.send((seq, ("ok", totals)))  # type: ignore[attr-defined]
    finally:
        reader.close()
        try:
            conn.close()  # type: ignore[attr-defined]
        except OSError:  # pragma: no cover - defensive
            pass
