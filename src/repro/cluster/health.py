"""Shard health: heartbeat-driven failure detection and failover routing.

:class:`ShardHealthMonitor` runs one
:class:`~repro.iot.heartbeat.HeartbeatService` per shard over the
shard's *primary* network and event scheduler.  Beacons ride the same
lossy :class:`~repro.iot.channel.Channel` as everything else, so fault
injection is physical: cut the primary's link
(:meth:`~repro.cluster.shard.ShardRuntime.cut_primary_link`) and the
beacons start getting lost; after ``miss_threshold`` silent intervals
the monitor declares the primary dead and flips the shard's routing to
the replica.  Every failover is recorded as a :class:`FailoverEvent`
and counted in the attached
:class:`~repro.serving.telemetry.MetricsRegistry`.

:class:`ShardBreakerBoard` complements the heartbeat monitor with
*latency*-driven detection: one
:class:`~repro.resilience.breaker.CircuitBreaker` per shard, fed by the
cluster broker's scatter outcomes.  Heartbeats catch dead radios;
breakers catch shards that are alive but limping, which heartbeats
sail straight through.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import DeliveryError
from repro.iot.heartbeat import HeartbeatService
from repro.cluster.shard import ShardRuntime
from repro.resilience.breaker import BreakerConfig, CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serving.telemetry import MetricsRegistry

__all__ = ["FailoverEvent", "ShardHealthMonitor", "ShardBreakerBoard"]


class ShardBreakerBoard:
    """One circuit breaker per shard lane, lazily created, shared config.

    The board is advisory about *routing only*: an open breaker makes
    the cluster broker serve that shard through the bypass (relief)
    lane, which skips the shard's congested ingress path but runs the
    very same broker — so answers and books are bit-identical whatever
    the breaker state, and same-seed drill checksums never depend on
    host timing.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        telemetry: "Optional[MetricsRegistry]" = None,
    ) -> None:
        self.config = config or BreakerConfig()
        self.clock = clock
        self.telemetry = telemetry
        self._breakers: "Dict[int, CircuitBreaker]" = {}

    def for_shard(self, shard_id: int) -> CircuitBreaker:
        """The breaker guarding ``shard_id`` (created on first use)."""
        breaker = self._breakers.get(shard_id)
        if breaker is None:
            breaker = CircuitBreaker(self.config, clock=self.clock)
            self._breakers[shard_id] = breaker
        return breaker

    def states(self) -> "Dict[int, str]":
        """Current state per attached shard."""
        return {
            shard_id: breaker.state
            for shard_id, breaker in sorted(self._breakers.items())
        }

    def open_fraction(self) -> float:
        """Share of attached lanes whose breaker is not closed.

        Feeds the brownout ladder's ``breaker_open_fraction`` signal;
        0.0 before any lane has been exercised.
        """
        if not self._breakers:
            return 0.0
        not_closed = sum(
            1 for b in self._breakers.values() if b.state != "closed"
        )
        return not_closed / len(self._breakers)

    def publish(self) -> None:
        """Export per-shard breaker gauges to telemetry (if attached)."""
        if self.telemetry is None:
            return
        for shard_id, breaker in self._breakers.items():
            self.telemetry.set_gauge(
                f"cluster.shard{shard_id}.breaker_open",
                0.0 if breaker.state == "closed" else 1.0,
            )


@dataclass(frozen=True)
class FailoverEvent:
    """One detected primary failure, in the shard's simulated time."""

    shard_id: int
    detected_at: float
    dead_devices: Tuple[int, ...]


@dataclass
class ShardHealthMonitor:
    """Watches shard primaries through per-shard heartbeat services.

    Parameters
    ----------
    interval:
        Simulated seconds between a device's beacons.
    miss_threshold:
        Consecutive silent intervals before a device counts as dead.
    quorum:
        Fraction of a shard's devices that must be *dead* (beacons no
        longer arriving at the primary) before the primary itself is
        declared down.  Beacons stop arriving when the primary's radio
        is gone, so "every device silent at once" is the signature of a
        primary failure rather than of scattered device deaths.
    telemetry:
        Optional metrics registry; failovers land on
        ``cluster.failovers`` and per-shard health gauges.
    """

    interval: float = 60.0
    miss_threshold: int = 2
    quorum: float = 1.0
    telemetry: "Optional[MetricsRegistry]" = None

    def __post_init__(self) -> None:
        if not 0.0 < self.quorum <= 1.0:
            raise ValueError("quorum must be in (0, 1]")
        self._shards: "Dict[int, ShardRuntime]" = {}
        self._heartbeats: "Dict[int, HeartbeatService]" = {}
        self._events: "List[FailoverEvent]" = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, shard: ShardRuntime) -> HeartbeatService:
        """Start watching one shard's primary."""
        if shard.shard_id in self._shards:
            raise ValueError(f"shard {shard.shard_id} already attached")
        service = HeartbeatService(
            network=shard.primary_station.network,
            scheduler=shard.scheduler,
            interval=self.interval,
            miss_threshold=self.miss_threshold,
        )
        for device in shard.primary_station.devices.values():
            service.track(device)
        self._shards[shard.shard_id] = shard
        self._heartbeats[shard.shard_id] = service
        self._set_gauge(shard.shard_id, healthy=True)
        return service

    def heartbeat_for(self, shard_id: int) -> HeartbeatService:
        return self._heartbeats[shard_id]

    @property
    def events(self) -> "Tuple[FailoverEvent, ...]":
        """Failovers detected so far, oldest first."""
        return tuple(self._events)

    # ------------------------------------------------------------------
    # detection loop
    # ------------------------------------------------------------------
    def sweep(self, rounds: int = 1) -> "List[FailoverEvent]":
        """Advance every shard's beacon loop by ``rounds`` intervals.

        Beacons lost on the air (cut link) raise
        :class:`~repro.errors.DeliveryError`; the monitor swallows the
        loss -- a lost beacon *is* the signal -- and the silent device
        goes stale.  When at least ``quorum`` of a shard's devices are
        silent past the miss threshold, the primary is declared dead:
        the shard flips to replica routing and a :class:`FailoverEvent`
        is recorded.  Returns the events from this sweep.
        """
        fresh: "List[FailoverEvent]" = []
        for _ in range(max(1, rounds)):
            for shard_id in sorted(self._shards):
                shard = self._shards[shard_id]
                self._advance_one_interval(shard)
                event = self._check(shard)
                if event is not None:
                    fresh.append(event)
        return fresh

    def _advance_one_interval(self, shard: ShardRuntime) -> None:
        scheduler = shard.scheduler
        horizon = scheduler.clock.now + self.interval
        while True:
            fire = scheduler.next_fire_time()
            if fire is None or fire > horizon:
                break
            try:
                scheduler.run(until=fire)
            except DeliveryError:
                # The beacon died on the air; its schedule chain stops and
                # the device goes silent -- which is what we detect.
                continue
        if scheduler.clock.now < horizon:
            scheduler.clock.advance(horizon - scheduler.clock.now)

    def _check(self, shard: ShardRuntime) -> "Optional[FailoverEvent]":
        if not shard.primary_alive:
            return None
        service = self._heartbeats[shard.shard_id]
        dead = service.dead_devices()
        total = shard.k
        if total == 0 or len(dead) < self.quorum * total:
            return None
        shard.fail_primary()
        event = FailoverEvent(
            shard_id=shard.shard_id,
            detected_at=shard.scheduler.clock.now,
            dead_devices=dead,
        )
        self._events.append(event)
        self._set_gauge(shard.shard_id, healthy=False)
        if self.telemetry is not None:
            self.telemetry.inc("cluster.failovers")
        return event

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def kill_primary(self, shard_id: int, detect: bool = True) -> None:
        """Simulate a primary station death: cut its radio link.

        Beacons (and any primary collection round) start failing on the
        air.  With ``detect=True`` the monitor immediately sweeps
        ``miss_threshold`` intervals so routing flips; with
        ``detect=False`` the death stays latent until the next
        :meth:`sweep` or until a query trips over it mid-round.
        """
        shard = self._shards[shard_id]
        shard.cut_primary_link()
        if detect:
            self.sweep(rounds=self.miss_threshold)

    def revive_primary(self, shard_id: int, loss_probability: float = 0.0) -> None:
        """Restore a killed primary's link and routing."""
        shard = self._shards[shard_id]
        shard.restore_primary_link(loss_probability)
        service = self._heartbeats[shard_id]
        for node_id in shard.device_ids:
            if not service.is_alive(node_id):
                # Beacon chains died with the link; restart them.
                service.fail_device(node_id)
                service.revive_device(node_id)
        self.sweep(rounds=1)
        if service.live_devices():
            shard.revive_primary()
            self._set_gauge(shard_id, healthy=True)

    def healthy_shards(self) -> "Tuple[int, ...]":
        return tuple(
            shard_id for shard_id in sorted(self._shards)
            if self._shards[shard_id].primary_alive
        )

    def _set_gauge(self, shard_id: int, healthy: bool) -> None:
        if self.telemetry is not None:
            self.telemetry.set_gauge(
                f"cluster.shard{shard_id}.primary_healthy",
                1.0 if healthy else 0.0,
            )
            self.telemetry.set_gauge(
                "cluster.shards_healthy", float(len(self.healthy_shards()))
            )
