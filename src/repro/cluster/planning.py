"""Accuracy splitting and plan merging for scatter-gather queries.

A cluster query with target ``(α, δ)`` over ``n = Σ n_i`` records is
answered by ``s`` shards, each releasing an independent
``(α, δ^{1/s})``-range counting over its own ``n_i`` records:

* **Tolerance splits by shard size.**  Shard ``i``'s absolute error is
  within ``α·n_i`` with its own confidence, and ``Σ α·n_i = α·n`` --
  the sub-α allocation is weighted by shard size for free because the
  planner works in relative error.
* **Confidence multiplies.**  The per-shard noise draws and sampling
  errors are independent, so all shards landing inside their tolerance
  has probability ``≥ (δ^{1/s})^s = δ``.
* **Privacy composes in parallel.**  Shards hold *disjoint* device
  fleets, so one consumer query touches each record at most once; the
  cluster-level ε′ charged for the release is the *maximum* shard ε′
  (parallel composition), not the sum.

With ``s = 1`` the split is the identity and the merged plan is the
shard plan object itself, which is what makes the single-shard cluster
bit-identical to the plain broker path.

Range-aware routing (:func:`route_query`) upgrades the blind broadcast
when shard *bands* are known (range-sharded partitions).  For a query
``[low, high]`` each shard is classified:

* **pruned** -- its band cannot intersect the range: it holds zero
  in-range records, contributes exactly 0, and is skipped (no RPC, no
  noise, no ε);
* **exact** -- its band is fully contained in the range: every one of
  its ``n_j`` records is in range, so its contribution is the cached
  shard total ``n_j`` (public partition metadata, like the fleet sizes
  already used for pricing) at zero error and zero ε;
* **queried** -- the band straddles a query edge: only these ``t <= s``
  shards release a fresh noisy sub-answer.

The ``(α, δ)`` contract then splits over the *queried* shards only:
confidence ``δ_j`` with ``Π δ_j = δ`` (uniform ``δ^{1/t}``, optionally
water-filled to equalize per-shard ε′), and tolerance re-allocated as
``α_j = α · n / N_t`` (capped) where ``N_t = Σ_queried n_j`` -- pruned
and exact shards contribute zero error, so their tolerance share is
free to relax the queried shards.  Total error stays ``<= α·n`` with
probability ``>= δ`` while every queried shard solves a strictly easier
optimization, so composed ε′ (max over queried shards, parallel
composition) can only improve on the broadcast split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.query import AccuracySpec
from repro.datasets.partition import ShardBand
from repro.privacy.optimizer import PrivacyPlan

__all__ = [
    "split_spec",
    "merge_plans",
    "degraded_delta",
    "zero_plan",
    "RoutePlan",
    "route_query",
]


def zero_plan(spec: AccuracySpec, n: int = 0, k: int = 0) -> PrivacyPlan:
    """The plan of a release that spent nothing.

    Describes an answer derived purely from public partition metadata
    (pruned and exactly-covered shards): no sampling error reserved, no
    noise injected, ε = ε′ = 0.
    """
    return PrivacyPlan(
        alpha=spec.alpha,
        delta=spec.delta,
        alpha_prime=0.0,
        delta_prime=1.0,
        epsilon=0.0,
        epsilon_prime=0.0,
        sensitivity=0.0,
        noise_scale=0.0,
        p=1.0,
        k=k,
        n=n,
    )


def split_spec(spec: AccuracySpec, shards: int) -> AccuracySpec:
    """The per-shard accuracy target for an ``s``-shard scatter.

    Identity for ``shards == 1`` (same object, preserving bit-identical
    planning); otherwise ``(α, δ^{1/s})``.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    if shards == 1:
        return spec
    return AccuracySpec(alpha=spec.alpha, delta=spec.delta ** (1.0 / shards))


def merge_plans(
    spec: AccuracySpec,
    plans: Sequence[PrivacyPlan],
    exact_n: int = 0,
    exact_k: int = 0,
) -> PrivacyPlan:
    """Fold per-shard plans into the plan reported on the merged answer.

    The merged plan describes the *release the consumer actually got*:

    * ``alpha_prime`` -- shard-size-weighted mean (each shard reserved
      ``α'_i·n_i`` of its tolerance for sampling error).
    * ``delta_prime`` -- product of the per-shard sampling confidences.
    * ``epsilon`` / ``epsilon_prime`` / ``sensitivity`` -- maxima; the
      privacy guarantee of the merged release under parallel
      composition over disjoint shards.
    * ``noise_scale`` -- ``sqrt(Σ b_i²)``, so the merged plan's
      ``noise_variance`` (``2b²``) equals the exact summed variance
      ``Σ 2 b_i²`` of the independent shard draws.
    * ``p`` -- minimum shard rate (the weakest sample backing the
      answer); ``k``/``n`` -- fleet totals.

    ``exact_n`` / ``exact_k`` fold in shards the router answered from
    cached totals (exact cover): they add records and devices to the
    release at zero sampling error, zero noise, and zero ε.  With no
    queried plan at all (the range was fully covered by pruned + exact
    shards) the merged plan is the zero-cost release over those totals.

    A single plan with no exact contribution is returned untouched
    (bit-identity at ``s = 1``).
    """
    if exact_n < 0 or exact_k < 0:
        raise ValueError("exact shard totals cannot be negative")
    if not plans:
        if exact_n == 0:
            raise ValueError("at least one shard plan is required")
        return zero_plan(spec, n=exact_n, k=exact_k)
    if len(plans) == 1 and exact_n == 0:
        return plans[0]
    n_total = sum(p.n for p in plans) + exact_n
    k_total = sum(p.k for p in plans) + exact_k
    delta_prime = 1.0
    for p in plans:
        delta_prime *= p.delta_prime
    return PrivacyPlan(
        alpha=spec.alpha,
        delta=spec.delta,
        alpha_prime=sum(p.alpha_prime * p.n for p in plans) / n_total,
        delta_prime=delta_prime,
        epsilon=max(p.epsilon for p in plans),
        epsilon_prime=max(p.epsilon_prime for p in plans),
        sensitivity=max(p.sensitivity for p in plans),
        noise_scale=math.sqrt(sum(p.noise_scale ** 2 for p in plans)),
        p=min(p.p for p in plans),
        k=k_total,
        n=n_total,
    )


def degraded_delta(delta: float, degraded_shards: int, factor: float) -> float:
    """Reported confidence after ``degraded_shards`` replica failovers.

    A replica answers from a mirrored store, so the math of its release
    is intact -- but the operator may not trust a just-failed-over shard
    at full confidence (the mirror could trail the primary by an
    in-flight round).  Each degraded shard multiplies the reported δ by
    ``factor ∈ (0, 1]``.
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError("degradation factor must be in (0, 1]")
    return delta * factor ** degraded_shards


# ----------------------------------------------------------------------
# range-aware routing
# ----------------------------------------------------------------------

#: Ceiling on the re-allocated per-shard tolerance.  The boost
#: ``α · n / N_t`` can exceed 1 when the queried shards are tiny;
#: :class:`~repro.core.query.AccuracySpec` requires ``α < 1`` strictly.
#: The cap only binds once a single queried shard holds under
#: ``α/0.95`` of the fleet (e.g. one shard of eight at α ≥ 0.12); the
#: *absolute* tolerance handed to the queried shards,
#: ``min(α·n, 0.95·N_t)``, never exceeds the contract's ``α·n``.  Kept
#: just under 1 rather than lower: once the touched shards are small,
#: every unit of forfeited tolerance inflates ε′ hyperbolically.
ALPHA_BOOST_CAP = 0.95

#: Water-filling iteration budget and convergence band.  The refinement
#: stops once the queried shards' predicted ε′ spread is within
#: ``_WATERFILL_SPREAD`` relative, or after ``_WATERFILL_ITERATIONS``
#: rounds -- a fixed, deterministic schedule.
_WATERFILL_ITERATIONS = 6
_WATERFILL_SPREAD = 0.02
#: Floor on a queried shard's δ-weight share (of ``1/t``) so no shard's
#: confidence target collapses toward the impossible ``δ_j -> 1``.
_WATERFILL_FLOOR = 0.1

#: Predicted amplified budget of one shard release: maps
#: ``(shard_index, sub_spec)`` to the ε′ the shard's planner would spend.
RouteCost = Callable[[int, AccuracySpec], float]


@dataclass(frozen=True)
class RoutePlan:
    """One query's routing decision over a shard set.

    ``pruned`` / ``exact`` / ``queried`` partition the shard indices;
    ``sub_specs`` runs parallel to ``queried``.  ``routed`` is False when
    band metadata gave the planner nothing to exploit (no shard pruned or
    exactly covered) and the plan is the legacy broadcast ``δ^{1/s}``
    scatter -- bit-identical to the pre-routing cluster behaviour.
    """

    alpha: float
    delta: float
    low: float
    high: float
    pruned: Tuple[int, ...]
    exact: Tuple[int, ...]
    queried: Tuple[int, ...]
    sub_specs: Tuple[AccuracySpec, ...]
    routed: bool

    def __post_init__(self) -> None:
        if len(self.sub_specs) != len(self.queried):
            raise ValueError("need exactly one sub-spec per queried shard")

    @property
    def shards(self) -> int:
        """Total shard count the plan partitions."""
        return len(self.pruned) + len(self.exact) + len(self.queried)

    @property
    def touched(self) -> int:
        """``t``: shards that must release a fresh noisy sub-answer."""
        return len(self.queried)

    def spec_for(self, shard_index: int) -> AccuracySpec:
        """The sub-spec shard ``shard_index`` must satisfy."""
        return self.sub_specs[self.queried.index(shard_index)]

    @property
    def signature(self) -> str:
        """Stable routing fingerprint for cache keys and provenance.

        Broadcast plans share the single signature ``"b"`` regardless of
        shard count (the pre-routing behaviour had no signature at all);
        routed plans encode the exact shard partition.
        """
        if not self.routed:
            return "b"
        return "p{};x{};q{}".format(
            ",".join(str(i) for i in self.pruned),
            ",".join(str(i) for i in self.exact),
            ",".join(str(i) for i in self.queried),
        )


def _broadcast_plan(
    spec: AccuracySpec, low: float, high: float, shards: int
) -> RoutePlan:
    sub = split_spec(spec, shards)
    return RoutePlan(
        alpha=spec.alpha,
        delta=spec.delta,
        low=low,
        high=high,
        pruned=(),
        exact=(),
        queried=tuple(range(shards)),
        sub_specs=(sub,) * shards,
        routed=False,
    )


def _boosted_alpha(
    alpha: float, n_total: int, n_queried: int, alpha_cap: float
) -> float:
    """Tolerance re-allocated to the queried shards, capped and monotone.

    Never below the consumer ``α`` (the uncapped boost ``α·n/N_t >= α``
    always holds since ``N_t <= n``), never at or above 1.
    """
    boost = alpha * (float(n_total) / float(n_queried))
    return max(alpha, min(boost, alpha_cap, 0.999999))


def _composed_cost(
    cost: RouteCost, queried: Sequence[int], specs: Sequence[AccuracySpec]
) -> float:
    """Predicted cluster ε′ of a candidate: parallel-composition max."""
    worst = 0.0
    for index, sub in zip(queried, specs):
        worst = max(worst, cost(index, sub))
    return worst


def _waterfill_specs(
    spec: AccuracySpec,
    queried: Sequence[int],
    alpha_j: float,
    cost: RouteCost,
) -> "Tuple[List[AccuracySpec], float]":
    """Non-uniform δ-split equalizing the queried shards' predicted ε′.

    Maintains ``Σ w_j = 1`` with ``δ_j = δ^{w_j}`` (so ``Π δ_j = δ``
    exactly) and deterministically shifts confidence weight toward the
    shards predicted to spend the most: a larger ``w_j`` means a *lower*
    per-shard confidence target ``δ^{w_j}``, i.e. an easier release.
    Returns the best specs found and their composed ε′.
    """
    t = len(queried)
    weights = [1.0 / t] * t
    floor = _WATERFILL_FLOOR / t

    def specs_of(ws: Sequence[float]) -> "List[AccuracySpec]":
        return [
            AccuracySpec(alpha=alpha_j, delta=spec.delta ** w) for w in ws
        ]

    best_specs = specs_of(weights)
    best_cost = _composed_cost(cost, queried, best_specs)
    for _ in range(_WATERFILL_ITERATIONS):
        costs = [cost(index, sub) for index, sub in zip(queried, best_specs)]
        worst = max(costs)
        mean = sum(costs) / t
        if worst <= 0.0 or mean <= 0.0:
            break
        if (worst - min(costs)) / worst < _WATERFILL_SPREAD:
            break
        # Shift weight toward expensive shards (sqrt-damped), renormalize.
        raw = [
            max(w * math.sqrt(c / mean), floor)
            for w, c in zip(weights, costs)
        ]
        total = sum(raw)
        weights = [w / total for w in raw]
        candidate = specs_of(weights)
        candidate_cost = _composed_cost(cost, queried, candidate)
        if candidate_cost < best_cost:
            best_specs = candidate
            best_cost = candidate_cost
    return best_specs, best_cost


def route_query(
    spec: AccuracySpec,
    low: float,
    high: float,
    bands: Sequence[ShardBand],
    sizes: Sequence[int],
    cost: Optional[RouteCost] = None,
    alpha_cap: float = ALPHA_BOOST_CAP,
) -> RoutePlan:
    """Choose the (routing, δ-split) pair minimizing composed ε′.

    Parameters
    ----------
    spec:
        The consumer's ``(α, δ)`` contract for the whole cluster answer.
    low, high:
        The query range (closed interval, matching the estimators).
    bands, sizes:
        Per-shard value bands and record counts, index-aligned.
    cost:
        Optional ε′ predictor ``(shard_index, sub_spec) -> ε′``.  When
        given, the planner scores every candidate (broadcast, uniform
        routed split, water-filled routed split) and returns the cheapest;
        without it the uniform routed split is returned directly -- it
        dominates the broadcast analytically (``t <= s`` shards, each with
        ``α_j >= α`` and ``δ^{1/t} <= δ^{1/s}``, a strictly easier
        per-shard problem).
    alpha_cap:
        Ceiling on the re-allocated per-shard tolerance.

    The plan is deterministic in its inputs: classification is pure
    interval arithmetic and the water-fill schedule is fixed, so equal
    ``(spec, range, bands, sizes, rate)`` always route identically.
    """
    if len(bands) == 0:
        raise ValueError("at least one shard band is required")
    if len(bands) != len(sizes):
        raise ValueError(
            f"got {len(bands)} bands for {len(sizes)} shard sizes"
        )
    if not low <= high:
        raise ValueError("query range must satisfy low <= high")
    if not 0.0 < alpha_cap < 1.0:
        raise ValueError("alpha_cap must be in (0, 1)")

    s = len(bands)
    pruned: "List[int]" = []
    exact: "List[int]" = []
    queried: "List[int]" = []
    for index, band in enumerate(bands):
        if not band.intersects(low, high):
            pruned.append(index)
        elif band.contained_in(low, high):
            exact.append(index)
        else:
            queried.append(index)

    if not pruned and not exact:
        # Band metadata gave nothing to exploit (typical for full-domain
        # bounds): keep the legacy broadcast scatter, bit-identical to the
        # pre-routing cluster.
        return _broadcast_plan(spec, low, high, s)

    base = dict(
        alpha=spec.alpha,
        delta=spec.delta,
        low=low,
        high=high,
        pruned=tuple(pruned),
        exact=tuple(exact),
    )
    if not queried:
        # Fully covered by pruned + exact shards: zero-ε answer from
        # cached totals, nothing to split.
        return RoutePlan(queried=(), sub_specs=(), routed=True, **base)

    t = len(queried)
    n_total = sum(sizes)
    n_queried = sum(sizes[j] for j in queried)
    if n_queried <= 0:
        raise ValueError("queried shards must hold at least one record")
    alpha_j = _boosted_alpha(spec.alpha, n_total, n_queried, alpha_cap)
    uniform = [
        AccuracySpec(alpha=alpha_j, delta=spec.delta ** (1.0 / t))
    ] * t
    routed_plan = RoutePlan(
        queried=tuple(queried),
        sub_specs=tuple(uniform),
        routed=True,
        **base,
    )
    if cost is None:
        return routed_plan

    routed_cost = _composed_cost(cost, queried, uniform)
    if t > 1:
        filled, filled_cost = _waterfill_specs(spec, queried, alpha_j, cost)
        # Strict improvement only: ties keep the uniform split so the
        # routing signature's spec assignment stays the simplest one.
        if filled_cost < routed_cost * (1.0 - 1e-9):
            routed_plan = RoutePlan(
                queried=tuple(queried),
                sub_specs=tuple(filled),
                routed=True,
                **base,
            )
            routed_cost = filled_cost

    broadcast = _broadcast_plan(spec, low, high, s)
    broadcast_cost = _composed_cost(
        cost, broadcast.queried, broadcast.sub_specs
    )
    if broadcast_cost < routed_cost * (1.0 - 1e-9):
        return broadcast
    return routed_plan
