"""Accuracy splitting and plan merging for scatter-gather queries.

A cluster query with target ``(α, δ)`` over ``n = Σ n_i`` records is
answered by ``s`` shards, each releasing an independent
``(α, δ^{1/s})``-range counting over its own ``n_i`` records:

* **Tolerance splits by shard size.**  Shard ``i``'s absolute error is
  within ``α·n_i`` with its own confidence, and ``Σ α·n_i = α·n`` --
  the sub-α allocation is weighted by shard size for free because the
  planner works in relative error.
* **Confidence multiplies.**  The per-shard noise draws and sampling
  errors are independent, so all shards landing inside their tolerance
  has probability ``≥ (δ^{1/s})^s = δ``.
* **Privacy composes in parallel.**  Shards hold *disjoint* device
  fleets, so one consumer query touches each record at most once; the
  cluster-level ε′ charged for the release is the *maximum* shard ε′
  (parallel composition), not the sum.

With ``s = 1`` the split is the identity and the merged plan is the
shard plan object itself, which is what makes the single-shard cluster
bit-identical to the plain broker path.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.query import AccuracySpec
from repro.privacy.optimizer import PrivacyPlan

__all__ = ["split_spec", "merge_plans", "degraded_delta"]


def split_spec(spec: AccuracySpec, shards: int) -> AccuracySpec:
    """The per-shard accuracy target for an ``s``-shard scatter.

    Identity for ``shards == 1`` (same object, preserving bit-identical
    planning); otherwise ``(α, δ^{1/s})``.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    if shards == 1:
        return spec
    return AccuracySpec(alpha=spec.alpha, delta=spec.delta ** (1.0 / shards))


def merge_plans(spec: AccuracySpec, plans: Sequence[PrivacyPlan]) -> PrivacyPlan:
    """Fold per-shard plans into the plan reported on the merged answer.

    The merged plan describes the *release the consumer actually got*:

    * ``alpha_prime`` -- shard-size-weighted mean (each shard reserved
      ``α'_i·n_i`` of its tolerance for sampling error).
    * ``delta_prime`` -- product of the per-shard sampling confidences.
    * ``epsilon`` / ``epsilon_prime`` / ``sensitivity`` -- maxima; the
      privacy guarantee of the merged release under parallel
      composition over disjoint shards.
    * ``noise_scale`` -- ``sqrt(Σ b_i²)``, so the merged plan's
      ``noise_variance`` (``2b²``) equals the exact summed variance
      ``Σ 2 b_i²`` of the independent shard draws.
    * ``p`` -- minimum shard rate (the weakest sample backing the
      answer); ``k``/``n`` -- fleet totals.

    A single plan is returned untouched (bit-identity at ``s = 1``).
    """
    if not plans:
        raise ValueError("at least one shard plan is required")
    if len(plans) == 1:
        return plans[0]
    n_total = sum(p.n for p in plans)
    k_total = sum(p.k for p in plans)
    delta_prime = 1.0
    for p in plans:
        delta_prime *= p.delta_prime
    return PrivacyPlan(
        alpha=spec.alpha,
        delta=spec.delta,
        alpha_prime=sum(p.alpha_prime * p.n for p in plans) / n_total,
        delta_prime=delta_prime,
        epsilon=max(p.epsilon for p in plans),
        epsilon_prime=max(p.epsilon_prime for p in plans),
        sensitivity=max(p.sensitivity for p in plans),
        noise_scale=math.sqrt(sum(p.noise_scale ** 2 for p in plans)),
        p=min(p.p for p in plans),
        k=k_total,
        n=n_total,
    )


def degraded_delta(delta: float, degraded_shards: int, factor: float) -> float:
    """Reported confidence after ``degraded_shards`` replica failovers.

    A replica answers from a mirrored store, so the math of its release
    is intact -- but the operator may not trust a just-failed-over shard
    at full confidence (the mirror could trail the primary by an
    in-flight round).  Each degraded shard multiplies the reported δ by
    ``factor ∈ (0, 1]``.
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError("degradation factor must be in (0, 1]")
    return delta * factor ** degraded_shards
