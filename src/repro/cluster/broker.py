"""The scatter-gather coordinator: one broker surface over many shards.

:class:`ClusterBroker` exposes the same duck-typed surface as
:class:`~repro.core.broker.DataBroker` (``quote`` / ``answer`` /
``answer_batch`` / ``replay`` / ``ledger`` / ``accountant`` /
``base_station`` / ``planner`` / ``telemetry``), so the serving gateway,
the marketplace, and the load generators route through it unchanged.

Per query it

1. **routes**: :meth:`ClusterBroker.route_for_range` classifies every
   shard against the query range by its value band
   (:func:`~repro.cluster.planning.route_query`) -- pruned shards are
   skipped outright, exactly-covered shards answer from cached totals,
   and only the ``t <= s`` straddling shards get fresh ``(α_j, δ^{1/t})``
   sub-targets (the legacy broadcast ``δ^{1/s}`` split when bands give
   nothing to exploit);
2. **scatters** per-shard *sub-batches* (queries grouped by their routed
   shard set, one batched RPC per shard, not per query) to each shard's
   :meth:`~repro.core.broker.DataBroker.answer_batch` -- concurrently for
   ``s > 1`` -- with replica failover per shard;
3. **gathers** and merges the per-shard estimates, noised counts, and
   exact-cover totals into one :class:`ClusterAnswer` (clamped sum;
   merged plan via :func:`~repro.cluster.planning.merge_plans`);
4. **reconciles** the books: exactly one consolidated
   :class:`~repro.pricing.ledger.BillingLedger` transaction and one
   :class:`~repro.privacy.budget.BudgetAccountant` entry per query, at
   the cluster list price and the parallel-composition ε′ (max over the
   shards the query actually touched; zero for metadata-only answers).
   Shard-level books are internal transfer accounting.

With one shard the whole path degenerates to the plain broker call plus
a pass-through merge, and is bit-identical to it (tested); routing is
disabled at ``s = 1`` so band coverage can never shortcut the real
release.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.health import ShardBreakerBoard, ShardHealthMonitor
from repro.cluster.planning import (
    RoutePlan,
    degraded_delta,
    merge_plans,
    route_query,
    split_spec,
    zero_plan,
)
from repro.cluster.shard import ShardRuntime, build_shards
from repro.core.policy import BrokerPolicy, PolicyViolationError
from repro.core.query import AccuracySpec, PrivateAnswer, RangeQuery
from repro.errors import InfeasiblePlanError, PrivacyBudgetExceededError
from repro.pricing.functions import InverseVariancePricing, PricingFunction
from repro.pricing.ledger import BillingLedger
from repro.pricing.variance_model import VarianceModel
from repro.privacy.budget import BudgetAccountant
from repro.privacy.optimizer import PrivacyPlan
from repro.resilience.deadline import check_deadline, current_deadline, deadline_scope
from repro.resilience.hedging import HedgeLostRace, HedgePolicy

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.durability.journal import TradeJournal
    from repro.serving.telemetry import MetricsRegistry

__all__ = ["ClusterAnswer", "ClusterBroker"]

#: Scatters at or below this many shards run inline on the calling
#: thread.  Per-shard gather work is GIL-bound (scalar numpy over a few
#: thousand samples), so a thread handoff costs more than it buys until
#: the scatter is genuinely wide.
_INLINE_SCATTER_MAX = 4


@dataclass(frozen=True)
class ClusterAnswer(PrivateAnswer):
    """A merged scatter-gather release.

    Extends :class:`~repro.core.query.PrivateAnswer` with the gather
    provenance: the per-shard releases it merges, which shards answered
    from a replica, and the confidence actually *reported* after
    degradation (``delta_reported == spec.delta`` on a healthy gather).
    """

    shard_answers: "Tuple[PrivateAnswer, ...]" = ()
    degraded_shards: "Tuple[int, ...]" = ()
    delta_reported: float = 0.0
    #: Routing provenance: which shards the planner pruned (band cannot
    #: intersect the range) and which it answered from cached totals
    #: (band fully contained).  Empty on broadcast gathers.
    pruned_shards: "Tuple[int, ...]" = ()
    exact_shards: "Tuple[int, ...]" = ()
    #: The route's stable fingerprint (``"b"`` for broadcast); part of
    #: the serving cache key so routed releases replay correctly.
    route_signature: str = "b"

    @property
    def degraded(self) -> bool:
        """Whether any shard answered from its replica."""
        return bool(self.degraded_shards)


class _ClusterMeterView:
    """Read-only aggregate over every shard network's cost meter."""

    def __init__(self, broker: "ClusterBroker") -> None:
        self._broker = broker

    def _meters(self):
        for shard in self._broker.shards:
            yield shard.primary_station.network.meter
            if shard.replica_station is not None:
                yield shard.replica_station.network.meter

    def snapshot(self) -> "Dict[str, int]":
        total: "Dict[str, int]" = {}
        for meter in self._meters():
            for key, value in meter.snapshot().items():
                total[key] = total.get(key, 0) + value
        return total


class _ClusterNetworkView:
    """The ``.network`` shape the service facade expects: just a meter."""

    def __init__(self, broker: "ClusterBroker") -> None:
        self.meter = _ClusterMeterView(broker)


class _ClusterStationView:
    """Duck-typed :class:`~repro.iot.base_station.BaseStation` aggregate.

    The gateway keys its answer cache on ``store_version`` and
    subscribes to commits; the load generator reads ``sampling_rate``
    and calls ``ensure_rate``; the facade merges ``samples()`` for
    histogram/quantile releases.  This view answers all of that over
    the shard set.
    """

    def __init__(self, broker: "ClusterBroker") -> None:
        self._broker = broker
        self.network = _ClusterNetworkView(broker)
        self._listeners: "List" = []
        for shard in broker.shards:
            shard.primary_station.subscribe_commits(self._on_commit)
            if shard.replica_station is not None:
                shard.replica_station.subscribe_commits(self._on_commit)

    @property
    def k(self) -> int:
        return sum(s.k for s in self._broker.shards)

    @property
    def n(self) -> int:
        return sum(s.n for s in self._broker.shards)

    @property
    def sampling_rate(self) -> float:
        """The weakest shard's stored rate (what a merged answer rests on)."""
        return min(s.sampling_rate for s in self._broker.shards)

    @property
    def store_version(self) -> int:
        """Monotone sum of every station's version (bumps on any commit)."""
        total = 0
        for shard in self._broker.shards:
            total += shard.primary_station.store_version
            if shard.replica_station is not None:
                total += shard.replica_station.store_version
        return total

    def subscribe_commits(self, callback) -> None:
        self._listeners.append(callback)

    def _on_commit(self, _version: int) -> None:
        version = self.store_version
        for callback in self._listeners:
            callback(version)

    def ensure_rate(self, p: float) -> None:
        self._broker.ensure_rate(p)

    def samples(self):
        merged = []
        for shard in self._broker.shards:
            merged.extend(shard.samples())
        merged.sort(key=lambda s: s.node_id)
        return merged


class _ClusterPlannerView:
    """Duck-typed :class:`~repro.core.planner.QueryPlanner` aggregate.

    ``plan`` returns the *merged* plan a scatter at rate ``p`` would
    yield, so the load generator's serial accounting expectation (which
    reads ``plan(spec, p).epsilon_prime``) prices the cluster exactly.
    """

    def __init__(self, broker: "ClusterBroker") -> None:
        self._broker = broker

    def supports(self, spec: AccuracySpec, p: float) -> bool:
        sub = split_spec(spec, len(self._broker.shards))
        return all(
            shard.primary.planner.supports(sub, p)
            for shard in self._broker.shards
        )

    def required_rate(self, spec: AccuracySpec) -> float:
        sub = split_spec(spec, len(self._broker.shards))
        return max(
            shard.primary.planner.required_rate(sub)
            for shard in self._broker.shards
        )

    def plan(self, spec: AccuracySpec, p: float) -> PrivacyPlan:
        sub = split_spec(spec, len(self._broker.shards))
        return merge_plans(
            spec,
            [shard.primary._plan(sub, p) for shard in self._broker.shards],
        )

    def plan_for_range(
        self, low: float, high: float, spec: AccuracySpec, p: float
    ) -> PrivacyPlan:
        """The merged plan a *routed* scatter of ``[low, high]`` yields.

        Duck-typed hook for the load generator's serial accounting
        expectation: with range-aware routing the spent ε′ depends on the
        query range (pruned and exactly-covered shards spend nothing), so
        pricing the cluster needs the route, not just the tier.  Falls
        back to :meth:`plan` for broadcast routes -- identical books to
        the pre-routing cluster.
        """
        broker = self._broker
        route = broker.route_for_range(low, high, spec)
        if not route.routed:
            return self.plan(spec, p)
        exact_n = sum(broker.shards[j].n for j in route.exact)
        exact_k = sum(broker.shards[j].k for j in route.exact)
        plans = [
            broker.shards[j].primary._plan(route.spec_for(j), p)
            for j in route.queried
        ]
        if not plans and exact_n == 0:
            return zero_plan(spec)
        return merge_plans(spec, plans, exact_n=exact_n, exact_k=exact_k)


@dataclass
class ClusterBroker:
    """Scatter-gather ``(α, δ)``-range counting over shard runtimes.

    Parameters
    ----------
    shards:
        The shard runtimes (see :func:`~repro.cluster.shard.build_shards`).
    pricing:
        Cluster-level price sheet, calibrated to the *total* ``n``; the
        consumer pays one list price per query regardless of ``s``.
    replica_confidence:
        Per-degraded-shard multiplier applied to the reported δ when a
        replica serves part of a gather.
    monitor:
        Optional :class:`~repro.cluster.health.ShardHealthMonitor`;
        when set, shards it has failed route straight to replicas.
    """

    shards: "List[ShardRuntime]"
    pricing: PricingFunction
    dataset: str = "default"
    ledger: BillingLedger = field(default_factory=BillingLedger)
    accountant: BudgetAccountant = field(default_factory=BudgetAccountant)
    # Mirrors DataBroker's fixed default seed: the scalar/cluster
    # equivalence tests require both brokers to draw the same stream.
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(7))  # repro-lint: disable=RL002
    policy: BrokerPolicy = field(default_factory=BrokerPolicy)
    replica_confidence: float = 0.9
    monitor: Optional[ShardHealthMonitor] = None
    telemetry: "Optional[MetricsRegistry]" = None
    #: Optional :class:`~repro.durability.journal.TradeJournal`; when set,
    #: every consolidated trade is journaled *before* the merged answer is
    #: released or the cluster books mutate (RL006).  Shard-level books
    #: are internal transfer accounting and are not journaled.
    journal: "Optional[TradeJournal]" = None
    #: Optional per-shard circuit breakers
    #: (:class:`~repro.cluster.health.ShardBreakerBoard`).  An open
    #: breaker routes that shard's sub-queries through the bypass lane
    #: (skipping its congested ingress path); answers and books are
    #: bit-identical either way.
    breakers: "Optional[ShardBreakerBoard]" = None
    #: Optional :class:`~repro.resilience.hedging.HedgePolicy`.  When
    #: set, a straggling gated sub-query is re-issued on the bypass lane
    #: after the lane's rolling-p95 trigger; an exactly-once claim
    #: guarantees only the winning lane ever touches the shard broker.
    hedging: "Optional[HedgePolicy]" = None

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("at least one shard is required")
        if not 0.0 < self.replica_confidence <= 1.0:
            raise ValueError("replica_confidence must be in (0, 1]")
        if self.pricing.variance_model.n != sum(s.n for s in self.shards):
            raise ValueError(
                "cluster pricing variance model is calibrated for "
                f"n={self.pricing.variance_model.n}, but the shards hold "
                f"n={sum(s.n for s in self.shards)}"
            )
        self._station_view = _ClusterStationView(self)
        self._planner_view = _ClusterPlannerView(self)
        self._lock = threading.Lock()
        self._executor: "Optional[ThreadPoolExecutor]" = None  # guarded-by: _lock
        self._first_degraded_wall: "Optional[float]" = None  # guarded-by: _lock
        # Route + predicted-ε′ memos.  Keys embed the sampling rate, so a
        # top-up naturally invalidates; bands are immutable post-build.
        self._route_cache: "Dict[Tuple[float, float, float, float, float], RoutePlan]" = {}  # guarded-by: _lock
        self._cost_cache: "Dict[Tuple[int, float, float, float], float]" = {}  # guarded-by: _lock
        # Optional repro.workers process backend (None = threaded path).
        self._process_backend = None  # guarded-by: _lock
        # Pre-scatter batch hook (the process backend's ``prime``):
        # collapses co-hosted shards' sub-queries into one worker
        # round-trip.  None when detached or per-shard workers.
        self._primer = None  # guarded-by: _lock
        # Lazy executor for hedged gated lanes; separate from the scatter
        # pool so a wide scatter can never starve its own hedges.
        self._hedge_executor: "Optional[ThreadPoolExecutor]" = None  # guarded-by: _lock

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        k: int = 16,
        shards: int = 4,
        dataset: str = "default",
        seed: int = 7,
        base_price: float = 1.0,
        loss_probability: float = 0.0,
        partition: str = "even",
        replicas: bool = True,
        replica_confidence: float = 0.9,
        monitor: Optional[ShardHealthMonitor] = None,
    ) -> "ClusterBroker":
        """Build the whole federation over a raw value column.

        Seeded so that ``shards=1`` with loss-free channels reproduces
        :meth:`PrivateRangeCountingService.from_values` bit-for-bit.
        """
        values = np.asarray(values, dtype=np.float64)
        runtimes = build_shards(
            values,
            k=k,
            shards=shards,
            dataset=dataset,
            seed=seed,
            base_price=base_price,
            loss_probability=loss_probability,
            partition=partition,
            replicas=replicas,
        )
        pricing = InverseVariancePricing(
            VarianceModel(n=len(values)), base_price=base_price
        )
        broker = cls(
            shards=runtimes,
            pricing=pricing,
            dataset=dataset,
            rng=np.random.default_rng(seed + 1),
            replica_confidence=replica_confidence,
            monitor=monitor,
        )
        if monitor is not None:
            for runtime in runtimes:
                monitor.attach(runtime)
        return broker

    # ------------------------------------------------------------------
    # DataBroker-compatible surface
    # ------------------------------------------------------------------
    @property
    def base_station(self) -> _ClusterStationView:
        """Aggregate station view (versions, rates, merged samples)."""
        return self._station_view

    @property
    def planner(self) -> _ClusterPlannerView:
        """Aggregate planner view (merged plans, max required rate)."""
        return self._planner_view

    @property
    def n(self) -> int:
        return self._station_view.n

    @property
    def k(self) -> int:
        return self._station_view.k

    @property
    def first_degraded_wall(self) -> "Optional[float]":
        """``time.perf_counter()`` of the first degraded gather, if any.

        Benchmarks subtract the fault-injection timestamp from this to
        report failover latency.
        """
        with self._lock:
            return self._first_degraded_wall

    def quote(self, spec: AccuracySpec) -> float:
        """Cluster list price of an ``(α, δ)`` product."""
        return self.pricing.price(spec.alpha, spec.delta)

    # ------------------------------------------------------------------
    # range-aware routing
    # ------------------------------------------------------------------
    def route_for_range(
        self, low: float, high: float, spec: AccuracySpec
    ) -> RoutePlan:
        """The (routing, δ-split) plan for one range at the current rate.

        Deterministic and memoized per ``(range, tier, rate)``.  A
        single-shard cluster always broadcasts -- routing could otherwise
        answer a band-covering query from the cached total and break the
        bit-identity contract with the plain :class:`DataBroker`.
        """
        if len(self.shards) == 1:
            return route_query(
                spec,
                low,
                high,
                bands=[self.shards[0].band.full_domain()],
                sizes=[self.shards[0].n],
            )
        rate = self._station_view.sampling_rate
        key = (low, high, spec.alpha, spec.delta, rate)
        # Lock-free read: dict.get is atomic under the GIL, entries are
        # immutable RoutePlans, and this sits on the per-request path of
        # the gateway's (locked) dispatch -- taking the broker lock here
        # serializes cache hits behind in-flight scatters.  Writes (and
        # the size-capped clear) still happen under ``_lock`` below.
        cached = self._route_cache.get(key)  # repro-lint: disable=RL003
        if cached is not None:
            return cached
        cost = self._shard_cost(rate) if rate > 0.0 else None
        route = route_query(
            spec,
            low,
            high,
            bands=[shard.band for shard in self.shards],
            sizes=[shard.n for shard in self.shards],
            cost=cost,
        )
        with self._lock:
            if len(self._route_cache) > 4096:
                self._route_cache.clear()
            self._route_cache[key] = route
        return route

    def routing_signature(self, query: RangeQuery, spec: AccuracySpec) -> str:
        """Stable fingerprint of how this query would route right now.

        The serving cache appends it to the reuse key so answers derived
        from different routes (e.g. before/after a rate change flips a
        candidate) never alias.
        """
        return self.route_for_range(query.low, query.high, spec).signature

    def _shard_cost(self, rate: float):
        """Memoized ``(shard_index, sub_spec) -> predicted ε′`` at a rate.

        Infeasible sub-specs (the stored sample cannot support them
        without a top-up) price at ``+inf`` so the candidate search
        avoids them; the broadcast fallback tops up as before.
        """

        def cost(index: int, sub: AccuracySpec) -> float:
            key = (index, sub.alpha, sub.delta, rate)
            # Lock-free read; see route_for_range for the rationale.
            cached = self._cost_cache.get(key)  # repro-lint: disable=RL003
            if cached is not None:
                return cached
            try:
                value = self.shards[index].primary._plan(sub, rate).epsilon_prime
            except InfeasiblePlanError:
                value = math.inf
            with self._lock:
                if len(self._cost_cache) > 8192:
                    self._cost_cache.clear()
                self._cost_cache[key] = value
            return value

        return cost

    def _journal_trades(self, records: "list[dict]") -> None:
        """Commit consolidated trades to the write-ahead journal.

        Must run **before** ``policy.settle`` / ``accountant.charge_many``
        / ``ledger.record_many`` and before any merged answer is returned
        (journal-before-release, RL006).  No-op when no journal is
        attached.
        """
        if self.journal is not None:
            self.journal.append_many(records)

    def ensure_rate(self, p: float) -> None:
        """Run (or top up to) collection rounds on all shards, concurrently."""
        self._fan_out(lambda shard: shard.ensure_rate(p))

    def answer(
        self,
        query: RangeQuery,
        spec: AccuracySpec,
        consumer: str = "anonymous",
    ) -> ClusterAnswer:
        """Scatter-gather one query (see :meth:`answer_batch`)."""
        return self.answer_batch([query], spec, consumer=consumer)[0]

    def answer_batch(
        self,
        queries: "List[RangeQuery]",
        spec: "AccuracySpec | Sequence[AccuracySpec]",
        consumer: str = "anonymous",
    ) -> "List[ClusterAnswer]":
        """Scatter a batch to every shard, gather, merge, and charge once.

        Per-shard work goes through the vectorized
        :meth:`~repro.core.broker.DataBroker.answer_batch`; shards run
        concurrently for ``s > 1``.  A shard whose primary dies
        mid-gather retries on its replica and only marks the merged
        answers degraded.  The consolidated books are written *after*
        the gather, in query order: one ledger transaction per query at
        cluster list price and one accountant entry at the
        parallel-composition ε′ (max over shards) -- so a failed gather
        charges the consumer nothing.
        """
        if not queries:
            raise ValueError("at least one query is required")
        # Expired requests must not route, scatter, or bill (scope is
        # installed by the serving gateway; no-op when absent).
        check_deadline("cluster.answer_batch")
        if isinstance(spec, AccuracySpec):
            specs: "List[AccuracySpec]" = [spec] * len(queries)
        else:
            specs = list(spec)
            if len(specs) != len(queries):
                raise ValueError(
                    f"got {len(specs)} specs for {len(queries)} queries; "
                    "pass one spec per query or a single shared spec"
                )
        for query in queries:
            if query.dataset not in ("default", self.dataset):
                raise ValueError(
                    f"query targets dataset {query.dataset!r}, cluster serves "
                    f"{self.dataset!r}"
                )
        self.policy.admit_batch(consumer, specs)

        s = len(self.shards)
        routes = [
            self.route_for_range(query.low, query.high, q_spec)
            for query, q_spec in zip(queries, specs)
        ]

        # Per-shard sub-batches: shard j answers exactly the queries whose
        # route queries it, in query order.  On a pure-broadcast batch
        # (s = 1, or no band gave the planner anything to prune) every
        # shard sees the full batch -- the legacy scatter, bit-identical.
        shard_batches: "List[List[int]]" = [
            [i for i, route in enumerate(routes) if j in route.queried]
            for j in range(s)
        ]
        tasks = [
            (j, self.shards[j], shard_batches[j])
            for j in range(s)
            if shard_batches[j]
        ]

        # With co-hosted workers attached, answer every shard's
        # sub-queries in one pipe round-trip per worker before the
        # scatter; each shard's lane then consumes its primed totals
        # without another hop.  Best-effort -- a miss (raced top-up,
        # shard-cache hit filtering the batch) degrades to the normal
        # per-shard round-trip, bit-identically.
        with self._lock:
            primer = self._primer
        if primer is not None and len(tasks) > 1:
            primer({
                task[1].shard_id: [
                    (queries[i].low, queries[i].high) for i in task[2]
                ]
                for task in tasks
            })

        # The fan-out may hop to pool threads; re-enter the caller's
        # deadline scope there so shard-level checkpoints keep working.
        request_deadline = current_deadline()

        def scoped_shard_answer(task):
            with deadline_scope(request_deadline):
                return self._shard_answer(
                    task[1],
                    [queries[i] for i in task[2]],
                    [routes[i].spec_for(task[0]) for i in task[2]],
                    consumer,
                )

        with self._timer("cluster.scatter_s"):
            results = self._fan_out_over(tasks, scoped_shard_answer)

        answer_of: "Dict[Tuple[int, int], PrivateAnswer]" = {}
        degraded_by_shard: "Dict[int, bool]" = {}
        for (j, _, indices), (answers, degraded) in zip(tasks, results):
            degraded_by_shard[j] = degraded
            for i, answer in zip(indices, answers):
                answer_of[(j, i)] = answer

        degraded_ids = tuple(sorted(j for j, d in degraded_by_shard.items() if d))
        if degraded_ids:
            with self._lock:
                if self._first_degraded_wall is None:
                    self._first_degraded_wall = time.perf_counter()

        # Gather + merge, then reconcile the consolidated books in query
        # order: one entry per query, cluster price, parallel-composition ε′
        # over the shards the query actually touched.
        with self._timer("cluster.gather_s"):
            n_total = float(self.n)
            merged_plans: "List[PrivacyPlan]" = []
            prices: "List[float]" = []
            epsilons: "List[float]" = []
            labels: "List[str]" = []
            for i, (query, q_spec) in enumerate(zip(queries, specs)):
                route = routes[i]
                shard_plans = [answer_of[(j, i)].plan for j in route.queried]
                exact_n = sum(self.shards[j].n for j in route.exact)
                exact_k = sum(self.shards[j].k for j in route.exact)
                if shard_plans or exact_n:
                    merged_plans.append(
                        merge_plans(
                            q_spec, shard_plans, exact_n=exact_n, exact_k=exact_k
                        )
                    )
                else:
                    # Every shard pruned: the range provably holds no
                    # records, released from metadata alone.
                    merged_plans.append(zero_plan(q_spec))
                prices.append(self.pricing.price(q_spec.alpha, q_spec.delta))
                epsilons.append(
                    max((p.epsilon_prime for p in shard_plans), default=0.0)
                )
                labels.append(f"{consumer}:[{query.low},{query.high}]")

            total_epsilon = sum(epsilons)
            if not self.policy.can_release(consumer, total_epsilon):
                raise PolicyViolationError(
                    f"consumer {consumer!r} would exceed the per-consumer "
                    "privacy cap"
                )
            if not self.accountant.can_afford(self.dataset, total_epsilon):
                raise PrivacyBudgetExceededError(
                    f"dataset {self.dataset!r}: batch of {len(queries)} "
                    f"merged releases (ε′={total_epsilon:.6g}) would exceed "
                    f"capacity {self.accountant.capacity:.6g}"
                )
            # Last pre-commit checkpoint: past here the consolidated trade
            # is journaled and charged, so an expired deadline must abort
            # now or never.  Shard-level books written by the scatter are
            # internal transfer accounting and are reconciled by replay.
            check_deadline("cluster.journal")
            store_version = self._station_view.store_version
            self._journal_trades([
                dict(
                    kind="release",
                    consumer=consumer,
                    dataset=self.dataset,
                    low=query.low,
                    high=query.high,
                    alpha=q_spec.alpha,
                    delta=q_spec.delta,
                    epsilon_prime=eps,
                    price=price,
                    store_version=store_version,
                    label=label,
                )
                for query, q_spec, price, eps, label in zip(
                    queries, specs, prices, epsilons, labels
                )
            ])
            for q_spec, eps in zip(specs, epsilons):
                self.policy.settle(consumer, eps)
            self.accountant.charge_many(self.dataset, epsilons, labels)
            txns = self.ledger.record_many([
                dict(
                    consumer=consumer,
                    dataset=self.dataset,
                    alpha=q_spec.alpha,
                    delta=q_spec.delta,
                    price=price,
                    epsilon_prime=eps,
                )
                for q_spec, price, eps in zip(specs, prices, epsilons)
            ])

            merged: "List[ClusterAnswer]" = []
            degraded_answers = 0
            for i, (query, q_spec) in enumerate(zip(queries, specs)):
                route = routes[i]
                shard_answers = tuple(
                    answer_of[(j, i)] for j in route.queried
                )
                # Exactly-covered shards contribute their cached totals:
                # every record is in range, zero error, zero ε.  Shard
                # sizes are public partition metadata (they already
                # calibrate pricing and appear in every merged plan).
                exact_count = float(sum(self.shards[j].n for j in route.exact))
                raw = exact_count + float(sum(a.raw_value for a in shard_answers))
                estimate = exact_count + float(
                    sum(a.sample_estimate for a in shard_answers)
                )
                value = float(min(max(raw, 0.0), n_total))
                answer_degraded = tuple(
                    j for j in route.queried if degraded_by_shard.get(j, False)
                )
                if answer_degraded:
                    degraded_answers += 1
                merged.append(
                    ClusterAnswer(
                        value=value,
                        raw_value=raw,
                        sample_estimate=estimate,
                        query=query,
                        spec=q_spec,
                        plan=merged_plans[i],
                        price=prices[i],
                        consumer=consumer,
                        transaction_id=txns[i].transaction_id,
                        shard_answers=shard_answers,
                        degraded_shards=answer_degraded,
                        delta_reported=degraded_delta(
                            q_spec.delta,
                            len(answer_degraded),
                            self.replica_confidence,
                        ),
                        pruned_shards=route.pruned,
                        exact_shards=route.exact,
                        route_signature=route.signature,
                    )
                )

        self._emit("cluster.batches")
        self._emit("cluster.answers", len(queries))
        self._emit("cluster.epsilon_spent", total_epsilon)
        if degraded_answers:
            self._emit("cluster.degraded_answers", degraded_answers)
        if self.telemetry is not None:
            for route in routes:
                self.telemetry.observe(
                    "cluster.shards_pruned", float(len(route.pruned))
                )
                self.telemetry.observe(
                    "cluster.shards_touched", float(route.touched)
                )
                for sub in route.sub_specs:
                    self.telemetry.observe("cluster.delta_split", sub.delta)
            routed_count = sum(1 for route in routes if route.routed)
            if routed_count:
                self.telemetry.inc("cluster.routed_queries", routed_count)
            covered = sum(
                1 for route in routes if route.routed and not route.queried
            )
            if covered:
                self.telemetry.inc("cluster.metadata_answers", covered)
            self.telemetry.set_gauge(
                "cluster.shards_healthy",
                float(sum(1 for shard in self.shards if shard.primary_alive)),
            )
        return merged

    def replay(self, cached: PrivateAnswer, consumer: str) -> PrivateAnswer:
        """Re-release a previously merged answer at ε′ = 0.

        Mirrors :meth:`DataBroker.replay`: list price, zero budget, one
        consolidated ledger entry showing the hand-over.
        """
        spec = cached.spec
        self.policy.admit(consumer, spec)
        price = self.pricing.price(spec.alpha, spec.delta)
        self._journal_trades([dict(
            kind="replay",
            consumer=consumer,
            dataset=self.dataset,
            low=cached.query.low,
            high=cached.query.high,
            alpha=spec.alpha,
            delta=spec.delta,
            epsilon_prime=0.0,
            price=price,
            store_version=self._station_view.store_version,
            label=f"{consumer}:[{cached.query.low},{cached.query.high}]",
        )])
        self.policy.settle(consumer, 0.0)
        txn = self.ledger.record(
            consumer=consumer,
            dataset=self.dataset,
            alpha=spec.alpha,
            delta=spec.delta,
            price=price,
            epsilon_prime=0.0,
        )
        self._emit("cluster.replays")
        return dataclasses.replace(
            cached,
            consumer=consumer,
            price=price,
            transaction_id=txn.transaction_id,
        )

    def breaker_open_fraction(self) -> float:
        """Share of shard lanes with a non-closed breaker (0.0 unwired).

        Duck-typed overload signal for the serving gateway's brownout
        ladder.
        """
        if self.breakers is None:
            return 0.0
        return self.breakers.open_fraction()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _shard_answer(
        self,
        shard: ShardRuntime,
        queries: "List[RangeQuery]",
        shard_specs: "List[AccuracySpec]",
        consumer: str,
    ) -> "Tuple[List[PrivateAnswer], bool]":
        check_deadline(f"cluster.shard{shard.shard_id}.scatter")
        breaker = (
            self.breakers.for_shard(shard.shard_id)
            if self.breakers is not None
            else None
        )
        # Open breaker: cut the limping lane out — serve through the
        # bypass (relief) lane, skipping the shard's congested ingress
        # path.  Same broker, same RNG stream, bit-identical answer.
        bypass = breaker is not None and not breaker.allow()
        if bypass:
            self._emit(f"cluster.shard{shard.shard_id}.breaker_bypasses")
        hedge_after: "Optional[float]" = None
        if self.hedging is not None and not bypass:
            hedge_after = self.hedging.hedge_after(f"shard{shard.shard_id}")
        start = time.perf_counter()
        try:
            if hedge_after is not None:
                answers, degraded = self._hedged_answer(
                    shard, queries, shard_specs, consumer, hedge_after
                )
            else:
                with self._timer(f"cluster.shard{shard.shard_id}.answer_s"):
                    answers, degraded = shard.answer_batch(
                        queries, shard_specs, consumer, gate=not bypass
                    )
        except Exception:
            if breaker is not None:
                breaker.record_failure()
            raise
        latency = time.perf_counter() - start
        if breaker is not None:
            breaker.record_success(latency)
            if self.breakers is not None:
                self.breakers.publish()
        if self.hedging is not None:
            self.hedging.observe(f"shard{shard.shard_id}", latency)
        if degraded:
            self._emit(f"cluster.shard{shard.shard_id}.failover_batches")
        return answers, degraded

    def _hedged_answer(
        self,
        shard: ShardRuntime,
        queries: "List[RangeQuery]",
        shard_specs: "List[AccuracySpec]",
        consumer: str,
        hedge_after: float,
    ) -> "Tuple[List[PrivateAnswer], bool]":
        """Race the gated lane against a bypass retry, exactly once.

        Both lanes answer through the *same* shard broker, so whichever
        wins produces the bit-identical result; the single ``claim``
        token (taken before any broker work) guarantees the loser has no
        side effects — nothing journaled twice, no RNG double-draw.
        """
        request_deadline = current_deadline()
        cancel = threading.Event()
        claim = threading.Lock()

        def gated_lane() -> "Tuple[List[PrivateAnswer], bool]":
            with deadline_scope(request_deadline):
                with self._timer(f"cluster.shard{shard.shard_id}.answer_s"):
                    return shard.answer_batch(
                        queries, shard_specs, consumer,
                        cancel=cancel, claim=claim,
                    )

        future = self._hedge_pool().submit(gated_lane)
        try:
            return future.result(timeout=hedge_after)
        except FuturesTimeoutError:
            pass
        # Straggler: fire the hedge on the bypass lane.
        self._emit(f"cluster.shard{shard.shard_id}.hedges")
        try:
            with self._timer(f"cluster.shard{shard.shard_id}.hedge_s"):
                result = shard.answer_batch(
                    queries, shard_specs, consumer, gate=False, claim=claim
                )
        except HedgeLostRace:
            # The gated lane claimed first while the hedge spun up; its
            # result is the only one that exists.
            if self.hedging is not None:
                self.hedging.record_hedge(won=False)
            return future.result()
        # Hedge won: wake the gated lane out of its ingress wait (it
        # raises HedgeLostRace into its own future, which nobody reads).
        cancel.set()
        if self.hedging is not None:
            self.hedging.record_hedge(won=True)
        return result

    def _hedge_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._hedge_executor is None:
                self._hedge_executor = ThreadPoolExecutor(
                    max_workers=max(2, len(self.shards)),
                    thread_name_prefix="repro-hedge",
                )
            return self._hedge_executor

    # ------------------------------------------------------------------
    # execution backend (repro.workers)
    # ------------------------------------------------------------------
    @property
    def execution(self) -> str:
        """``"threads"`` (default) or ``"processes"`` (worker backend live)."""
        with self._lock:
            return "processes" if self._process_backend is not None else "threads"

    def use_processes(self, workers: "Optional[int]" = None) -> None:
        """Attach the worker-process backend.  Idempotent.

        Estimation moves to spawned worker processes fed by shared-memory
        sample stores; planning, Laplace draws, journaling, and all
        accounting stay in this process, so answers and books are
        bit-identical to the threaded path for the same seeds.

        ``workers`` (default: one per shard) round-robins shards onto
        that many processes; co-hosted shards share one store and one
        pre-scatter ``estimate_multi`` round-trip per batch (the
        backend's ``prime`` hook) instead of a pipe round-trip each.
        """
        from repro.workers.backend import ClusterProcessBackend

        with self._lock:
            if self._process_backend is not None:
                return
        backend = ClusterProcessBackend(telemetry=self.telemetry)
        backend.attach(self.shards, workers=workers)
        with self._lock:
            self._process_backend = backend
            self._primer = backend.prime

    def use_threads(self) -> None:
        """Detach the process backend (restore in-process estimation).

        Idempotent; shuts every worker down and unlinks every
        shared-memory segment before returning.
        """
        with self._lock:
            backend = self._process_backend
            self._process_backend = None
            self._primer = None
        if backend is not None:
            backend.detach()

    def _fan_out(self, fn):
        """Apply ``fn`` to every shard, concurrently when ``s > 1``."""
        return self._fan_out_over(self.shards, fn)

    def _fan_out_over(self, items, fn):
        """Apply ``fn`` to each item, concurrently when there are several.

        Results come back in item order.  Determinism is preserved
        under concurrency because every shard owns independent rng
        streams (devices, channel, broker noise) and each item's
        sub-batch composition is fixed before the scatter.

        Small scatters (routing typically touches one or two shards)
        run inline: per-shard work is GIL-bound and far cheaper than a
        thread handoff, so the pool only pays off for wide broadcasts.
        With the process backend attached the calculus flips -- a
        shard's work is a pipe round-trip whose ``recv`` releases the
        GIL, so even two-shard scatters overlap on separate cores and
        every multi-item scatter goes through the pool.
        """
        if not items:
            return []
        with self._lock:
            inline_max = (
                1 if self._process_backend is not None else _INLINE_SCATTER_MAX
            )
        if len(items) <= inline_max:
            return [fn(item) for item in items]
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=len(self.shards),
                    thread_name_prefix="repro-cluster",
                )
            executor = self._executor
        futures = [executor.submit(fn, item) for item in items]
        return [f.result() for f in futures]

    def _timer(self, name: str):
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.timer(name)

    def _emit(self, name: str, amount: float = 1.0) -> None:
        if self.telemetry is not None:
            self.telemetry.inc(name, amount)
