"""The cluster benchmark driver: healthy and failover throughput.

One reusable harness behind both ``repro cluster-bench`` and
``benchmarks/test_cluster.py``: it drives the serving gateway through a
:class:`~repro.cluster.broker.ClusterBroker` with the standard
closed-loop load generator, so every number it reports comes with the
load generator's exact accounting-drift audit attached.

Phases (all optional):

* **single** -- the plain one-station gateway, the baseline the paper's
  system model implies;
* **cluster** -- the same workload against ``s``-shard federations;
* **failover** -- the largest federation again, with shard 0's primary
  killed mid-run through the health monitor; the run must complete with
  zero failures, degraded answers visible in telemetry, and unchanged
  accounting.

Determinism: everything except wall-clock timing is a pure function of
``seed`` -- the reported ``determinism_checksum`` (a fixed direct batch
against a fresh twin cluster) and the accounting fields are reproducible
run-to-run, which is what CI trend tooling diffs.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.broker import ClusterBroker
from repro.cluster.health import ShardHealthMonitor
from repro.core.query import AccuracySpec, RangeQuery
from repro.core.service import PrivateRangeCountingService

__all__ = [
    "DEFAULT_TIERS",
    "ROUTED_TIERS",
    "run_cluster_bench",
    "make_routed_workload",
]

#: The standard mixed-tier product mix of the serving benchmarks.
DEFAULT_TIERS: "Tuple[AccuracySpec, ...]" = (
    AccuracySpec(alpha=0.1, delta=0.5),
    AccuracySpec(alpha=0.15, delta=0.6),
    AccuracySpec(alpha=0.2, delta=0.5),
)

#: Tier mix for the range-routed phases.  Drill-down alert queries
#: demand tighter accuracy than broad overviews, and tolerances with
#: ``α ≤ ALPHA_BOOST_CAP / s`` fit entirely inside one shard's boosted
#: release (``α·n ≤ 0.95·n/s``), so routing keeps its full advantage
#: at every benchmarked shard count.
ROUTED_TIERS: "Tuple[AccuracySpec, ...]" = (
    AccuracySpec(alpha=0.05, delta=0.5),
    AccuracySpec(alpha=0.08, delta=0.6),
    AccuracySpec(alpha=0.11, delta=0.5),
)


def _workload_ranges(
    values: np.ndarray, count: int, seed: int
) -> "List[Tuple[float, float]]":
    from repro.analysis.metrics import make_workload

    return list(make_workload(values, num_queries=count, seed=seed).ranges)


def make_routed_workload(
    values: np.ndarray,
    count: int,
    seed: int,
    narrow_fraction: float = 0.75,
) -> "List[Tuple[float, float]]":
    """A bimodal range mix that rewards band-aware routing.

    Real IoT dashboards are dominated by *drill-downs* (narrow value
    windows -- alerts, threshold bands) with occasional *overviews*
    (one-sided threshold counts: "readings above/below x").
    Quantile-anchored: ``narrow_fraction`` of the ranges select 0.2--0.8%
    of the data (they fit inside one shard band at any realistic shard
    count, so most shards prune), the rest select 50--90% anchored at a
    domain edge (they
    *contain* every interior band, which answers exactly from cached
    totals, and only the single boundary band releases fresh noise).
    Mid-width two-sided ranges -- the worst case for routing, straddling
    several bands without containing any -- are deliberately absent; the
    even partition phases keep covering that regime.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if not 0.0 <= narrow_fraction <= 1.0:
        raise ValueError("narrow_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    n = len(ordered)
    if n < 2:
        raise ValueError("need at least two records to build a workload")
    narrow = int(round(count * narrow_fraction))
    out: "List[Tuple[float, float]]" = []
    for i in range(count):
        if i < narrow:
            selectivity = rng.uniform(0.002, 0.008)
            start = rng.uniform(0.0, 1.0 - selectivity)
        else:
            selectivity = rng.uniform(0.5, 0.9)
            # Alternate "below x" / "above x" threshold overviews.
            start = 0.0 if i % 2 == 0 else 1.0 - selectivity
        lo = int(start * (n - 1))
        hi = min(n - 1, int((start + selectivity) * (n - 1)))
        out.append((float(ordered[lo]), float(ordered[max(hi, lo)])))
    return out


def _pruning_stats(telemetry) -> "Dict[str, float]":
    """Routing observability extracted from a phase's metrics registry."""
    return {
        "shards_touched_mean": telemetry.histogram("cluster.shards_touched").mean,
        "shards_pruned_mean": telemetry.histogram("cluster.shards_pruned").mean,
        "delta_split_mean": telemetry.histogram("cluster.delta_split").mean,
        "routed_queries": telemetry.value("cluster.routed_queries"),
        "metadata_answers": telemetry.value("cluster.metadata_answers"),
    }


def _serve_config(
    window: float,
    max_batch: int,
    enable_cache: bool = True,
    execution: str = "threads",
    gateway_workers: int = 1,
):
    from repro.serving import ServingConfig

    return ServingConfig(
        batch_window=window,
        max_batch=max_batch,
        enable_cache=enable_cache,
        execution=execution,
        workers=gateway_workers,
    )


def _warm_planner(broker, ranges, tiers) -> None:
    """Prime plan/route caches so the timed loop measures steady state.

    Planning is a pure function of ``(α, δ, p)`` (plus the route for a
    cluster), so pre-computing every workload plan spends no privacy
    budget and releases nothing -- it only keeps the optimizer's grid
    search out of the latency tail, exactly as a production deployment
    would after its first scrape of each dashboard.
    """
    target = max(broker.planner.required_rate(spec) for spec in tiers)
    broker.base_station.ensure_rate(target)
    rate = broker.base_station.sampling_rate
    plan_for_range = getattr(broker.planner, "plan_for_range", None)
    plan = getattr(broker, "_plan", broker.planner.plan)
    for low, high in ranges:
        for spec in tiers:
            if plan_for_range is not None:
                plan_for_range(low, high, spec, rate)
            else:
                plan(spec, rate)


def _run_gateway_phase(
    gateway,
    ranges: "List[Tuple[float, float]]",
    tiers: "Sequence[AccuracySpec]",
    consumers: int,
    requests: int,
) -> "Dict[str, object]":
    import gc

    from repro.serving import Workload, run_closed_loop

    _warm_planner(gateway.broker, ranges, tiers)
    # Phases share one process: collect the previous phase's teardown
    # garbage now so a later phase's tail latency does not pay for an
    # earlier phase's heap.
    gc.collect()
    workload = Workload(ranges=ranges, tiers=tiers)
    per_consumer = max(1, requests // consumers)
    with gateway:
        result = run_closed_loop(
            gateway,
            workload,
            consumers=consumers,
            requests_per_consumer=per_consumer,
        )
    return result.to_payload()


def _determinism_checksum(
    values: np.ndarray,
    devices: int,
    shards: int,
    seed: int,
    ranges: "List[Tuple[float, float]]",
    tiers: "Sequence[AccuracySpec]",
    partition: str,
    probes: int = 32,
) -> float:
    """A fixed direct (gateway-free) batch on a fresh twin cluster.

    Single consumer, fixed query order, loss-free channels: the released
    values are a pure function of ``seed``, so this checksum is the
    run-to-run reproducibility witness of the bench JSON.
    """
    cluster = ClusterBroker.from_values(
        values, k=devices, shards=shards, seed=seed, partition=partition
    )
    queries: "List[RangeQuery]" = []
    specs: "List[AccuracySpec]" = []
    for i in range(probes):
        low, high = ranges[i % len(ranges)]
        queries.append(RangeQuery(low=low, high=high))
        specs.append(tiers[i % len(tiers)])
    target = max(cluster.planner.required_rate(spec) for spec in set(specs))
    cluster.ensure_rate(target)
    answers = cluster.answer_batch(queries, specs, consumer="audit")
    return float(sum(a.value for a in answers))


def _backend_checksum(
    values: np.ndarray,
    devices: int,
    shards: int,
    seed: int,
    ranges: "List[Tuple[float, float]]",
    tiers: "Sequence[AccuracySpec]",
    partition: str,
    execution: str,
    probes: int = 32,
) -> float:
    """:func:`_determinism_checksum` under a chosen execution backend.

    Threads vs processes on the same seed must agree bit-for-bit -- the
    workers phase's ``checksums_identical`` gate compares the two.
    """
    cluster = ClusterBroker.from_values(
        values, k=devices, shards=shards, seed=seed, partition=partition
    )
    if execution == "processes":
        cluster.use_processes()
    try:
        queries: "List[RangeQuery]" = []
        specs: "List[AccuracySpec]" = []
        for i in range(probes):
            low, high = ranges[i % len(ranges)]
            queries.append(RangeQuery(low=low, high=high))
            specs.append(tiers[i % len(tiers)])
        target = max(cluster.planner.required_rate(spec) for spec in set(specs))
        cluster.ensure_rate(target)
        answers = cluster.answer_batch(queries, specs, consumer="audit")
        return float(sum(a.value for a in answers))
    finally:
        cluster.use_threads()


def run_cluster_bench(
    values: np.ndarray,
    devices: int = 64,
    shard_counts: "Sequence[int]" = (4, 8),
    requests: int = 500,
    consumers: int = 4,
    ranges: int = 16,
    tiers: "Sequence[AccuracySpec]" = DEFAULT_TIERS,
    seed: int = 11,
    window: float = 0.004,
    max_batch: int = 64,
    partition: str = "even",
    baseline: bool = True,
    failover: bool = True,
    routed: bool = True,
    replica_confidence: float = 0.9,
    heartbeat_interval: float = 30.0,
    execution: str = "threads",
    gateway_workers: int = 1,
    workers_compare: bool = True,
) -> "Dict[str, object]":
    """Run the full single/cluster/failover comparison; returns the payload.

    The payload is ready for
    :func:`~repro.serving.loadgen.write_bench_json` and carries one
    entry per phase plus the determinism checksum.  With ``routed=True``
    a second sweep runs on *range-sharded* partitions under the bimodal
    :func:`make_routed_workload` (1 shard, then every ``shard_counts``
    entry), reporting per-scale pruning stats -- the headline showing
    federation winning both ε and latency once the planner can route.

    ``execution`` selects the cluster phases' estimation backend
    (``"processes"`` = the :mod:`repro.workers` per-shard worker
    runtime).  With ``workers_compare=True`` a dedicated ``workers``
    phase reruns one cache-free cluster workload under *both* backends
    and reports the speedup, the host core count, and the
    backend-checksum identity gate -- the ``BENCH_cluster.json``
    evidence for the multi-core scaling acceptance (≥3x at 4 shards on
    an 8-core box; single-core hosts still assert zero drift and
    checksum identity).
    """
    from repro.serving import ServingGateway
    from repro.serving.telemetry import MetricsRegistry

    values = np.asarray(values, dtype=np.float64)
    query_ranges = _workload_ranges(values, ranges, seed)
    payload: "Dict[str, object]" = {
        "records": int(len(values)),
        "devices": int(devices),
        "requests": int(requests),
        "consumers": int(consumers),
        "ranges": int(ranges),
        "tiers": [(spec.alpha, spec.delta) for spec in tiers],
        "seed": int(seed),
        "partition": partition,
        "execution": execution,
    }

    if baseline:
        service = PrivateRangeCountingService.from_values(
            values, k=devices, seed=seed
        )
        gateway = service.serve(_serve_config(window, max_batch))
        payload["single"] = _run_gateway_phase(
            gateway, query_ranges, tiers, consumers, requests
        )

    clusters: "Dict[str, object]" = {}
    for s in shard_counts:
        service = PrivateRangeCountingService.from_values(
            values, k=devices, seed=seed, shards=s, partition=partition
        )
        gateway = service.serve(_serve_config(
            window, max_batch, execution=execution,
            gateway_workers=gateway_workers,
        ))
        clusters[str(s)] = _run_gateway_phase(
            gateway, query_ranges, tiers, consumers, requests
        )
    payload["clusters"] = clusters

    if workers_compare and shard_counts:
        import os

        # 4 shards is the acceptance scale; fall back to the largest
        # benchmarked count when 4 is not in the sweep.
        s = 4 if 4 in shard_counts else max(shard_counts)
        phase: "Dict[str, object]" = {
            "shards": int(s),
            "cores": int(os.cpu_count() or 1),
        }
        for backend in ("threads", "processes"):
            service = PrivateRangeCountingService.from_values(
                values, k=devices, seed=seed, shards=s, partition=partition
            )
            # Cache off: replays bypass estimation entirely, and the
            # point of this phase is to time the estimation fan-out.
            gateway = service.serve(_serve_config(
                window, max_batch, enable_cache=False, execution=backend,
                gateway_workers=gateway_workers,
            ))
            phase[backend] = _run_gateway_phase(
                gateway, query_ranges, tiers, consumers, requests
            )
        thread_qps = float(phase["threads"]["throughput_qps"])  # type: ignore[index]
        process_qps = float(phase["processes"]["throughput_qps"])  # type: ignore[index]
        phase["speedup"] = (
            process_qps / thread_qps if thread_qps > 0 else None
        )
        checksum_threads = _backend_checksum(
            values, devices, s, seed, query_ranges, tiers, partition,
            "threads",
        )
        checksum_processes = _backend_checksum(
            values, devices, s, seed, query_ranges, tiers, partition,
            "processes",
        )
        phase["checksum_threads"] = checksum_threads
        phase["checksum_processes"] = checksum_processes
        phase["checksums_identical"] = checksum_threads == checksum_processes
        payload["workers"] = phase

    if routed:
        routed_ranges = make_routed_workload(values, ranges, seed)
        routed_tiers = tuple(ROUTED_TIERS)
        routed_phases: "Dict[str, object]" = {
            "tiers": [(spec.alpha, spec.delta) for spec in routed_tiers],
        }
        for s in (1,) + tuple(shard_counts):
            if s == 1:
                # The plain single-station broker: the exact baseline the
                # routing acceptance compares against.
                service = PrivateRangeCountingService.from_values(
                    values, k=devices, seed=seed
                )
            else:
                service = PrivateRangeCountingService.from_values(
                    values,
                    k=devices,
                    seed=seed,
                    shards=s,
                    partition="range-sharded",
                )
            gateway = service.serve(_serve_config(window, max_batch))
            phase = _run_gateway_phase(
                gateway, routed_ranges, routed_tiers, consumers, requests
            )
            phase.update(_pruning_stats(gateway.telemetry))
            routed_phases[str(s)] = phase
        if shard_counts:
            routed_phases["determinism_checksum"] = _determinism_checksum(
                values,
                devices,
                max(shard_counts),
                seed,
                routed_ranges,
                routed_tiers,
                "range-sharded",
            )
        payload["routed"] = routed_phases

    if failover and shard_counts:
        s = max(shard_counts)
        telemetry = MetricsRegistry()
        monitor = ShardHealthMonitor(
            interval=heartbeat_interval,
            miss_threshold=2,
            telemetry=telemetry,
        )
        cluster = ClusterBroker.from_values(
            values,
            k=devices,
            shards=s,
            seed=seed,
            partition=partition,
            replicas=True,
            replica_confidence=replica_confidence,
            monitor=monitor,
        )
        # No answer cache in this phase: cache replays never touch the
        # shards, so a cached run could finish without a single fresh
        # release after the kill and the failover path would go untested.
        gateway = ServingGateway(
            broker=cluster,
            config=_serve_config(window, max_batch, enable_cache=False),
            telemetry=telemetry,
        )

        kill_marker: "Dict[str, float]" = {}

        def _killer() -> None:
            # Fire once roughly a quarter of the way through the run; the
            # trigger is the completion counters (fresh releases plus
            # cache replays), not wall time, so the fault always lands
            # mid-benchmark.
            target = max(1.0, 0.25 * requests)
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                completed = (
                    telemetry.value("cluster.answers")
                    + telemetry.value("cluster.replays")
                )
                if completed >= target:
                    break
                time.sleep(0.001)
            kill_marker["at"] = time.perf_counter()
            monitor.kill_primary(0, detect=True)

        from repro.serving import Workload, run_closed_loop

        killer = threading.Thread(target=_killer, daemon=True)
        killer.start()
        workload = Workload(ranges=query_ranges, tiers=tiers)
        per_consumer = max(1, requests // consumers)
        post_kill_burst = 0
        with gateway:
            result = run_closed_loop(
                gateway,
                workload,
                consumers=consumers,
                requests_per_consumer=per_consumer,
            )
            killer.join(timeout=120.0)
            if telemetry.value("cluster.degraded_answers") == 0:
                # A short run can complete before detection lands.  The
                # kill has happened by now (killer joined), so drive a
                # small post-kill burst through the same gateway: the
                # degraded path is exercised at every scale.
                futures = []
                for i in range(max(8, requests // 10)):
                    low, high = query_ranges[i % len(query_ranges)]
                    spec = tiers[i % len(tiers)]
                    futures.append(
                        gateway.submit_range(
                            low, high, spec.alpha, spec.delta,
                            consumer="post-kill",
                        )
                    )
                for future in futures:
                    future.result()
                post_kill_burst = len(futures)
        phase = result.to_payload()
        phase["post_kill_burst"] = post_kill_burst

        latency: "Optional[float]" = None
        if cluster.first_degraded_wall is not None and "at" in kill_marker:
            latency = cluster.first_degraded_wall - kill_marker["at"]
        phase.update(
            shards=s,
            degraded_answers=telemetry.value("cluster.degraded_answers"),
            failovers=telemetry.value("cluster.failovers"),
            failover_events=len(monitor.events),
            healthy_shards_after=len(monitor.healthy_shards()),
            failover_latency_s=latency,
        )
        payload["failover"] = phase

    if shard_counts:
        payload["determinism_checksum"] = _determinism_checksum(
            values,
            devices,
            max(shard_counts),
            seed,
            query_ranges,
            tiers,
            partition,
        )
    return payload
